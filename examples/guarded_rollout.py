"""Guarded rollout: a fault-injected phase rolling back to last-known-good.

``repro.deploy.guard`` closes the detect → halt → roll back loop on top
of the paper's phased deployment (section 5.3.2): before any push it
pins each device's last-known-good (LKG) config version, every phase
bakes on the simulated clock and must pass a health gate (reachability,
ConfMon drift sweep, syslog error scan, optional probe), and any failure
— push error, open circuit breaker, or failed gate — restores every
touched device to its LKG.  A guarded rollout therefore always converges
to "fully new" or "fully previous"; the outcome is persisted as a
``DeploymentRecord`` in FBNet.

The demo lands a reviewed template bump (the canonical Robotron change
vector), then:

* rollout 1 runs under a fault plan that fails every psw push — the
  circuit breaker opens in the canary and the whole rollout is restored
  to LKG;
* rollout 2 reruns after the faults clear — the gates pass, the fleet
  converges fully-new, and the new versions are promoted to LKG.

Run:  python examples/guarded_rollout.py [seed]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, faults, obs, seed_environment
from repro.deploy.phases import PhaseSpec
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.models import ClusterGeneration, DeploymentRecord, Device

PHASES = [
    PhaseSpec(name="canary", percentage=25),
    PhaseSpec(name="rest", percentage=100),
]


def counter_total(name: str) -> float:
    return sum(
        series.value
        for series in obs.registry().series()
        if series.name == name and series.kind == "counter"
    )


def describe(tag: str, result) -> None:
    print(f"-- {tag}: outcome={result.outcome.value}")
    if result.rollback_reason:
        print(f"   reason: {result.rollback_reason}")
    print(f"   succeeded={sorted(result.report.succeeded)}")
    print(f"   restored to LKG: {result.restored}")
    for phase, gate in result.gate_results.items():
        checks = ", ".join(
            f"{c.name}={'ok' if c.passed else 'FAIL'}" for c in gate.checks
        )
        print(f"   gate[{phase}]: {checks}")


def main(seed: int) -> None:
    robotron = Robotron(retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0))
    env = seed_environment(robotron.store)

    print(f"== Guarded rollout (seed={seed}) ==")
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    assert robotron.provision_cluster(cluster).ok
    robotron.attach_monitoring()
    robotron.run_minutes(2)

    # The change under deployment: a reviewed v2 of both system templates.
    repo = robotron.generator.configerator
    for vendor in ("vendor1", "vendor2"):
        path = f"{vendor}/system.tmpl"
        change = repo.propose(
            path, "# golden v2\n" + repo.get(path), author="alice"
        )
        repo.approve(change.change_id, reviewer="bob")
    configs = robotron.generator.generate_devices(
        list(robotron.store.all(Device))
    )

    # Rollout 1: every psw push fails persistently; the breaker opens in
    # the canary phase and the guard restores last-known-good fleet-wide.
    plan = FaultPlan(seed=seed)
    plan.inject("deploy.push", role="psw")
    robotron.install_fault_plan(plan)
    first = robotron.guarded_deploy(
        configs,
        PHASES,
        max_failure_ratio=0.25,
        bake_seconds=120.0,
        probe=lambda batch: robotron.fleet.all_bgp_established(),
    )
    faults.uninstall()
    describe("rollout 1 (psw faults injected)", first)
    for note in robotron.notifications[-3:]:
        print(f"   notification: {note}")

    # Rollout 2: faults cleared — gates pass, the fleet converges
    # fully-new, and the new versions become the pinned LKG.
    second = robotron.guarded_deploy(
        configs,
        PHASES,
        max_failure_ratio=0.25,
        bake_seconds=120.0,
        probe=lambda batch: robotron.fleet.all_bgp_established(),
    )
    describe("rollout 2 (faults cleared)", second)
    assert second.ok

    print("-- deployment history (FBNet DeploymentRecord) --")
    for record in robotron.store.all(DeploymentRecord):
        states = sorted(
            {entry["state"] for entry in record.device_versions.values()}
        )
        print(
            f"   {record.intent_hash[:12]}  outcome={record.outcome.value:<15} "
            f"rolled_back={record.devices_rolled_back:>2}  states={states}"
        )

    print("-- rollback accounting --")
    for name in (
        "deploy.rollback",
        "deploy.gate_fail",
        "deploy.circuit_open",
        "deploy.lkg_restore",
        "faults.injected",
    ):
        print(f"  {name:>20} = {counter_total(name):.0f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1337)
