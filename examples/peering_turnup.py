"""Peering turn-up with an import policy — and the section-8 lesson.

Provisions a transit interconnect on a POP's peering router: external AS,
interconnect addressing, the eBGP session toward the ISP, and the
cherry-picked-prefix import policy whose absence caused the paper's
link-saturation incident.  The post-incident design rule flags any
external session still missing its policy.

Run:  python examples/peering_turnup.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, seed_environment
from repro.design.peering import (
    PeeringDesignTool,
    rule_external_sessions_have_import_policy,
)
from repro.fbnet.models import ClusterGeneration, Device
from repro.fbnet.query import Expr, Op


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    robotron.build_cluster("pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2)
    robotron.boot_fleet()
    pr1 = robotron.store.first(Device, Expr("name", Op.EQUAL, "pop01.c01.pr1"))
    tool = PeeringDesignTool(robotron.store)

    print("== Turn-up with a cherry-picked-prefix import policy ==")
    policy = tool.create_import_policy(
        "examplenet-in", ["2a00:100::/32", "2a00:200::/32"],
        description="only serve users behind ExampleNet's announced blocks",
    )
    with robotron.design_change(
        employee_id="e300", ticket_id="PEER-1", domain="pop",
        description="transit to ExampleNet",
    ):
        link = tool.turn_up(
            pr1, "ExampleNet", 64512, kind="transit", import_policy=policy
        )
    session = link.related("bgp_session")
    print(f"session {session.local_ip} -> {session.peer_ip} (AS{session.peer_asn})")

    config = robotron.generator.generate_device(pr1)
    policy_lines = [l for l in config.lines() if "examplenet-in" in l]
    print("policy rendering in the PR config:")
    print("\n".join(f"  {line}" for line in policy_lines))

    print("\n== The section-8 scenario: a session without its policy ==")
    with robotron.design_change(
        employee_id="e301", ticket_id="PEER-2", domain="pop",
        description="peering to RiskyNet (policy still in development)",
    ):
        tool.turn_up(pr1, "RiskyNet", 64999)  # no import policy!
    for violation in rule_external_sessions_have_import_policy(robotron.store):
        print(f"design rule: {violation}")
    print("(the incident's fix: this rule now gates peering turn-ups)")


if __name__ == "__main__":
    main()
