"""Backbone operations: circuit capacity, migration, and atomic deployment.

The incremental-change workflow of sections 2.3 and 5.1.2: build a small
backbone, augment long-haul capacity, migrate a circuit between routers
(watching the dependency cascade across interface, prefix, and session
objects), then regenerate and atomically deploy the affected configs —
rolling the whole transaction back when a device fails mid-deploy.

Run:  python examples/backbone_circuit_migration.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, seed_environment
from repro.fbnet.models import Circuit, Device


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    tool = robotron.backbone
    site1, site2 = env.backbone_sites["bbs01"], env.backbone_sites["bbs02"]

    print("== Build a 3-router backbone ==")
    with robotron.design_change(
        employee_id="e200", ticket_id="BB-3001", domain="backbone",
        description="backbone turn-up",
    ):
        tool.add_router("bb1.bbs01", site1, "Router_Vendor1")
        tool.add_router("bb2.bbs02", site2, "Router_Vendor1")
        tool.add_router("bb3.bbs02", site2, "Router_Vendor1")
        tool.add_circuit("bb1.bbs01", "bb2.bbs02")
        tool.add_circuit("bb1.bbs01", "bb2.bbs02")
    robotron.boot_fleet()
    devices = robotron.store.all(Device)
    assert robotron.deployer.initial_provision(
        robotron.generator.generate_devices(devices)
    ).ok
    print(f"{len(devices)} routers provisioned; "
          f"{robotron.store.count(Circuit)} circuits in FBNet\n")

    print("== Augment capacity, then migrate a circuit ==")
    with robotron.design_change(
        employee_id="e200", ticket_id="BB-3002", domain="backbone",
        description="migrate one bb1-bb2 circuit to bb3",
    ) as change:
        circuit = robotron.store.all(Circuit)[0]
        report = tool.migrate_circuit(circuit.name, "bb3.bbs02")
    print(f"migrated {report['circuit']} onto bundle {report['bundle']}")
    print("dependency cascade (objects changed):")
    print(change.summary.describe(), "\n")

    print("== Regenerate and deploy atomically ==")
    robotron.fleet.sync_wiring(robotron.store)
    configs = robotron.generator.generate_devices(robotron.store.all(Device))
    dryrun = robotron.deployer.dryrun(configs)
    print("dryrun diffs (changed lines per device):", dryrun.changed_lines)

    # First attempt: a device fails mid-transaction -> full rollback.
    robotron.fleet.get("bb2.bbs02").fail_next_commits = 1
    attempt = robotron.deployer.atomic_deploy(configs)
    print(f"attempt 1: ok={attempt.ok}; rolled back {attempt.rolled_back}")

    # Second attempt succeeds.
    attempt = robotron.deployer.atomic_deploy(configs)
    print(f"attempt 2: ok={attempt.ok}; updated {len(attempt.succeeded)} devices")

    bb3 = robotron.fleet.get("bb3.bbs02")
    aggs = [n for n in bb3.interface_names() if n.startswith("ae")]
    print("bb3 bundle state:",
          {name: bb3.interface_oper_status(name) for name in aggs})


if __name__ == "__main__":
    main()
