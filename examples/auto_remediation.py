"""Auto-remediation: the closed loop from detection to verified repair.

The paper's monitoring pipeline feeds back into the top of the stack:
ConfMon notices config drift, the syslog classifier flags urgent
hardware alarms, and Robotron itself decides what to do about both.
``repro.remediation`` is that decision layer — a per-device state
machine (healthy → suspect → remediating → verified) with a bounded
retry budget, driving every repair through the same guarded deployment
pipeline (canary phase, health gate, last-known-good rollback) that
human-initiated changes use.

This script stages three concurrent incidents on a live POP cluster:

* an out-of-band config edit on a ToR (drift → restore the golden);
* a critical PSU alarm on a PSW (urgent syslog → drain the device);
* a second drifted device whose pushes keep failing (retry budget →
  quarantine after ``max_attempts``).

Then it runs ``Robotron.remediation_loop()`` and prints what the engine
did, sweep by sweep, plus the flight-recorder lineage that ties each
automatic action back to the detection that caused it.

Run:  python examples/auto_remediation.py [seed]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, obs, seed_environment
from repro.faults import FaultPlan
from repro.fbnet.models import ClusterGeneration
from repro.obs import flight
from repro.remediation import RemediationPolicy

DRIFTED = "pop01.c01.tor1"
ALARMED = "pop01.c01.psw1"
DOOMED = "pop01.c01.tor2"


def drift(device) -> None:
    """An engineer edits a device out of band (valid, vendor-aware)."""
    if device.vendor == "vendor1":
        hacked = device.running_config + "interface et9/9\n no shutdown\n!\n"
    else:
        hacked = device.running_config + "interfaces {\n    et9/9 {\n    }\n}\n"
    device.commit(hacked)


def main(seed: int) -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    assert report.ok, report.failed
    robotron.attach_monitoring()
    robotron.attach_remediation(
        RemediationPolicy(bake_seconds=0.0, cooldown_seconds=120.0)
    )

    print(f"== Auto-remediation (seed={seed}) ==")
    print("staging three incidents:")
    print(f"  {DRIFTED}: out-of-band config edit")
    print(f"  {ALARMED}: critical PSU alarm")
    print(f"  {DOOMED}: config edit + every push to it fails")

    drift(robotron.fleet.get(DRIFTED))
    drift(robotron.fleet.get(DOOMED))
    robotron.fleet.get(ALARMED).emit_syslog(
        "HW", "Critical Power lost on PSU 1"
    )
    plan = FaultPlan(seed=seed)
    plan.inject("deploy.push", device=DOOMED)  # persistent
    robotron.install_fault_plan(plan)

    result = robotron.remediation_loop(max_sweeps=20, period=60.0)

    print(f"\nconverged={result.converged} after {result.sweeps} sweeps")
    print("-- actions --")
    for action in result.actions:
        verdict = "ok" if action.ok else f"failed ({action.detail})"
        print(f"  #{action.attempt} {action.action:>14} on "
              f"{action.device}: {verdict}")
    print("-- final states --")
    for name, state in sorted(result.states.items()):
        print(f"  {name:>18}: {state}")

    print("-- attribution (flight recorder) --")
    for action in result.actions:
        opened = [
            e
            for e in flight.for_change(action.change_id)
            if e.kind == "change.open"
        ]
        kinds = sorted({e.kind for e in flight.for_change(action.change_id)})
        print(f"  {action.change_id} ({action.action} on {action.device})")
        print(f"    intent: {opened[0].detail}")
        print(f"    spans:  {', '.join(kinds)}")

    print("-- counters --")
    for name in ("remediation.detect", "remediation.action",
                 "remediation.quarantine", "deploy.operation",
                 "deploy.rollback"):
        total = sum(
            s.value
            for s in obs.registry().series()
            if s.name == name and s.kind == "counter"
        )
        print(f"  {name:>24} = {total:.0f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1337)
