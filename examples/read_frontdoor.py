"""The read front door: cached replica dispatch with precise invalidation.

A POP cluster's store serves a burst of Zipf-distributed dashboard
reads twice — once through a plain read replica, once through a
caching one — then a design mutation lands and the cache evicts
exactly the entries whose dependency sets the change journal says it
touched.  Every cached answer is byte-compared against a fresh
uncached read along the way.

Run:  python examples/read_frontdoor.py
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, seed_environment
from repro.design.workload import ZipfReadWorkload
from repro.fbnet.models import ClusterGeneration, DrainState
from repro.fbnet.rpc import ReadCache, RpcRequest, RpcResponse, ServiceReplica

REQUESTS = 600


def ask(replica: ServiceReplica, spec) -> list:
    wire = RpcRequest(service="read", method="get", args=spec.to_wire()).to_wire()
    return RpcResponse.from_wire(replica.handle(wire)).result()


def drive(replica: ServiceReplica, specs) -> float:
    started = time.perf_counter()
    for spec in specs:
        ask(replica, spec)
    return time.perf_counter() - started


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2,
    )
    print(f"built {len(cluster.all_devices())} devices in pop01.c01")

    store = robotron.store
    cache = ReadCache(store, name="frontdoor")
    cached = ServiceReplica("cached-0", "na-east", "read", store, cache=cache)
    plain = ServiceReplica("plain-0", "na-east", "read", store)

    # The same seeded Zipf stream — device pages, linecard lookups,
    # site scans, drain dashboards — through both replicas.
    workload = ZipfReadWorkload.over_store(store, seed=1337)
    specs = workload.requests(REQUESTS)
    uncached_seconds = drive(plain, specs)
    cached_seconds = drive(cached, specs)
    stats = cache.stats()
    print(f"\n{REQUESTS} Zipf reads, uncached: {uncached_seconds * 1000:.0f}ms"
          f" ({REQUESTS / uncached_seconds:,.0f} qps)")
    print(f"{REQUESTS} Zipf reads, cached:   {cached_seconds * 1000:.0f}ms"
          f" ({REQUESTS / cached_seconds:,.0f} qps,"
          f" {stats['hits']:.0f} hits / {stats['misses']:.0f} misses,"
          f" speedup {uncached_seconds / cached_seconds:.1f}x)")

    # A mutation lands: the journal maps it onto exactly the entries
    # whose read-sets it touches — no TTLs, no flush.
    router = cluster.devices["PR"][0]
    entries_before = stats["entries"]
    store.update(router, drain_state=DrainState.DRAINING)
    probe = workload.requests(1)[0]
    ask(cached, probe)  # any lookup advances the journal cursor
    stats = cache.stats()
    print(f"\ndrained {router.name}: {stats['invalidations']:.0f} of"
          f" {entries_before:.0f} entries invalidated, the rest still hot")

    # Zero stale serves: re-ask everything both ways and compare.
    mismatches = sum(
        json.dumps(ask(cached, spec), sort_keys=True)
        != json.dumps(ask(plain, spec), sort_keys=True)
        for spec in specs
    )
    print(f"re-read all {REQUESTS} requests after the drain:"
          f" {mismatches} mismatches vs the uncached replica")
    assert mismatches == 0

    # Batched multi-get: one wire round trip, deduplicated fills.
    batch = workload.batches(1, 16)[0]
    wire = RpcRequest(
        service="read",
        method="multi_get",
        args={"specs": [spec.to_wire() for spec in batch]},
    ).to_wire()
    rows = RpcResponse.from_wire(cached.handle(wire)).result()
    print(f"\nmulti-get batch of {len(batch)} specs ->"
          f" {sum(len(r) for r in rows)} rows in one round trip")


if __name__ == "__main__":
    main()
