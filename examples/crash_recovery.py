"""Crash recovery: kill the process mid-build, replay the WAL, resume.

FBNet's object store keeps a write-ahead log: every committed
transaction is appended to disk as a checksummed frame *before* it is
applied in memory, and a snapshot of the full journal is written every
few commits.  This example builds a 224-device design with the WAL
attached, simulates process death at a seeded instant in the middle of
the build (a torn half-written frame, exactly what a power cut leaves
behind), then recovers a bit-identical store from disk and finishes the
build on top of it.

Run:  python examples/crash_recovery.py          (CHAOS_SEED=<n> to reseed)
"""

import os
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ObjectStore, faults, obs, seed_environment
from repro.common.errors import ProcessCrash
from repro.design.cluster import build_cluster
from repro.faults.plan import FaultPlan
from repro.fbnet.durability import encode_record, store_digest, wal_segments
from repro.fbnet.models import ClusterGeneration, Datacenter, Device

CLUSTERS = 8  # DC Gen3 clusters of 28 devices each: 224 devices total
SNAPSHOT_EVERY = 4


def build_design(store, upto=CLUSTERS):
    env = seed_environment(store, datacenter_count=CLUSTERS)
    for index in range(1, upto + 1):
        dc = f"dc{index:02d}"
        build_cluster(
            store, f"{dc}.c01", env.datacenters[dc], ClusterGeneration.DC_GEN3
        )


def main() -> None:
    seed = int(os.environ.get("CHAOS_SEED", "1337"))
    root = Path(tempfile.mkdtemp(prefix="fbnet-wal-"))
    try:
        # -- the crash ---------------------------------------------------
        store = ObjectStore(name="main")
        store.attach_durability(root, snapshot_every=SNAPSHOT_EVERY)
        plan = FaultPlan(seed=seed)
        plan.inject("wal.append_torn", after=9, times=1)  # die on commit #10
        faults.install(plan)
        try:
            build_design(store)
            raise AssertionError("the fault plan should have killed the build")
        except ProcessCrash:
            pass
        finally:
            faults.uninstall()
        print(f"process died mid-build: {store.journal_position} records "
              f"committed, last WAL frame torn in half")

        # -- the recovery ------------------------------------------------
        segments = [p.name for p in wal_segments(root)]
        recovered = ObjectStore.recover(root)
        torn = int(obs.counter("store.wal.torn_truncated", store="main").value)
        print(f"recovered from {root.name}: segments {segments}, "
              f"{torn} torn frame truncated")
        print(f"recovered journal position: {recovered.journal_position} "
              f"(devices so far: {len(recovered.all(Device))})")

        # Disk agreed with the dying process's memory at the last durable
        # commit — the torn transaction vanished atomically.  (Only the
        # journal is compared against the dying process: its in-memory
        # tables still hold the in-flight transaction that never made it
        # to disk, which is exactly what recovery must *not* resurrect.)
        assert recovered.journal_position == store.journal_position
        assert [encode_record(r) for r in recovered.journal] == [
            encode_record(r) for r in store.journal
        ]
        print("recovered journal is bit-identical to the committed prefix")

        # -- resuming ----------------------------------------------------
        # The recovered store is live *and still journaled*: finish the
        # remaining clusters on top of it, then prove a fresh recovery of
        # the combined history matches a crash-free build.
        built = {d.name.split(".")[0] for d in recovered.all(Device)}
        datacenters = {d.name: d for d in recovered.all(Datacenter)}
        for index in range(1, CLUSTERS + 1):
            dc = f"dc{index:02d}"
            if any(name.startswith(dc) for name in built):
                continue
            build_cluster(
                recovered, f"{dc}.c01", datacenters[dc], ClusterGeneration.DC_GEN3
            )
        print(f"resumed build: {len(recovered.all(Device))} devices total")

        oracle = ObjectStore(name="main")
        build_design(oracle)
        replayed = ObjectStore.recover(root, attach=False)
        assert store_digest(replayed) == store_digest(oracle)
        print("full history replays to the same state as a crash-free build")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
