"""Change provenance: one design change traced from intent to verdict.

The flight recorder stitches every layer of the pipeline under one
change id.  This example drains a PR router through a reviewed design
change, lets ``incremental_cycle`` resume that change while it
regenerates, pushes, and sweeps — then prints the change's lineage tree
and the operator queries an incident would start from ("which change
touched this device?"), and exports the full flight log as JSONL plus a
Chrome trace for Perfetto.

Run:  python examples/change_provenance.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, obs, seed_environment
from repro.fbnet.models import ClusterGeneration, DrainState
from repro.obs import flight


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2,
    )
    robotron.boot_fleet()
    robotron.provision_cluster(cluster)
    robotron.attach_monitoring()
    robotron.run_minutes(2)
    print(f"provisioned {len(cluster.all_devices())} devices")

    # The change under observation: an engineer drains a PR router for
    # maintenance.  The design change opens the flight context, so the
    # journal record it commits is stamped with its change id.
    router = cluster.devices["PR"][0]
    with robotron.design_change(
        employee_id="e12345",
        ticket_id="T-4242",
        description=f"drain {router.name} for maintenance",
    ) as change:
        robotron.store.update(router, drain_state=DrainState.DRAINING)
    print(f"\ndesign change committed as {change.change_id}")

    # The steady-state loop picks the change up: the dirty mapping traces
    # the router's config back to that journal record, so the cycle
    # *resumes* the same change id through regenerate -> push -> sweep.
    report = robotron.incremental_cycle()
    print(f"cycle ok: {report.ok}; "
          f"regenerated {len(report.generation.regenerated)}, "
          f"pushed {len(report.deploy.succeeded) if report.deploy else 0}")

    print("\n--- lineage: intent -> model -> config -> deploy -> verdict ---")
    print(flight.render_lineage(change.change_id))

    print("\n--- which changes touched", router.name, "? ---")
    for event in flight.for_device(router.name):
        print(f"  {event.change_id or '(unattributed)'}  {event.describe()}")

    out_dir = Path(__file__).resolve().parent
    jsonl = out_dir / "flight.jsonl"
    trace = out_dir / "flight_trace.json"
    count = flight.export_jsonl(str(jsonl))
    obs.export_chrome_trace(str(trace))
    print(f"\nwrote {count} flight events to {jsonl.name}; "
          f"Chrome trace (open in Perfetto) in {trace.name}")


if __name__ == "__main__":
    main()
