"""Incremental change propagation: one FBNet edit, one device touched.

Provision a POP cluster, then walk the steady-state loop the paper's
scale demands: mutate the design, let ``incremental_cycle`` map the
journal records onto the configs they invalidate (via each config's
read-set), regenerate and push only those, and point the drift sweep at
the devices that just changed.

Run:  python examples/incremental_cycle.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, obs, seed_environment
from repro.fbnet.models import ClusterGeneration, DrainState, PhysicalInterface


def show(title: str, report) -> None:
    gen = report.generation
    print(f"\n--- {title} ---")
    print(f"dirty: {dict(gen.dirty) or '{}'}")
    print(f"regenerated {len(gen.regenerated)}, skipped {len(gen.skipped)}, "
          f"journal records scanned: {gen.records_scanned}")
    if report.deploy is not None:
        print(f"deployed: {report.deploy.succeeded} "
              f"(content-hash skipped: {report.deploy.skipped})")
    print(f"drift found: {[d.device for d in report.discrepancies]}")
    print(f"cycle ok: {report.ok}")


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2,
    )
    robotron.boot_fleet()
    robotron.provision_cluster(cluster)
    robotron.attach_monitoring()
    print(f"provisioned {len(cluster.all_devices())} devices")

    # A cycle with no design changes is a cheap no-op.
    show("cycle 1: nothing changed", robotron.incremental_cycle())

    # An engineer relabels one physical interface: exactly one device's
    # read-set matches the journal record, so only it regenerates.
    pif = robotron.store.all(PhysicalInterface)[0]
    robotron.store.update(pif, description="recabled to rack 7")
    show("cycle 2: one interface relabeled", robotron.incremental_cycle())

    # Draining a router regenerates it (sessions shut down in config)
    # and the prioritized sweep checks it first.
    router = cluster.devices["PR"][0]
    robotron.store.update(router, drain_state=DrainState.DRAINING)
    show("cycle 3: router drained", robotron.incremental_cycle())

    # Convergence: the next cycle finds nothing left to do.
    show("cycle 4: converged", robotron.incremental_cycle())

    print("\n--- configgen counters across the run ---")
    for name in ("configgen.dirty", "configgen.skipped",
                 "configgen.regenerated"):
        print(f"{name}: {obs.counter(name).value:.0f}")
    skip = obs.counter("deploy.skip_unchanged", op="deploy")
    print(f"deploy.skip_unchanged: {skip.value:.0f}")


if __name__ == "__main__":
    main()
