"""Chaos deploy: a seeded fault plan against the full life cycle.

The ``repro.faults`` layer injects failures at named points spread
through the reproduction (RPC dispatch, replication apply, config push,
monitoring collection).  Every decision is drawn from one seeded RNG, so
a chaos run reproduces bit-for-bit from its seed — rerun this script and
the same pushes fail at the same moments.

Three things to watch for in the output:

* transient push faults on one ToR are absorbed by the deployer's
  ``RetryPolicy`` (backoff on the *simulated* clock — no wall time);
* a persistent failure during a phased rollout trips the per-phase
  ``CircuitBreaker``, skipping the untouched devices instead of burning
  through the fleet;
* the telemetry counters (``faults.injected``, ``deploy.retry``,
  ``deploy.circuit_open``) record exactly where chaos landed.

Run:  python examples/chaos_deploy.py [seed]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, obs, seed_environment
from repro.deploy.phases import PhaseSpec
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.models import ClusterGeneration, Device


def counter_total(name: str) -> float:
    return sum(
        series.value
        for series in obs.registry().series()
        if series.name == name and series.kind == "counter"
    )


def main(seed: int) -> None:
    robotron = Robotron(
        retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0)
    )
    env = seed_environment(robotron.store)

    plan = FaultPlan(seed=seed)
    # Two transient commit failures on one ToR during turn-up.
    plan.inject("deploy.push", device="pop01.c01.tor1", times=2)
    # Every psw push fails persistently once the rollout starts.
    plan.inject("deploy.push", role="psw", start=100.0)
    robotron.install_fault_plan(plan)

    print(f"== Chaos deploy (seed={seed}) ==")
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    print(f"provisioned {len(report.succeeded)}/14 devices "
          f"(deploy.retry={counter_total('deploy.retry'):.0f} — the ToR "
          "faults were retried away)")
    assert report.ok

    # Let simulated time pass the fault window's start, then roll out a
    # config refresh to the psw tier in a phased deployment.
    robotron.run(200.0)
    psw = [d for d in robotron.store.all(Device) if ".psw" in d.name]
    configs = robotron.generator.generate_devices(psw)
    phased = robotron.deployer.phased_deploy(
        configs,
        [PhaseSpec(name="canary", percentage=100)],
        max_failure_ratio=0.25,
    )
    print(f"phased rollout: {len(phased.failed)} failed, "
          f"{len(phased.skipped)} skipped by the open circuit breaker")
    for message in phased.notifications:
        print(f"  notification: {message}")

    print("-- chaos accounting --")
    for name in ("faults.injected", "deploy.retry", "deploy.circuit_open"):
        print(f"  {name:>20} = {counter_total(name):.0f}")
    print(f"  injections recorded: {plan.injections}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1337)
