"""Quickstart: the Robotron management life cycle in ~30 lines.

Design a POP cluster from a template, generate vendor configs, provision
the (emulated) devices, attach monitoring, and verify the network state
matches the design.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, seed_environment
from repro.fbnet.models import ClusterGeneration


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)

    # 1. Network design: one design change materializes the whole cluster.
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2,
        employee_id="e123", ticket_id="NET-1001",
    )
    print(f"designed {len(cluster.all_devices())} devices, "
          f"{len(cluster.circuits)} circuits, "
          f"{len(cluster.bgp_sessions)} BGP sessions")

    # 2+3. Config generation and initial provisioning.
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    print(f"provisioned {len(report.succeeded)} devices "
          f"({report.total_changed_lines()} config lines)")
    print(f"all BGP established: {robotron.fleet.all_bgp_established()}")

    # 4. Monitoring: Derived models converge to the Desired design.
    robotron.attach_monitoring()
    robotron.run_minutes(10)
    audit = robotron.audit()
    print(f"monitoring events: {robotron.jobs.event_counts()}")
    print(f"desired-vs-derived audit clean: {audit.clean}")

    # Peek at one generated config.
    pr1 = robotron.generator.golden["pop01.c01.pr1"]
    print(f"\n--- {pr1.device_name} ({pr1.vendor}), first 12 lines ---")
    print("\n".join(pr1.lines()[:12]))


if __name__ == "__main__":
    main()
