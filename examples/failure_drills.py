"""Failure drills: the section 8 war stories, plus database failover.

* **Stale configs** — Engineer A generates configs, Engineer B changes the
  design, A deploys days later.  The paper's incident dropped racks; the
  reproduction's staleness check catches it pre-deploy.
* **Phased rollout halting** — a bad change reaches only the canary share
  before health metrics stop it (section 5.3.2).
* **FBNet master failover** — design work continues after the master
  database region is lost (section 4.3.3).

Run:  python examples/failure_drills.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, seed_environment
from repro.deploy.phases import PhaseSpec
from repro.fbnet.models import ClusterGeneration, Device, Rack, RackProfile
from repro.fbnet.query import Expr, Op


def build() -> Robotron:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
    )
    robotron.boot_fleet()
    assert robotron.provision_cluster(cluster).ok
    robotron.env = env  # type: ignore[attr-defined]
    return robotron


def drill_stale_configs() -> None:
    print("== Drill 1: stale configs (section 8) ==")
    robotron = build()
    psw1 = robotron.store.first(Device, Expr("name", Op.EQUAL, "dc01.c01.psw1"))

    # Engineer A generates configs but doesn't deploy.
    config_a = robotron.generator.generate_device(psw1)
    print(f"Engineer A generated config at design position "
          f"{config_a.design_position}")

    # Engineer B updates the rack profile days later.
    profile = robotron.store.create(
        RackProfile, name="hot-rack", downlinks_per_rack=12
    )
    robotron.store.create(
        Rack, name="rack-z", cluster=psw1.related("cluster"), rack_profile=profile
    )
    print("Engineer B changed the design (new rack profile + rack)")

    if robotron.generator.is_stale(config_a):
        print("deploy blocked: config predates a later design change — "
              "regenerate first\n")
    else:
        raise AssertionError("staleness check failed to fire")


def drill_phased_halt() -> None:
    print("== Drill 2: phased rollout halts on failed health ==")
    robotron = build()
    configs = {}
    for device in robotron.store.all(Device):
        text = robotron.generator.golden[device.name].text
        configs[device.name] = text.replace("mtu 9192", "mtu 1500").replace(
            "mtu 9192;", "mtu 1500;"
        )  # a bad change: tiny MTU

    def health_check(batch):
        # The metric-driven gate notices the canary devices misbehaving.
        print(f"  health check over {len(batch)} canary device(s): FAIL")
        return False

    report = robotron.deployer.phased_deploy(
        configs,
        [PhaseSpec(name="canary", percentage=10),
         PhaseSpec(name="fleet", percentage=100)],
        health_check=health_check,
    )
    blast_radius = len(report.succeeded)
    print(f"bad change reached {blast_radius}/{len(configs)} devices; "
          f"{len(report.skipped)} spared; notifications: "
          f"{report.notifications}\n")


def drill_master_failover() -> None:
    print("== Drill 3: FBNet master region loss ==")
    from repro.fbnet.replication import ReplicatedFBNet
    from repro.simulation.clock import EventScheduler

    scheduler = EventScheduler()
    cluster = ReplicatedFBNet(
        ["na-east", "na-west", "eu-central"], "na-east", scheduler
    )
    client = cluster.client("eu-central")
    client.create_objects([("Region", {"name": "before-failure"})])
    scheduler.run_for(1.0)

    cluster.fail_master()
    print("master region na-east lost; writes fail until promotion")
    new_master = cluster.promote_nearest()
    print(f"promoted {new_master}; resuming design work")
    client.create_objects([("Region", {"name": "after-failover"})])
    scheduler.run_for(1.0)
    print(f"eu-central sees {client.count('Region')} objects; "
          f"promotion history: {cluster.promotions}")


def drill_concurrent_design_changes() -> None:
    print("\n== Drill 4: concurrent design changes serialized (section 8) ==")
    from repro.design.concurrency import ChangeCoordinator, DesignConflict

    robotron = build()
    coordinator = ChangeCoordinator(robotron.store)
    profile = robotron.store.create(
        RackProfile, name="contested-rack", downlinks_per_rack=4
    )
    key = ("RackProfile", profile.id)

    engineer_a = coordinator.propose(
        employee_id="engineer-a", ticket_id="NET-A",
        description="set downlinks=8", touches={key},
        mutate=lambda s: s.update(s.get(RackProfile, profile.id),
                                  downlinks_per_rack=8),
    )
    engineer_b = coordinator.propose(
        employee_id="engineer-b", ticket_id="NET-B",
        description="set downlinks=12", touches={key},
        mutate=lambda s: s.update(s.get(RackProfile, profile.id),
                                  downlinks_per_rack=12),
    )
    coordinator.commit(engineer_b)
    print("engineer B committed first (downlinks=12)")
    try:
        coordinator.commit(engineer_a)
    except DesignConflict as conflict:
        print(f"engineer A rejected: {conflict}")
    fresh = coordinator.rebase(engineer_a)
    coordinator.commit(fresh)
    print(f"engineer A rebased and committed; final downlinks="
          f"{profile.downlinks_per_rack}")


def main() -> None:
    drill_stale_configs()
    drill_phased_halt()
    drill_master_failover()
    drill_concurrent_design_changes()


if __name__ == "__main__":
    main()
