"""The paper's running example: building a new POP, end to end.

Walks every stage of Figure 3 with commentary: the 4-post POP cluster of
Figure 2 is designed from a topology template (Figure 7), reviewed and
committed as a design change, turned into two vendors' configs (Figure 9),
provisioned onto clean devices (section 5.3.1), and watched by the
passive + active monitoring pipelines (section 5.4).

Run:  python examples/pop_turnup.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, seed_environment
from repro.design.cluster import build_cluster
from repro.fbnet.models import ClusterGeneration, DerivedCircuit, DerivedInterface


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    pop = env.pops["pop01"]

    print("== Stage 1: network design ==")

    def reviewer(summary):
        print("design change for human review:")
        print(summary.describe())
        print("reviewer approves.\n")
        return True

    with robotron.design_change(
        employee_id="e123", ticket_id="NET-2001",
        description="build pop01.c01 (4-post POP)", domain="pop",
        reviewer=reviewer,
    ):
        cluster = build_cluster(
            robotron.store, "pop01.c01", pop, ClusterGeneration.POP_GEN2
        )

    print("== Stage 2: config generation ==")
    robotron.boot_fleet()
    configs = robotron.generator.generate_location(pop)
    by_vendor: dict[str, int] = {}
    for config in configs.values():
        by_vendor[config.vendor] = by_vendor.get(config.vendor, 0) + 1
    print(f"generated {len(configs)} configs: {by_vendor}")
    psw1 = configs["pop01.c01.psw1"]
    print(f"\n--- {psw1.device_name} (vendor2 dialect), excerpt ---")
    print("\n".join(psw1.lines()[:18]))
    print("...\n")

    print("== Stage 3: deployment (initial provisioning) ==")
    report = robotron.deployer.initial_provision(configs, store=robotron.store)
    print(f"erase+copy+validate on {len(report.succeeded)} devices; "
          f"failures: {report.failed or 'none'}")
    # Mark production state in FBNet.
    with robotron.store.transaction():
        from repro.fbnet.models import Device, DeviceStatus, DrainState

        for device in robotron.store.all(Device):
            robotron.store.update(
                device,
                status=DeviceStatus.PRODUCTION,
                drain_state=DrainState.UNDRAINED,
            )
    print(f"eBGP mesh converged: {robotron.fleet.all_bgp_established()}")

    print("\n== Stage 4: monitoring ==")
    robotron.attach_monitoring()
    robotron.run_minutes(15)
    store = robotron.store
    print(f"derived interfaces collected : {store.count(DerivedInterface)}")
    print(f"derived circuits from LLDP   : {store.count(DerivedCircuit)}")
    audit = robotron.audit()
    print(f"desired-vs-derived audit     : "
          f"{'clean' if audit.clean else audit.findings}")

    print("\nPOP pop01.c01 is in production.")


if __name__ == "__main__":
    main()
