"""The monitoring pipelines: passive syslog, active polling, config drift.

Shows section 5.4 working as one system: classified syslog alerts from
the anycast bus (Table 3's rule table), the three-tier active pipeline
populating Derived models (Figure 11), and config monitoring detecting an
out-of-band manual change, backing it up, and restoring the golden config
(section 5.4.3 + the "Automation Fallbacks" lesson of section 8).

Run:  python examples/monitoring_pipeline.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Robotron, obs, seed_environment
from repro.fbnet.models import (
    ClusterGeneration,
    DerivedBgpSession,
    DerivedCircuit,
    DerivedInterface,
)


def main() -> None:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    robotron.provision_cluster(cluster)
    robotron.attach_monitoring()

    print("== Active monitoring populates Derived models ==")
    robotron.run_minutes(10)
    store = robotron.store
    print(f"engine event counts : {robotron.jobs.event_counts()}")
    print(f"derived interfaces  : {store.count(DerivedInterface)}")
    print(f"derived circuits    : {store.count(DerivedCircuit)} (from LLDP pairs)")
    print(f"derived BGP sessions: {store.count(DerivedBgpSession)}\n")

    print("== Passive monitoring classifies syslog ==")
    psw1 = robotron.fleet.get("pop01.c01.psw1")
    psw1.emit_syslog("EVENT", "Interface ae0 link state down")
    psw1.emit_syslog("EVENT", "LSP change: path recomputed")  # noise
    psw1.emit_syslog("EVENT", "TCAM error detected on unit 0")
    for alert in robotron.classifier.alerts[-2:]:
        print(f"alert: [{alert.severity.name}] {alert.device}: {alert.message}")
    counts = {
        severity.name: count
        for severity, (count, _pct) in robotron.classifier.severity_table().items()
        if count
    }
    print(f"classified counts so far: {counts}\n")

    print("== Config drift: manual change detected and curtailed ==")
    emergency = psw1.running_config + "interfaces {\n    et9/9 {\n    }\n}\n"
    psw1.commit(emergency)  # an engineer bypasses Robotron
    drift = robotron.confmon.discrepancies[-1]
    print(f"drift detected on {drift.device}; diff excerpt:")
    print("\n".join(drift.diff.splitlines()[:8]))
    print(f"backup revisions kept: "
          f"{robotron.confmon.backup.revision_count(psw1.name)}")
    robotron.confmon.restore_golden(psw1.name)
    print(f"restored to golden: "
          f"{psw1.running_config == robotron.generator.golden[psw1.name].text}")

    print("\n== Fault: fiber cut shows up in the audit ==")
    robotron.fleet.unwire("pop01.c01.pr1", "et1/0")
    robotron.run_minutes(10)
    audit = robotron.audit()
    for finding in audit.findings[:4]:
        print(f"finding: {finding.kind}: {finding.subject} — {finding.detail}")

    # Robotron monitors itself too: every store transaction, config
    # render, deployment, and monitoring job above left ODS-style
    # counters and trace spans behind in repro.obs.
    print("\n== Robotron self-telemetry (repro.obs) ==")
    print(obs.report(max_trace_roots=8))


if __name__ == "__main__":
    main()
