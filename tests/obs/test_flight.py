"""Unit tests for the flight recorder: contexts, ring, queries, exports."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import flight
from repro.obs.flight import FlightRecorder

pytestmark = pytest.mark.obs


class TestChangeContext:
    def test_fresh_context_allocates_sequential_ids(self):
        with flight.change_context("first") as a:
            pass
        with flight.change_context("second") as b:
            pass
        assert a.change_id == "chg-000001"
        assert b.change_id == "chg-000002"

    def test_open_and_close_events_bracket_the_change(self):
        with flight.change_context("add circuit"):
            flight.record("model.mutation", phase="model", model="Circuit")
        kinds = [e.kind for e in flight.timeline()]
        assert kinds == ["change.open", "model.mutation", "change.close"]
        assert len({e.change_id for e in flight.timeline()}) == 1

    def test_abort_records_the_error_and_reraises(self):
        with pytest.raises(ValueError):
            with flight.change_context("doomed"):
                raise ValueError("boom")
        abort = flight.timeline()[-1]
        assert abort.kind == "change.abort"
        assert abort.verdict == "error"
        assert "boom" in abort.detail

    def test_nested_entry_points_join_the_active_change(self):
        with flight.change_context("outer") as outer:
            with flight.change_context("inner") as inner:
                assert inner is outer
                flight.record("deploy.push", phase="deployment", device="d1")
        events = flight.for_change(outer.change_id)
        # No second open/close pair: the inner entry point joined.
        assert [e.kind for e in events] == [
            "change.open", "deploy.push", "change.close",
        ]

    def test_resume_reopens_an_earlier_change_id(self):
        with flight.change_context("original") as original:
            pass
        with flight.change_context(
            "cycle", change_id=original.change_id
        ) as resumed:
            assert resumed.resumed
            flight.record("configgen.regen", phase="generation", device="d1")
        kinds = [e.kind for e in flight.for_change(original.change_id)]
        assert "change.resume" in kinds
        assert "configgen.regen" in kinds

    def test_causes_listed_when_aggregating_changes(self):
        with flight.change_context("cycle", causes=("chg-000009", "chg-000010")):
            pass
        opened = flight.timeline()[0]
        assert "chg-000009" in opened.detail and "chg-000010" in opened.detail

    def test_suppressed_blocks_recording_and_attribution(self):
        with flight.change_context("observing") as ctx:
            with flight.suppressed():
                assert flight.current_change() is None
                assert flight.current_change_id() == ""
                flight.record("model.mutation", phase="model", model="Derived")
        # Only the open/close pair: the suppressed record never landed.
        assert [e.kind for e in flight.for_change(ctx.change_id)] == [
            "change.open", "change.close",
        ]

    def test_unattributed_events_have_empty_change_id(self):
        flight.record("confmon.check", phase="monitoring", device="d1")
        assert flight.timeline()[0].change_id == ""


class TestRingBuffer:
    def test_eviction_counts_instead_of_silently_truncating(self):
        recorder = FlightRecorder(max_events=3)
        for index in range(5):
            recorder.record("confmon.check", phase="monitoring", device=f"d{index}")
        assert len(recorder) == 3
        assert recorder.dropped == 2
        # Oldest evicted; sequence numbers keep counting.
        assert [e.device for e in recorder.timeline()] == ["d2", "d3", "d4"]
        assert [e.seq for e in recorder.timeline()] == [3, 4, 5]
        assert recorder.deterministic_dump()["dropped"] == 2

    def test_global_recorder_eviction_bumps_the_metric(self):
        recorder = flight.recorder()
        original = recorder.max_events
        recorder.max_events = 2
        try:
            for index in range(4):
                flight.record("confmon.check", phase="monitoring", device=f"d{index}")
        finally:
            recorder.max_events = original
        assert obs.counter("obs.flight.dropped").value == 2

    def test_reset_clears_events_drops_and_id_allocation(self):
        with flight.change_context("before"):
            pass
        obs.reset()
        assert flight.timeline() == []
        with flight.change_context("after") as ctx:
            pass
        assert ctx.change_id == "chg-000001"

    def test_disable_stops_recording(self):
        obs.disable()
        flight.record("confmon.check", phase="monitoring", device="d1")
        assert flight.timeline() == []
        obs.enable()
        flight.record("confmon.check", phase="monitoring", device="d1")
        assert len(flight.timeline()) == 1


class TestQueries:
    def _populate(self):
        with flight.change_context("change one") as one:
            flight.record("deploy.push", phase="deployment", device="tor1")
        with flight.change_context("change two") as two:
            flight.record("deploy.push", phase="deployment", device="tor2")
            flight.record("confmon.check", phase="monitoring", device="tor1")
        return one, two

    def test_for_change_returns_only_that_lineage(self):
        one, two = self._populate()
        assert {e.change_id for e in flight.for_change(one.change_id)} == {
            one.change_id
        }
        assert len(flight.for_change(one.change_id)) == 3
        assert len(flight.for_change(two.change_id)) == 4

    def test_for_device_crosses_changes(self):
        one, two = self._populate()
        tor1 = flight.for_device("tor1")
        assert {e.change_id for e in tor1} == {one.change_id, two.change_id}

    def test_changes_lists_ids_in_first_appearance_order(self):
        one, two = self._populate()
        assert flight.recorder().changes() == [one.change_id, two.change_id]

    def test_timeline_is_sequence_ordered(self):
        self._populate()
        seqs = [e.seq for e in flight.timeline()]
        assert seqs == sorted(seqs)


class TestRenderLineage:
    def test_groups_by_phase_with_intent_and_outcome(self):
        with flight.change_context("raise MTU") as ctx:
            flight.record(
                "model.mutation", phase="model", model="Interface",
                object_id=7, verdict="update",
            )
            flight.record(
                "deploy.push", phase="deployment", device="tor1", verdict="ok",
            )
        tree = flight.render_lineage(ctx.change_id)
        assert "'raise MTU'" in tree
        assert "[ok]" in tree
        assert "model (1)" in tree
        assert "deployment (1)" in tree
        assert "Interface#7" in tree

    def test_unknown_change_renders_a_message(self):
        assert "no flight events" in flight.render_lineage("chg-999999")


class TestExports:
    def test_deterministic_dump_excludes_wall_time_and_span_ids(self):
        with obs.span("outer"):
            flight.record("confmon.check", phase="monitoring", device="d1")
        event = flight.timeline()[0]
        assert event.span_id is not None  # captured for the JSONL/trace
        dumped = flight.deterministic_dump()["events"][0]
        assert "span_id" not in dumped and "wall_time" not in dumped
        assert dumped["device"] == "d1"

    def test_export_jsonl_round_trips_every_field(self, tmp_path):
        with flight.change_context("jsonl"):
            flight.record("deploy.push", phase="deployment", device="d1")
        path = tmp_path / "flight.jsonl"
        count = flight.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert rows[1]["kind"] == "deploy.push"
        assert {"seq", "change_id", "wall_time", "span_id"} <= set(rows[0])

    def test_chrome_trace_links_spans_and_flight_events(self, tmp_path):
        with obs.span("deploy.deploy", devices=1):
            flight.record(
                "deploy.push", phase="deployment", device="d1", verdict="ok",
            )
        path = tmp_path / "trace.json"
        trace = obs.export_chrome_trace(str(path))
        assert json.loads(path.read_text()) == trace
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert complete and instants
        span_ids = {e["args"]["span_id"] for e in complete}
        # The instant's span link resolves to an exported span.
        assert instants[0]["args"]["span_id"] in span_ids
        assert instants[0]["cat"] == "deployment"
        # Timestamps are rebased to the earliest event.
        assert min(e["ts"] for e in trace["traceEvents"]) == 0.0


class TestTraceSinkDrops:
    def test_span_eviction_is_counted_not_silent(self):
        sink = obs.tracer().sink
        original = sink.max_spans
        sink.max_spans = 2
        try:
            for index in range(5):
                with obs.span(f"op{index}"):
                    pass
        finally:
            sink.max_spans = original
        assert sink.dropped == 3
        assert obs.counter("obs.trace.dropped").value == 3
        assert "3 dropped" in obs.report()

    def test_report_omits_drop_note_when_nothing_dropped(self):
        with obs.span("op"):
            pass
        assert "dropped" not in obs.report()
