"""Unit tests for the ODS-style metrics registry."""

import json

import pytest

from repro import obs
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("store.txn")
        counter.inc()
        counter.inc(3)
        assert registry.counter("store.txn").value == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("store.txn")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("store.txn", region="r1").inc()
        registry.counter("store.txn", region="r2").inc(5)
        assert registry.counter("store.txn", region="r1").value == 1
        assert registry.counter("store.txn", region="r2").value == 5
        assert len(registry.series()) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("rpc.call", service="read", method="get").inc()
        registry.counter("rpc.call", method="get", service="read").inc()
        assert registry.counter("rpc.call", service="read", method="get").value == 2
        assert len(registry.series()) == 1

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        registry.counter("deploy.device", phase=1).inc()
        assert registry.counter("deploy.device", phase="1").value == 1


class TestGauge:
    def test_set_and_move(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("store.replication.lag", region="r2")
        gauge.set(0.5, at=100.0)
        assert gauge.value == 0.5
        assert gauge.updated_at == 100.0
        gauge.inc(0.25)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(0.25)


class TestHistogram:
    def test_summary_and_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("store.txn.latency")
        for value in [0.001, 0.002, 0.003, 0.004, 0.005]:
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["min"] == 0.001
        assert summary["max"] == 0.005
        assert summary["mean"] == pytest.approx(0.003)
        assert summary["p50"] == 0.003
        assert hist.percentile(100) == 0.005

    def test_bucket_counts_exact(self):
        hist = Histogram("store.txn.rows", {}, buckets=(1, 10, 100))
        for value in (0, 1, 5, 10, 50, 1000):
            hist.observe(value)
        # <=1: {0, 1}; <=10: {5, 10}; <=100: {50}; overflow: {1000}
        assert hist.bucket_counts == [2, 2, 1, 1]

    def test_reservoir_is_bounded(self):
        hist = Histogram("store.query.latency", {}, reservoir=16)
        for i in range(1000):
            hist.observe(float(i))
        assert hist.count == 1000
        assert len(hist._samples) == 16
        # Percentiles now reflect the most recent window only.
        assert hist.percentile(0) == 984.0

    def test_empty_summary_is_zeroed(self):
        hist = MetricsRegistry().histogram("store.txn.latency")
        assert hist.summary()["count"] == 0
        assert hist.summary()["p95"] == 0.0

    def test_custom_buckets_via_registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram("store.txn.rows", COUNT_BUCKETS)
        hist.observe(3)
        assert hist.buckets == tuple(sorted(COUNT_BUCKETS))


class TestRegistry:
    def test_name_convention_enforced(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("NoDots")
        with pytest.raises(ValueError):
            registry.counter("Upper.Case")
        registry.counter("store.sub.event")  # multi-segment is fine

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("store.txn")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("store.txn")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("store.txn")

    def test_get_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get("store.txn") is None
        registry.counter("store.txn").inc()
        assert isinstance(registry.get("store.txn"), Counter)
        assert registry.get("store.txn", region="r1") is None

    def test_reset_clears_series(self):
        registry = MetricsRegistry()
        registry.counter("store.txn").inc()
        registry.gauge("store.replication.lag").set(1)
        registry.reset()
        assert registry.series() == []

    def test_disabled_registry_returns_noop_and_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("store.txn") is NOOP
        assert registry.gauge("a.b") is NOOP
        assert registry.histogram("a.b") is NOOP
        registry.counter("store.txn").inc()
        with registry.timed("a.b"):
            pass
        assert registry.series() == []

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("store.txn", status="commit").inc(2)
        registry.gauge("store.replication.lag", region="r2").set(0.5)
        registry.histogram("rpc.latency", method="get").observe(0.01)
        snap = registry.snapshot()
        assert snap["counters"] == [
            {"name": "store.txn", "labels": {"status": "commit"}, "value": 2.0}
        ]
        assert snap["gauges"][0]["value"] == 0.5
        assert snap["histograms"][0]["count"] == 1
        json.dumps(snap)  # must be JSON-serializable

    def test_timed_records_wall_seconds(self):
        registry = MetricsRegistry()
        with registry.timed("rpc.latency", method="get"):
            sum(range(1000))
        hist = registry.get("rpc.latency", method="get")
        assert isinstance(hist, Gauge) is False
        assert hist.count == 1
        assert hist.max >= 0


class TestGlobalFacade:
    def test_module_level_helpers_share_one_registry(self):
        obs.counter("store.txn", store="fbnet").inc()
        assert obs.registry().get("store.txn", store="fbnet").value == 1

    def test_enable_disable_roundtrip(self):
        obs.disable()
        assert not obs.enabled()
        obs.counter("store.txn").inc()
        assert obs.registry().series() == []
        obs.enable()
        obs.counter("store.txn").inc()
        assert obs.registry().get("store.txn").value == 1

    def test_reset_reenables_and_clears(self):
        obs.counter("store.txn").inc()
        obs.disable()
        obs.reset()
        assert obs.enabled()
        assert obs.registry().series() == []
        assert len(obs.tracer().sink) == 0

    def test_dump_json_parses_and_writes(self, tmp_path):
        obs.counter("store.txn").inc()
        with obs.span("robotron.test"):
            pass
        out = tmp_path / "obs.json"
        text = obs.dump_json(str(out))
        data = json.loads(text)
        assert data["metrics"]["counters"][0]["name"] == "store.txn"
        assert data["spans"][0]["name"] == "robotron.test"
        assert json.loads(out.read_text()) == data

    def test_report_renders_all_sections(self):
        obs.counter("store.txn").inc()
        obs.gauge("store.replication.lag", region="r2").set(0.1)
        obs.histogram("rpc.latency").observe(0.2)
        with obs.span("robotron.test"):
            pass
        report = obs.report()
        for header in ("== counters ==", "== gauges ==", "== histograms =="):
            assert header in report
        assert "robotron.test" in report

    def test_empty_report(self):
        assert obs.report() == "(no telemetry recorded)"
