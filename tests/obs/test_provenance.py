"""End-to-end change provenance: one change id from intent to verdict.

A drained PR router is the canonical traced change: the design mutation
lands in the journal under the design change's id, the incremental cycle
*resumes* that id, regenerates exactly the dirty device, pushes the new
config, and the post-deploy sweep passes verdict — one lineage covering
all five pipeline phases.  The flight ring merges pool-task events in
task-key order, so its deterministic dump must be byte-identical at any
worker count, with or without a seeded fault plan in the way.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Robotron, faults, obs, parallel, seed_environment
from repro.deploy.phases import PhaseSpec
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.models import ClusterGeneration, Device, DrainState
from repro.obs import flight
from repro.obs.flight import PHASES

pytestmark = pytest.mark.obs

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1337"))

ROLLOUT_PHASES = [
    PhaseSpec(name="canary", percentage=25),
    PhaseSpec(name="rest", percentage=100),
]


def build_pop(worker_count: int) -> Robotron:
    """A provisioned, monitored POP cluster at a fixed pool size."""
    obs.reset()
    faults.uninstall()
    parallel.set_workers(worker_count)
    robotron = Robotron(retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0))
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    provision = robotron.provision_cluster(cluster)
    assert provision.ok, provision.failed
    robotron.attach_monitoring()
    robotron.run_minutes(2)
    robotron.cluster = cluster  # type: ignore[attr-defined]
    return robotron


def run_drain_cycle(worker_count: int) -> tuple[Robotron, str]:
    """Drain one PR router through a design change + incremental cycle."""
    robotron = build_pop(worker_count)
    router = robotron.cluster.devices["PR"][0]
    with robotron.design_change(
        employee_id="e1", ticket_id="T-1001", description="drain pr for maintenance"
    ) as change:
        robotron.store.update(router, drain_state=DrainState.DRAINING)
    report = robotron.incremental_cycle()
    assert report.deploy is not None and report.deploy.succeeded
    return robotron, change.change_id


def run_chaos_rollout(worker_count: int, seed: int) -> str:
    """A guarded rollout whose psw pushes fail persistently (rolled back)."""
    robotron = build_pop(worker_count)
    repo = robotron.generator.configerator
    for vendor in ("vendor1", "vendor2"):
        path = f"{vendor}/system.tmpl"
        proposal = repo.propose(
            path, "# golden v2\n" + repo.get(path), author="alice", note="v2"
        )
        repo.approve(proposal.change_id, reviewer="bob")
    configs = robotron.generator.generate_devices(list(robotron.store.all(Device)))
    plan = FaultPlan(seed=seed)
    plan.inject("deploy.push", role="psw")
    plan.inject("monitoring.collect", probability=0.05)
    robotron.install_fault_plan(plan)
    try:
        result = robotron.guarded_deploy(
            configs, ROLLOUT_PHASES, max_failure_ratio=0.25, bake_seconds=120.0
        )
    finally:
        faults.uninstall()
    assert result.outcome.value == "rolled_back"
    rollouts = [e for e in flight.timeline() if e.kind == "deploy.rollout"]
    assert rollouts, "guarded_deploy recorded no rollout events"
    return rollouts[-1].change_id


@pytest.fixture(autouse=True)
def _restore_workers():
    yield
    parallel.set_workers(None)


class TestDrainLineage:
    def test_one_change_id_covers_all_five_phases(self):
        robotron, change_id = run_drain_cycle(1)
        lineage = flight.for_change(change_id)
        assert {e.phase for e in lineage} == set(PHASES)
        kinds = {e.kind for e in lineage}
        assert {
            "change.open", "change.commit", "change.resume",
            "model.mutation", "configgen.regen", "deploy.push",
            "confmon.check",
        } <= kinds

    def test_cycle_resumes_the_design_change_id(self):
        robotron, change_id = run_drain_cycle(1)
        # The incremental cycle did not fragment the lineage: besides the
        # auto change that built the cluster, the drain is the only change
        # the flight log knows about, and the cycle resumed it once.
        build_change, *rest = flight.recorder().changes()
        assert rest == [change_id]
        assert "build cluster" in flight.for_change(build_change)[0].detail
        resume = [e for e in flight.for_change(change_id) if e.kind == "change.resume"]
        assert len(resume) == 1

    def test_exactly_the_dirty_device_was_regenerated_and_pushed(self):
        robotron, change_id = run_drain_cycle(1)
        router = robotron.cluster.devices["PR"][0]
        lineage = flight.for_change(change_id)
        regens = [e for e in lineage if e.kind == "configgen.regen"]
        pushes = [e for e in lineage if e.kind == "deploy.push"]
        assert [e.device for e in regens] == [router.name]
        assert [e.device for e in pushes] == [router.name]
        assert pushes[0].verdict == "ok"
        # The regen names the journal record that dirtied the config.
        assert "update" in regens[0].detail

    def test_monitoring_passed_verdict_under_the_same_id(self):
        robotron, change_id = run_drain_cycle(1)
        checks = [
            e for e in flight.for_change(change_id) if e.kind == "confmon.check"
        ]
        assert checks and all(e.verdict == "clean" for e in checks)

    def test_lineage_renders_every_phase_group(self):
        robotron, change_id = run_drain_cycle(1)
        tree = flight.render_lineage(change_id)
        for phase in PHASES:
            assert f"{phase} (" in tree
        assert "drain pr for maintenance" in tree


class TestDeterminism:
    def _dump_after_drain(self, worker_count: int) -> tuple[str, str]:
        _, change_id = run_drain_cycle(worker_count)
        return change_id, json.dumps(flight.deterministic_dump(), sort_keys=True)

    def test_drain_dump_byte_identical_across_worker_counts(self):
        id_w1, dump_w1 = self._dump_after_drain(1)
        id_w4, dump_w4 = self._dump_after_drain(4)
        assert id_w1 == id_w4
        assert dump_w1 == dump_w4

    def test_chaos_dump_byte_identical_across_worker_counts(self):
        dumps = {}
        for worker_count in (1, 4):
            run_chaos_rollout(worker_count, CHAOS_SEED)
            dumps[worker_count] = json.dumps(
                flight.deterministic_dump(), sort_keys=True
            )
        assert dumps[1] == dumps[4]


class TestRollbackAttribution:
    def test_rollback_chain_lands_under_the_rollout_change(self):
        change_id = run_chaos_rollout(1, CHAOS_SEED)
        lineage = flight.for_change(change_id)
        kinds = [e.kind for e in lineage]

        # The triggering faults: persistent psw push failures, visible as
        # failed pushes (after in-task retries) attributed to the rollout.
        failed = [
            e for e in lineage if e.kind == "deploy.push" and e.verdict == "failed"
        ]
        assert failed and all(".psw" in e.device for e in failed)
        assert any(e.kind == "deploy.retry" for e in lineage)

        # The breaker verdict and the restorations it caused.
        breakers = [e for e in lineage if e.kind == "deploy.breaker"]
        assert breakers and breakers[0].verdict == "open"
        restores = [e for e in lineage if e.kind == "deploy.lkg_restore"]
        assert restores and all(e.verdict == "restored" for e in restores)

        # The rollout's own verdict closes the chain, in causal order.
        assert kinds[-1] == "change.close"
        outcomes = [e.verdict for e in lineage if e.kind == "deploy.rollout"]
        assert outcomes[0] == "started" and outcomes[-1] == "rolled_back"
        assert kinds.index("deploy.breaker") < kinds.index("deploy.lkg_restore")

    def test_fault_noise_does_not_leak_into_other_changes(self):
        change_id = run_chaos_rollout(1, CHAOS_SEED)
        # Everything the chaos run recorded belongs to the rollout: the
        # seeded collection noise fires outside any change context and the
        # derived-model writes are suppressed, so neither fabricates
        # lineage for changes that never happened (the only other change is
        # the auto build-cluster change from provisioning).
        assert flight.recorder().changes()[-1] == change_id
        assert len(flight.recorder().changes()) == 2
        # After the rollout opened, nothing unattributed but monitoring
        # verdicts (the provisioning pushes before it rightly carry no id).
        open_seq = flight.for_change(change_id)[0].seq
        unattributed = [
            e for e in flight.timeline() if not e.change_id and e.seq > open_seq
        ]
        assert all(
            e.kind in ("confmon.check", "syslog.message") for e in unattributed
        )
