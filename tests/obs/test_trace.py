"""Unit tests for the structured tracer and flame-tree rendering."""

import pytest

from repro import obs
from repro.obs.trace import Span, TraceSink, Tracer
from repro.simulation.clock import Clock


class TestSpanNesting:
    def test_children_link_to_parent(self):
        tracer = Tracer()
        with tracer.span("robotron.provision") as parent:
            with tracer.span("configgen.generate") as child_a:
                pass
            with tracer.span("deploy.initial_provision") as child_b:
                pass
        assert child_a.parent_id == parent.span_id
        assert child_b.parent_id == parent.span_id
        assert parent.parent_id is None
        roots = tracer.sink.roots()
        assert [span.name for span in roots] == ["robotron.provision"]
        assert [span.name for span in tracer.sink.children(parent)] == [
            "configgen.generate",
            "deploy.initial_provision",
        ]

    def test_deep_nesting(self):
        tracer = Tracer()
        with tracer.span("a.b"):
            with tracer.span("c.d"):
                with tracer.span("e.f") as inner:
                    assert tracer.current() is inner
        assert tracer.current() is None
        spans = {span.name: span for span in tracer.sink.spans}
        assert spans["e.f"].parent_id == spans["c.d"].span_id
        assert spans["c.d"].parent_id == spans["a.b"].span_id

    def test_siblings_after_exit_are_not_nested(self):
        tracer = Tracer()
        with tracer.span("a.b"):
            pass
        with tracer.span("c.d") as second:
            pass
        assert second.parent_id is None

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("deploy.deploy"):
                raise RuntimeError("boom")
        (span,) = tracer.sink.spans
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        assert span.ended_wall is not None
        assert tracer.current() is None

    def test_exception_propagates_through_nested_spans(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer.op"):
                with tracer.span("inner.op"):
                    raise ValueError("inner fails")
        statuses = {span.name: span.status for span in tracer.sink.spans}
        assert statuses == {"inner.op": "error", "outer.op": "error"}

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("deploy.deploy", devices=3) as span:
            span.set_attribute("failed", 1)
        (done,) = tracer.sink.spans
        assert done.attributes == {"devices": 3, "failed": 1}


class TestSimTime:
    def test_spans_record_sim_time_when_clock_attached(self):
        tracer = Tracer()
        clock = Clock()
        tracer.set_sim_clock(clock)
        with tracer.span("monitoring.job"):
            clock.advance(60)
        (span,) = tracer.sink.spans
        assert span.started_sim == 0.0
        assert span.ended_sim == 60.0
        assert span.sim_duration == 60.0

    def test_no_clock_means_no_sim_time(self):
        tracer = Tracer()
        with tracer.span("monitoring.job"):
            pass
        (span,) = tracer.sink.spans
        assert span.sim_duration is None


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a.b") as span:
            span.set_attribute("x", 1)  # no-op object absorbs this
        assert len(tracer.sink) == 0
        assert tracer.current() is None


class TestTraceSink:
    def test_bounded_eviction_oldest_first(self):
        sink = TraceSink(max_spans=3)
        for i in range(5):
            sink.add(Span(span_id=i + 1, parent_id=None, name="a.b"))
        assert [span.span_id for span in sink.spans] == [3, 4, 5]

    def test_orphaned_child_renders_as_root(self):
        sink = TraceSink(max_spans=1)
        sink.add(Span(span_id=1, parent_id=None, name="parent.op"))
        sink.add(Span(span_id=2, parent_id=1, name="child.op"))
        assert [span.name for span in sink.roots()] == ["child.op"]

    def test_render_tree_shape(self):
        tracer = Tracer()
        with tracer.span("robotron.provision"):
            with tracer.span("configgen.generate"):
                pass
            with tracer.span("deploy.initial_provision"):
                with tracer.span("deploy.validate"):
                    pass
        text = tracer.sink.render()
        lines = text.splitlines()
        assert lines[0].startswith("robotron.provision")
        assert lines[1].startswith("├─ configgen.generate")
        assert lines[2].startswith("└─ deploy.initial_provision")
        assert lines[3].startswith("   └─ deploy.validate")

    def test_render_marks_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("deploy.deploy"):
                raise RuntimeError("boom")
        assert "[error: RuntimeError: boom]" in tracer.sink.render()

    def test_find(self):
        tracer = Tracer()
        with tracer.span("a.b"):
            pass
        with tracer.span("a.b"):
            pass
        assert len(tracer.sink.find("a.b")) == 2
        assert tracer.sink.find("missing.name") == []


class TestGlobalTracer:
    def test_obs_span_uses_global_sink(self):
        with obs.span("robotron.test", key="value"):
            pass
        (span,) = obs.tracer().sink.spans
        assert span.name == "robotron.test"
        assert span.attributes == {"key": "value"}

    def test_disable_stops_span_recording(self):
        obs.disable()
        with obs.span("robotron.test"):
            pass
        assert len(obs.tracer().sink) == 0
