"""Guard: with ``obs.disable()`` the instrumented paths stay no-ops.

The acceptance bar for the telemetry layer is that turning it off
restores seed behaviour: identical results from the instrumented code
paths, zero recorded state, and per-call costs that are vanishingly
small next to the work being instrumented.
"""

import time

import pytest

from repro import obs
from repro.fbnet.models import NetworkDomain, Pop, Region
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore


def _run_store_workload() -> tuple[dict[str, int], int]:
    """A little design-like workload; returns (table sizes, journal length)."""
    store = ObjectStore()
    with store.transaction():
        region = store.create(Region, name="r1")
        for i in range(20):
            store.create(
                Pop, name=f"pop{i:02d}", region=region, domain=NetworkDomain.POP
            )
    for i in range(0, 20, 2):
        pop = store.first(Pop, Expr("name", Op.EQUAL, f"pop{i:02d}"))
        store.update(pop, peering_capacity_gbps=100)
    with pytest.raises(RuntimeError):
        with store.transaction():
            store.create(
                Pop, name="doomed", region=region, domain=NetworkDomain.POP
            )
            raise RuntimeError("rollback")
    store.filter(Pop, Expr("region", Op.EQUAL, region.id))
    return store.table_sizes(), store.journal_position


class TestDisabledParity:
    def test_disabled_records_no_metrics_or_spans(self):
        obs.disable()
        _run_store_workload()
        assert obs.registry().series() == []
        assert len(obs.tracer().sink) == 0
        assert obs.snapshot() == {
            "metrics": {"counters": [], "gauges": [], "histograms": []},
            "spans": [],
        }

    def test_disabled_and_enabled_produce_identical_store_state(self):
        obs.disable()
        sizes_off, journal_off = _run_store_workload()
        obs.enable()
        sizes_on, journal_on = _run_store_workload()
        assert sizes_off == sizes_on
        assert journal_off == journal_on
        # ... and the enabled run did record the workload.
        assert obs.registry().get("store.txn", store="fbnet", status="commit")
        assert obs.registry().get("store.txn", store="fbnet", status="rollback")

    def test_disabled_factories_return_shared_noop(self):
        obs.disable()
        first = obs.counter("store.txn", store="x")
        second = obs.histogram("rpc.latency")
        third = obs.span("robotron.anything")
        assert first is second is third  # the one NOOP object, no allocations

    def test_disabled_call_sites_are_cheap(self):
        """50k disabled metric touches must stay far under tier-1 noise."""
        obs.disable()
        start = time.perf_counter()
        for _ in range(50_000):
            obs.counter("store.txn", store="fbnet").inc()
        elapsed = time.perf_counter() - start
        # ~0.4us/op observed; 20us/op is two orders of magnitude of slack.
        assert elapsed < 1.0, f"disabled counter path too slow: {elapsed:.3f}s"
