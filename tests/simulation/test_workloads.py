"""Tests for the experiment workload generators."""

from repro.fbnet.models import ClusterGeneration, EventSeverity
from repro.monitoring.classifier import Classifier
from repro.simulation.workloads import (
    ArchitectureEvolution,
    DesignChangeWorkload,
    ModelChurnWorkload,
    PAPER_RULE_COUNTS,
    SyslogWorkload,
)


class TestModelChurn:
    def test_deterministic(self):
        assert ModelChurnWorkload(seed=1).weekly_lines() == (
            ModelChurnWorkload(seed=1).weekly_lines()
        )

    def test_seed_changes_output(self):
        assert ModelChurnWorkload(seed=1).weekly_lines() != (
            ModelChurnWorkload(seed=2).weekly_lines()
        )

    def test_paper_rate_shape(self):
        """Average exceeds 50 lines/day; refactor spikes exist (Fig 14)."""
        weekly = ModelChurnWorkload(seed=7).weekly_lines()
        assert len(weekly) == 156
        daily_average = sum(weekly) / len(weekly) / 7
        assert daily_average > 50 / 7  # >50 lines/day is the paper's claim
        assert max(weekly) > 150  # occasional large refactors


class TestSyslogWorkload:
    def test_rule_table_matches_paper_counts(self):
        workload = SyslogWorkload()
        classifier = Classifier(workload.rule_table())
        for severity, count in PAPER_RULE_COUNTS.items():
            assert classifier.rule_count(severity) == count

    def test_event_mix_dominated_by_ignored(self):
        workload = SyslogWorkload(total_events=20_000)
        classifier = Classifier(workload.rule_table())
        for message in workload.messages():
            classifier(message)
        table = classifier.severity_table()
        _, ignored_pct = table[EventSeverity.IGNORED]
        assert ignored_pct > 90
        _, warning_pct = table[EventSeverity.WARNING]
        assert 1 < warning_pct < 10

    def test_timestamps_span_a_day(self):
        messages = SyslogWorkload(total_events=1000).messages()
        assert 0 <= min(m.timestamp for m in messages)
        assert max(m.timestamp for m in messages) < 86_400

    def test_deterministic(self):
        a = [m.message for m in SyslogWorkload(seed=5, total_events=500).messages()]
        b = [m.message for m in SyslogWorkload(seed=5, total_events=500).messages()]
        assert a == b


class TestDesignChangeWorkload:
    def test_schedule_rates(self):
        """Backbone circuit ops dominate, per section 5.1.2's 'hundreds'."""
        ops = DesignChangeWorkload(seed=3, weeks=52).schedule()
        kinds = [op.kind for op in ops]
        circuit_ops = sum(
            1 for k in kinds if k in ("add_circuit", "migrate_circuit", "delete_circuit")
        )
        router_ops = sum(1 for k in kinds if k in ("add_router", "delete_router"))
        builds = kinds.count("build_cluster")
        assert circuit_ops > router_ops > 0
        assert builds > 20  # roughly weekly cluster builds
        # Monthly rates match the paper's "tens" and "hundreds".
        assert 4 <= router_ops / 12 <= 40
        assert 40 <= circuit_ops / 12 <= 400

    def test_domains_partition(self):
        ops = DesignChangeWorkload(seed=3, weeks=10).schedule()
        assert {op.domain for op in ops} <= {"pop", "datacenter", "backbone"}

    def test_deterministic(self):
        a = DesignChangeWorkload(seed=9, weeks=10).schedule()
        b = DesignChangeWorkload(seed=9, weeks=10).schedule()
        assert [(o.week, o.kind) for o in a] == [(o.week, o.kind) for o in b]


class TestArchitectureEvolution:
    def test_pop_gen1_builds_early_only(self):
        ops = ArchitectureEvolution(seed=4).schedule()
        gen1_builds = [
            op.week
            for op in ops
            if op.kind == "build_cluster"
            and op.params.get("generation") is ClusterGeneration.POP_GEN1
        ]
        assert gen1_builds and max(gen1_builds) < 104 * 0.25

    def test_gen3_builds_late_only(self):
        ops = ArchitectureEvolution(seed=4).schedule()
        gen3_builds = [
            op.week
            for op in ops
            if op.params.get("generation") is ClusterGeneration.DC_GEN3
        ]
        assert gen3_builds and min(gen3_builds) >= 104 * 0.4

    def test_upgrades_present(self):
        ops = ArchitectureEvolution(seed=4).schedule()
        assert any(op.kind == "upgrade_pop_gen2" for op in ops)
        assert any(op.kind == "decommission_oldest" for op in ops)
