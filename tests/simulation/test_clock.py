"""Tests for the simulated clock and event scheduler."""

import pytest

from repro.simulation.clock import Clock, EventScheduler


class TestClock:
    def test_advance(self):
        clock = Clock()
        assert clock.advance(5.0) == 5.0
        assert clock.now == 5.0

    def test_no_time_travel(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestScheduler:
    def test_call_at_fires_in_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_at(5, lambda: fired.append("b"))
        scheduler.call_at(3, lambda: fired.append("a"))
        scheduler.call_at(9, lambda: fired.append("c"))
        scheduler.run_until(6)
        assert fired == ["a", "b"]
        scheduler.run_until(10)
        assert fired == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self):
        scheduler = EventScheduler()
        fired = []
        for label in "abc":
            scheduler.call_at(5, lambda l=label: fired.append(l))
        scheduler.run_until(5)
        assert fired == ["a", "b", "c"]

    def test_clock_is_at_event_time_during_callback(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.call_at(7, lambda: seen.append(scheduler.clock.now))
        scheduler.run_until(100)
        assert seen == [7]
        assert scheduler.clock.now == 100

    def test_callback_may_schedule_more(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.clock.now)
            if len(fired) < 3:
                scheduler.call_after(10, chain)

        scheduler.call_after(10, chain)
        scheduler.run_until(100)
        assert fired == [10, 20, 30]

    def test_cancel(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.call_at(5, lambda: fired.append(1))
        event.cancel()
        scheduler.run_until(10)
        assert fired == []
        assert scheduler.pending == 0

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.run_until(10)
        with pytest.raises(ValueError):
            scheduler.call_at(5, lambda: None)
        with pytest.raises(ValueError):
            scheduler.call_after(-1, lambda: None)

    def test_call_every(self):
        scheduler = EventScheduler()
        fired = []
        cancel = scheduler.call_every(60, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until(300)
        assert fired == [60, 120, 180, 240, 300]
        cancel()
        scheduler.run_until(600)
        assert len(fired) == 5

    def test_call_every_first_at(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_every(60, lambda: fired.append(scheduler.clock.now), first_at=0)
        scheduler.run_until(120)
        assert fired == [0, 60, 120]

    def test_call_every_bad_period(self):
        with pytest.raises(ValueError):
            EventScheduler().call_every(0, lambda: None)

    def test_run_until_returns_fired_count(self):
        scheduler = EventScheduler()
        scheduler.call_at(1, lambda: None)
        scheduler.call_at(2, lambda: None)
        assert scheduler.run_until(5) == 2
