"""Tests for the device fleet: wiring, LLDP, cross-device BGP state."""

import pytest

from repro.common.errors import DeploymentError
from repro.configgen.generator import ConfigGenerator
from repro.design.cluster import build_cluster
from repro.devices.fleet import DeviceFleet
from repro.fbnet.models import ClusterGeneration


def two_node_fleet():
    """Two directly-wired devices with matching configs and BGP."""
    fleet = DeviceFleet()
    a = fleet.add_device("a", "vendor1")
    b = fleet.add_device("b", "vendor2")
    fleet.wire("a", "et1/0", "b", "et1/0")
    a.commit(
        "hostname a\n"
        "interface ae0\n ip addr 10.0.0.0/31\n no shutdown\n!\n"
        "interface et1/0\n channel-group ae0\n no shutdown\n!\n"
        "router bgp 65001\n neighbor 10.0.0.1 remote-as 65002\n"
        " neighbor 10.0.0.1 update-source 10.0.0.0\n!\n"
    )
    b.commit(
        "system {\n    host-name b;\n}\n"
        "interfaces {\n"
        "    ae0 {\n        unit 0 {\n            family inet {\n"
        "                addr 10.0.0.1/31;\n            }\n        }\n    }\n"
        "    et1/0 {\n        gigether-options {\n            802.3ad ae0;\n"
        "        }\n    }\n}\n"
        "protocols {\n    bgp {\n        local-as 65002;\n"
        "        neighbor 10.0.0.0 {\n            peer-as 65001;\n"
        "            local-address 10.0.0.1;\n        }\n    }\n}\n"
    )
    return fleet, a, b


class TestWiring:
    def test_wire_and_peer_lookup(self):
        fleet, a, b = two_node_fleet()
        peer, interface = fleet.peer_of("a", "et1/0")
        assert peer is b and interface == "et1/0"

    def test_double_wire_rejected(self):
        fleet, a, b = two_node_fleet()
        fleet.add_device("c", "vendor1")
        with pytest.raises(DeploymentError, match="already wired"):
            fleet.wire("a", "et1/0", "c", "et1/0")

    def test_unwire(self):
        fleet, a, b = two_node_fleet()
        fleet.unwire("a", "et1/0")
        assert fleet.peer_of("a", "et1/0") is None
        assert fleet.peer_of("b", "et1/0") is None

    def test_duplicate_device_rejected(self):
        fleet, _, _ = two_node_fleet()
        with pytest.raises(DeploymentError, match="already exists"):
            fleet.add_device("a", "vendor1")

    def test_get_unknown(self):
        with pytest.raises(DeploymentError, match="no device"):
            DeviceFleet().get("ghost")


class TestOperStatus:
    def test_wired_enabled_interfaces_up(self):
        fleet, a, b = two_node_fleet()
        assert a.interface_oper_status("et1/0") == "up"
        assert a.interface_oper_status("ae0") == "up"

    def test_remote_crash_brings_link_down(self):
        fleet, a, b = two_node_fleet()
        b.crash()
        assert a.interface_oper_status("et1/0") == "down"
        assert a.interface_oper_status("ae0") == "down"

    def test_remote_unconfigured_brings_link_down(self):
        fleet, a, b = two_node_fleet()
        b.commit("system {\n    host-name b;\n}\n")  # et1/0 gone
        assert a.interface_oper_status("et1/0") == "down"


class TestLldp:
    def test_neighbors_visible(self):
        fleet, a, b = two_node_fleet()
        neighbors = a.lldp_neighbors()
        assert neighbors == [
            {
                "local_interface": "et1/0",
                "neighbor_device": "b",
                "neighbor_interface": "et1/0",
            }
        ]

    def test_crashed_neighbor_disappears(self):
        fleet, a, b = two_node_fleet()
        b.crash()
        assert a.lldp_neighbors() == []


class TestBgpState:
    def test_established_both_ways(self):
        fleet, a, b = two_node_fleet()
        assert fleet.bgp_session_state(a, "10.0.0.1") == "established"
        assert fleet.bgp_session_state(b, "10.0.0.0") == "established"
        assert fleet.all_bgp_established()

    def test_idle_when_peer_ip_unknown(self):
        fleet, a, b = two_node_fleet()
        assert fleet.bgp_session_state(a, "10.9.9.9") == "idle"

    def test_active_when_one_sided(self):
        """The cross-device dependency: both peers must be configured."""
        fleet, a, b = two_node_fleet()
        b.commit(
            "system {\n    host-name b;\n}\n"
            "interfaces {\n    ae0 {\n        unit 0 {\n"
            "            family inet {\n                addr 10.0.0.1/31;\n"
            "            }\n        }\n    }\n"
            "    et1/0 {\n        gigether-options {\n            802.3ad ae0;\n"
            "        }\n    }\n}\n"
        )  # b no longer configures the neighbor back
        assert fleet.bgp_session_state(a, "10.0.0.1") == "active"
        assert not fleet.all_bgp_established()

    def test_idle_when_peer_down(self):
        fleet, a, b = two_node_fleet()
        b.crash()
        assert fleet.bgp_session_state(a, "10.0.0.1") == "idle"

    def test_loopback_sessions_need_no_wire(self):
        fleet = DeviceFleet()
        a = fleet.add_device("a", "vendor1")
        b = fleet.add_device("b", "vendor1")
        for device, local, peer in ((a, "1::1", "1::2"), (b, "1::2", "1::1")):
            device.commit(
                f"hostname {device.name}\n"
                f"interface lo0\n ipv6 addr {local}/128\n!\n"
                f"router bgp 65000\n neighbor {peer} remote-as 65000\n"
                f" neighbor {peer} update-source {local}\n!\n"
            )
        assert fleet.bgp_session_state(a, "1::2") == "established"

    def test_ip_index_invalidated_on_config_change(self):
        fleet, a, b = two_node_fleet()
        assert fleet.device_with_ip("10.0.0.1")[0] is b
        b.commit("system {\n    host-name b;\n}\n")
        assert fleet.device_with_ip("10.0.0.1") is None


class TestFromFbnet:
    def test_fleet_matches_desired_state(self, store, env):
        cluster = build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        fleet = DeviceFleet.from_fbnet(store)
        assert len(fleet) == 14
        assert fleet.get("pop01.c01.pr1").vendor == "vendor1"
        assert fleet.get("pop01.c01.psw1").vendor == "vendor2"
        # Wiring matches the circuit objects: every pif has a peer.
        peer, _ = fleet.peer_of("pop01.c01.pr1", "et1/0")
        assert peer.name.startswith("pop01.c01.psw")

    def test_provisioned_fleet_converges(self, store, env):
        from repro.fbnet.models import DrainState

        cluster = build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        # Devices are born drained; undrain them so sessions may come up.
        for device in cluster.all_devices():
            store.update(device, drain_state=DrainState.UNDRAINED)
        fleet = DeviceFleet.from_fbnet(store)
        for name, config in ConfigGenerator(store).generate_location(
            env.pops["pop01"]
        ).items():
            fleet.get(name).commit(config.text)
        assert fleet.all_bgp_established()

    def test_sync_wiring_after_design_change(self, store, env):
        from repro.design.cluster import decommission_cluster

        cluster = build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        fleet = DeviceFleet.from_fbnet(store)
        decommission_cluster(store, cluster.cluster)
        fleet.sync_wiring(store)
        assert fleet.peer_of("pop01.c01.pr1", "et1/0") is None
