"""Tests for the emulated device: config ops, timers, endpoints, faults."""

import pytest

from repro.common.errors import MonitoringError
from repro.devices.emulator import (
    CommitError,
    DeviceDownError,
    EmulatedDevice,
    UnsupportedOperation,
)
from repro.simulation.clock import EventScheduler

V1_CONFIG = "hostname d1\ninterface ae0\n mtu 9192\n no shutdown\n!\n"
V1_CONFIG_B = "hostname d1\ninterface ae0\n mtu 9000\n no shutdown\n!\n"
V2_CONFIG = "system {\n    host-name d1;\n}\n"
V2_CONFIG_B = "system {\n    host-name d1;\n    domain-name x.net;\n}\n"


@pytest.fixture
def sched():
    return EventScheduler()


@pytest.fixture
def v1(sched):
    return EmulatedDevice("d1", "vendor1", sched)


@pytest.fixture
def v2(sched):
    return EmulatedDevice("d1", "vendor2", sched)


class TestConfigOps:
    def test_commit_applies(self, v1):
        v1.commit(V1_CONFIG)
        assert v1.running_config == V1_CONFIG
        assert v1.parsed.hostname == "d1"

    def test_commit_syntax_error_rejected(self, v1):
        with pytest.raises(CommitError):
            v1.commit("nonsense statement\n")
        assert v1.running_config == ""

    def test_copy_config_requires_clean(self, v1):
        v1.commit(V1_CONFIG)
        with pytest.raises(CommitError, match="clean"):
            v1.copy_config(V1_CONFIG_B)
        v1.erase()
        v1.copy_config(V1_CONFIG_B)
        assert v1.parsed.interfaces["ae0"].mtu == 9000

    def test_rollback(self, v1):
        v1.commit(V1_CONFIG)
        v1.commit(V1_CONFIG_B)
        v1.rollback(1)
        assert v1.running_config == V1_CONFIG

    def test_rollback_too_far(self, v1):
        v1.commit(V1_CONFIG)
        with pytest.raises(CommitError, match="cannot roll back"):
            v1.rollback(5)

    def test_config_history_grows(self, v1):
        v1.commit(V1_CONFIG)
        v1.commit(V1_CONFIG_B)
        assert len(v1.config_history) == 2


class TestDryrun:
    def test_vendor2_native_dryrun(self, v2):
        v2.commit(V2_CONFIG)
        diff = v2.dryrun(V2_CONFIG_B)
        assert "+    domain-name x.net;" in diff
        assert v2.running_config == V2_CONFIG  # nothing applied

    def test_vendor2_dryrun_catches_syntax(self, v2):
        with pytest.raises(Exception):
            v2.dryrun("not vendor2 at all\n")

    def test_vendor1_has_no_native_dryrun(self, v1):
        assert not v1.supports_native_dryrun
        with pytest.raises(UnsupportedOperation):
            v1.dryrun(V1_CONFIG)


class TestCommitConfirmed:
    def test_confirm_keeps_change(self, sched, v1):
        v1.commit(V1_CONFIG)
        v1.commit_confirmed(V1_CONFIG_B, grace_seconds=600)
        assert v1.running_config == V1_CONFIG_B
        v1.confirm()
        sched.run_for(1200)
        assert v1.running_config == V1_CONFIG_B

    def test_timeout_rolls_back(self, sched, v1):
        v1.commit(V1_CONFIG)
        v1.commit_confirmed(V1_CONFIG_B, grace_seconds=600)
        sched.run_for(601)
        assert v1.running_config == V1_CONFIG

    def test_confirm_without_pending(self, v1):
        with pytest.raises(CommitError, match="no commit awaiting"):
            v1.confirm()

    def test_new_commit_cancels_pending_confirm(self, sched, v1):
        v1.commit(V1_CONFIG)
        v1.commit_confirmed(V1_CONFIG_B, grace_seconds=600)
        v1.commit(V1_CONFIG_B)  # explicit commit supersedes the timer
        sched.run_for(1200)
        assert v1.running_config == V1_CONFIG_B

    def test_bad_grace(self, v1):
        with pytest.raises(CommitError):
            v1.commit_confirmed(V1_CONFIG, grace_seconds=0)


class TestLiveness:
    def test_crash_blocks_management(self, v1):
        v1.crash()
        assert not v1.reachable()
        with pytest.raises(DeviceDownError):
            v1.commit(V1_CONFIG)
        with pytest.raises(DeviceDownError):
            v1.snmp_get("system")

    def test_boot_restores_and_logs(self, sched, v1):
        events = []
        v1.on_syslog(events.append)
        v1.crash()
        sched.clock.advance(100)
        v1.boot()
        assert v1.reachable()
        assert any("restarted" in e["message"] for e in events)
        assert v1.uptime == 0.0

    def test_configs_survive_crash(self, v1):
        v1.commit(V1_CONFIG)
        v1.crash()
        v1.boot()
        assert v1.running_config == V1_CONFIG


class TestFaultInjection:
    def test_fail_next_commits(self, v1):
        v1.fail_next_commits = 1
        with pytest.raises(CommitError, match="device error"):
            v1.commit(V1_CONFIG)
        v1.commit(V1_CONFIG)  # next attempt succeeds
        assert v1.running_config == V1_CONFIG

    def test_commit_delay_reported(self, v1):
        v1.commit_delay = 42.0
        assert v1.commit(V1_CONFIG) == 42.0


class TestSyslog:
    def test_config_change_emits_when_collector_configured(self, v1):
        events = []
        v1.on_syslog(events.append)
        v1.commit("hostname d1\nlogging host 2401:db00:ffff::514\n")
        assert any(e["tag"] == "CONFIG" for e in events)

    def test_silent_without_collector_config(self, v1):
        events = []
        v1.on_syslog(events.append)
        v1.commit(V1_CONFIG)  # no "logging host" in config
        assert events == []

    def test_drop_syslog_fault(self, v1):
        events = []
        v1.on_syslog(events.append)
        v1.drop_syslog = True
        v1.commit("hostname d1\nlogging host 2401:db00:ffff::514\n")
        assert events == []


class TestMonitoringEndpoints:
    def test_snmp_tables(self, v1):
        v1.commit(V1_CONFIG)
        rows = v1.snmp_get("interfaces")
        assert rows[0]["name"] == "ae0"
        system = v1.snmp_get("system")
        assert 0 < system["cpu"] < 1

    def test_capability_matrix(self, v1, v2):
        v1.commit(V1_CONFIG)
        v2.commit(V2_CONFIG)
        v1.xmlrpc_get("interfaces")  # vendor1: ok
        v2.thrift_get("interfaces")  # vendor2: ok
        with pytest.raises(MonitoringError, match="does not support"):
            v1.thrift_get("interfaces")
        with pytest.raises(MonitoringError, match="does not support"):
            v2.xmlrpc_get("interfaces")

    def test_request_counters(self, v1):
        v1.commit(V1_CONFIG)
        v1.snmp_get("system")
        v1.cli_show("show running-config")
        assert v1.requests_served["snmp"] == 1
        assert v1.requests_served["cli"] == 1

    def test_lacp_members_via_cli(self, v1):
        v1.commit(
            "hostname d1\ninterface ae0\n no shutdown\n!\n"
            "interface et1/0\n channel-group ae0\n no shutdown\n!\n"
        )
        members = v1.cli_show("show lacp members ae0")
        assert members[0]["member"] == "et1/0"

    def test_unknown_cli_command(self, v1):
        with pytest.raises(MonitoringError, match="unknown CLI"):
            v1.cli_show("show frobnicator")

    def test_loopback_always_up(self, v1):
        v1.commit("hostname d1\ninterface lo0\n ipv6 addr 2401::1/128\n!\n")
        assert v1.interface_oper_status("lo0") == "up"

    def test_unwired_physical_down(self, v1):
        v1.commit(V1_CONFIG)  # ae0 has no members, not wired
        assert v1.interface_oper_status("ae0") == "down"

    def test_interface_with_ip(self, v1):
        v1.commit("hostname d1\ninterface ae0\n ip addr 10.0.0.0/31\n!\n")
        assert v1.interface_with_ip("10.0.0.0") == "ae0"
        assert v1.interface_with_ip("10.9.9.9") is None
