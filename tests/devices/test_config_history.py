"""Versioned, bounded config history and commit_confirmed clock edges."""

import pytest

from repro.devices.emulator import CommitError, DeviceDownError, EmulatedDevice
from repro.simulation.clock import EventScheduler


def config(mtu):
    return f"hostname d1\ninterface ae0\n mtu {mtu}\n no shutdown\n!\n"


CONFIG_A = config(9192)
CONFIG_B = config(9000)


@pytest.fixture
def sched():
    return EventScheduler()


@pytest.fixture
def device(sched):
    return EmulatedDevice("d1", "vendor1", sched)


class TestVersionedHistory:
    def test_versions_are_monotonic(self, device):
        device.commit(CONFIG_A)
        device.commit(CONFIG_B)
        assert [entry.version for entry in device.config_history] == [1, 2]
        assert device.config_version == 2

    def test_config_version_zero_before_any_commit(self, device):
        assert device.config_version == 0

    def test_revert_to_restores_text(self, device):
        device.commit(CONFIG_A)
        device.commit(CONFIG_B)
        device.revert_to(1)
        assert device.running_config == CONFIG_A
        # The revert is itself a new committed version.
        assert device.config_version == 3

    def test_revert_to_same_text_is_a_noop(self, device):
        device.commit(CONFIG_A)
        version = device.config_version
        device.revert_to(version)
        assert device.config_version == version

    def test_revert_to_unknown_version_raises(self, device):
        device.commit(CONFIG_A)
        with pytest.raises(CommitError, match="not in the on-box history"):
            device.revert_to(99)

    def test_revert_on_dead_device_raises(self, device):
        device.commit(CONFIG_A)
        device.crash()
        with pytest.raises(DeviceDownError):
            device.revert_to(1)

    def test_revert_cancels_pending_confirm(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        device.revert_to(1)
        sched.run_for(700)  # the dead timer must not fire a second revert
        assert device.running_config == CONFIG_A


class TestRetention:
    def test_history_is_bounded(self, sched):
        device = EmulatedDevice("d1", "vendor1", sched, max_config_history=5)
        for mtu in range(9000, 9020):
            device.commit(config(mtu))
        assert len(device.config_history) == 5
        # The newest versions survive.
        assert device.config_history[-1].version == 20

    def test_pinned_versions_survive_eviction(self, sched):
        device = EmulatedDevice("d1", "vendor1", sched, max_config_history=5)
        device.commit(config(9000))
        device.pin_version(1)
        for mtu in range(9001, 9020):
            device.commit(config(mtu))
        assert len(device.config_history) == 5
        versions = [entry.version for entry in device.config_history]
        assert 1 in versions  # pinned: exempt from eviction
        assert device.version_entry(1).text == config(9000)

    def test_unpinned_version_becomes_evictable(self, sched):
        device = EmulatedDevice("d1", "vendor1", sched, max_config_history=3)
        device.commit(config(9000))
        device.pin_version(1)
        device.unpin_version(1)
        for mtu in range(9001, 9010):
            device.commit(config(mtu))
        assert all(entry.version != 1 for entry in device.config_history)

    def test_unpin_tolerates_evicted_versions(self, sched):
        device = EmulatedDevice("d1", "vendor1", sched, max_config_history=2)
        for mtu in range(9000, 9010):
            device.commit(config(mtu))
        device.unpin_version(1)  # long gone; must not raise

    def test_evicted_version_raises_on_lookup(self, sched):
        device = EmulatedDevice("d1", "vendor1", sched, max_config_history=2)
        for mtu in range(9000, 9010):
            device.commit(config(mtu))
        with pytest.raises(CommitError, match="evicted"):
            device.version_entry(1)

    def test_invalid_retention_limit_rejected(self, sched):
        with pytest.raises(ValueError):
            EmulatedDevice("d1", "vendor1", sched, max_config_history=0)

    def test_fleet_passthrough(self, sched):
        from repro.devices.fleet import DeviceFleet

        fleet = DeviceFleet(sched)
        device = fleet.add_device("d1", "vendor1", max_config_history=7)
        assert device.max_config_history == 7
        device.commit(CONFIG_A)
        assert fleet.config_versions() == {"d1": 1}


class TestCommitConfirmedEdges:
    """The satellite's commit_confirmed edge cases on the simulated clock."""

    def test_grace_expiry_restores_prior_config(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        assert device.running_config == CONFIG_B
        sched.run_for(601)
        assert device.running_config == CONFIG_A
        # The rollback is a recorded revision, with the reason captured.
        assert device.config_history[-1].reason == "confirm-timeout rollback"

    def test_crash_during_grace_window(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        device.crash()
        sched.run_for(700)
        device.boot()
        # The timer must not reach into a dead device; the candidate config
        # survives the reboot, and there is nothing left to confirm.
        assert device.running_config == CONFIG_B
        with pytest.raises(CommitError, match="no commit awaiting confirmation"):
            device.confirm()

    def test_confirm_after_expiry_raises_clear_error(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        sched.run_for(601)
        with pytest.raises(CommitError, match="no commit awaiting confirmation"):
            device.confirm()

    def test_abort_confirm_reverts_immediately(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        device.abort_confirm()
        assert device.running_config == CONFIG_A
        history_len = len(device.config_history)
        sched.run_for(601)  # cancelled timer: no second rollback
        assert device.running_config == CONFIG_A
        assert len(device.config_history) == history_len

    def test_abort_confirm_without_pending_raises(self, device):
        device.commit(CONFIG_A)
        with pytest.raises(CommitError, match="no commit awaiting confirmation"):
            device.abort_confirm()
