"""Edge-case tests for the device emulator's timers and failure modes."""

import pytest

from repro.devices.emulator import CommitError, EmulatedDevice
from repro.simulation.clock import EventScheduler

CONFIG_A = "hostname d1\ninterface ae0\n mtu 9192\n no shutdown\n!\n"
CONFIG_B = "hostname d1\ninterface ae0\n mtu 9000\n no shutdown\n!\n"


@pytest.fixture
def sched():
    return EventScheduler()


@pytest.fixture
def device(sched):
    return EmulatedDevice("d1", "vendor1", sched)


class TestConfirmTimerEdges:
    def test_crash_during_grace_skips_rollback(self, sched, device):
        """A device that dies mid-grace keeps whatever was running when it
        crashed; the timer must not 'reach into' a dead device."""
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        device.crash()
        sched.run_for(700)
        device.boot()
        assert device.running_config == CONFIG_B

    def test_erase_cancels_pending_confirm(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        device.erase()
        sched.run_for(700)  # the timer must not resurrect CONFIG_A
        assert device.running_config == ""

    def test_confirm_after_timer_fired_raises(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        sched.run_for(700)
        with pytest.raises(CommitError, match="no commit awaiting"):
            device.confirm()

    def test_stacked_commit_confirmed_replaces_timer(self, sched, device):
        device.commit(CONFIG_A)
        device.commit_confirmed(CONFIG_B, grace_seconds=600)
        config_c = CONFIG_B.replace("9000", "8000")
        device.commit_confirmed(config_c, grace_seconds=600)
        sched.run_for(700)
        # The second grace window rolls back to B (the state before C),
        # not all the way to A.
        assert device.running_config == CONFIG_B


class TestSyslogEdges:
    def test_identical_commit_emits_no_config_change(self, device):
        events = []
        device.on_syslog(events.append)
        logging_config = CONFIG_A + "logging host 2401:db00:ffff::514\n"
        device.commit(logging_config)
        events.clear()
        device.commit(logging_config)  # same text: no change, no syslog
        assert events == []

    def test_rollback_emits_config_change(self, device):
        events = []
        device.on_syslog(events.append)
        logging_config = CONFIG_A + "logging host 2401:db00:ffff::514\n"
        device.commit(logging_config)
        device.commit(logging_config.replace("9192", "9000"))
        events.clear()
        device.rollback(1)
        assert any(e["tag"] == "CONFIG" for e in events)


class TestTelemetryEdges:
    def test_cpu_grows_with_config_size(self, device):
        device.commit(CONFIG_A)
        small = device.snmp_get("system")["cpu"]
        many_interfaces = "hostname d1\n" + "".join(
            f"interface ae{i}\n no shutdown\n!\n" for i in range(20)
        )
        device.commit(many_interfaces)
        large = device.snmp_get("system")["cpu"]
        assert large > small

    def test_uptime_zero_while_down(self, sched, device):
        sched.clock.advance(500)
        assert device.uptime == 500
        device.crash()
        assert device.uptime == 0.0

    def test_distinct_devices_distinct_baselines(self, sched):
        a = EmulatedDevice("alpha", "vendor1", sched)
        b = EmulatedDevice("omega-long-name", "vendor1", sched)
        assert a.cpu_base != b.cpu_base
