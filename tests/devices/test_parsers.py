"""Tests for the vendor config parsers, including generator round-trips."""

import pytest

from repro.configgen.generator import ConfigGenerator
from repro.design.cluster import build_cluster
from repro.devices.parsers import ConfigSyntaxError, parse_config
from repro.fbnet.models import ClusterGeneration

VENDOR1_SAMPLE = """# header comment
hostname psw1
ip domain-name example.net
logging host 2401:db00:ffff::514
interface ae0
 mtu 9192
 description to-pr1
 ip addr 10.0.0.0/31
 ipv6 addr 2401:db00::/127
 no shutdown
!
interface et1/0
 mtu 9192
 channel-group ae0
 lacp rate fast
 no shutdown
!
router bgp 65101
 neighbor 10.0.0.1 remote-as 65501
 neighbor 10.0.0.1 update-source 10.0.0.0
 neighbor 10.0.0.1 description upstream
!
"""

VENDOR2_SAMPLE = """# header comment
system {
    host-name psw1;
    domain-name example.net;
    syslog {
        host 2401:db00:ffff::514;
    }
}
interfaces {
    ae0 {
        mtu 9192;
        description "to-pr1";
        unit 0 {
            family inet {
                addr 10.0.0.0/31;
            }
            family inet6 {
                addr 2401:db00::/127;
            }
        }
    }
    replace: et1/0 {
        gigether-options {
            802.3ad ae0;
        }
    }
}
protocols {
    bgp {
        local-as 65101;
        neighbor 10.0.0.1 {
            peer-as 65501;
            local-address 10.0.0.0;
            description "upstream";
        }
    }
}
"""


class TestVendor1:
    def test_parses_sample(self):
        config = parse_config("vendor1", VENDOR1_SAMPLE)
        assert config.hostname == "psw1"
        assert config.domain == "example.net"
        assert config.syslog_hosts == ["2401:db00:ffff::514"]
        ae0 = config.interfaces["ae0"]
        assert ae0.mtu == 9192
        assert ae0.v4_prefix == "10.0.0.0/31"
        assert ae0.v6_prefix == "2401:db00::/127"
        assert ae0.description == "to-pr1"
        assert config.interfaces["et1/0"].channel_group == "ae0"
        assert config.bgp_local_asn == 65101
        neighbor = config.bgp_neighbors["10.0.0.1"]
        assert neighbor.peer_asn == 65501
        assert neighbor.local_ip == "10.0.0.0"

    def test_shutdown_state(self):
        config = parse_config("vendor1", "interface ae0\n shutdown\n!\n")
        assert not config.interfaces["ae0"].enabled

    def test_rejects_brace_syntax(self):
        with pytest.raises(ConfigSyntaxError, match="brace"):
            parse_config("vendor1", "system {\n}\n")

    def test_rejects_unknown_statement(self):
        with pytest.raises(ConfigSyntaxError, match="unknown statement"):
            parse_config("vendor1", "frobnicate everything\n")

    def test_rejects_unknown_interface_option(self):
        with pytest.raises(ConfigSyntaxError, match="unknown interface option"):
            parse_config("vendor1", "interface ae0\n frobnicate\n!\n")

    def test_rejects_stray_indent(self):
        with pytest.raises(ConfigSyntaxError, match="stray"):
            parse_config("vendor1", " floating line\n")

    def test_tunnel_parsing(self):
        text = (
            "mpls traffic-eng\n!\ninterface tunnel-te1\n description te-a--b\n"
            " destination 2401:db00:f::1\n autoroute announce\n!\n"
        )
        config = parse_config("vendor1", text)
        assert config.tunnels == {"tunnel-te1": "2401:db00:f::1"}


class TestVendor2:
    def test_parses_sample(self):
        config = parse_config("vendor2", VENDOR2_SAMPLE)
        assert config.hostname == "psw1"
        assert config.syslog_hosts == ["2401:db00:ffff::514"]
        ae0 = config.interfaces["ae0"]
        assert ae0.v4_prefix == "10.0.0.0/31"
        assert ae0.v6_prefix == "2401:db00::/127"
        assert ae0.description == "to-pr1"
        assert config.interfaces["et1/0"].channel_group == "ae0"
        assert config.bgp_neighbors["10.0.0.1"].peer_asn == 65501

    def test_unbalanced_braces(self):
        with pytest.raises(ConfigSyntaxError, match="unclosed"):
            parse_config("vendor2", "system {\n    host-name x;\n")
        with pytest.raises(ConfigSyntaxError, match="unbalanced"):
            parse_config("vendor2", "}\n")

    def test_statement_must_terminate(self):
        with pytest.raises(ConfigSyntaxError, match="end with"):
            parse_config("vendor2", "system {\n    host-name x\n}\n")

    def test_unknown_top_level_block(self):
        with pytest.raises(ConfigSyntaxError, match="unknown top-level"):
            parse_config("vendor2", "wibble {\n}\n")

    def test_lsp_parsing(self):
        text = (
            "protocols {\n    mpls {\n        label-switched-path te-x {\n"
            "            to 2401:db00:f::2;\n        }\n    }\n}\n"
        )
        config = parse_config("vendor2", text)
        assert config.tunnels == {"te-x": "2401:db00:f::2"}


class TestCrossDialect:
    def test_unknown_vendor(self):
        with pytest.raises(ConfigSyntaxError, match="unknown vendor"):
            parse_config("vendor9", "")

    def test_wrong_dialect_is_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("vendor2", VENDOR1_SAMPLE)
        with pytest.raises(ConfigSyntaxError):
            parse_config("vendor1", VENDOR2_SAMPLE)


class TestGeneratorRoundTrip:
    """Generated configs must parse back into the data they came from."""

    @pytest.fixture
    def configs(self, store, env):
        build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        return ConfigGenerator(store).generate_location(env.pops["pop01"])

    def test_every_generated_config_parses(self, configs):
        for config in configs.values():
            parsed = parse_config(config.vendor, config.text)
            assert parsed.hostname == config.device_name

    def test_interfaces_round_trip(self, configs):
        config = configs["pop01.c01.pr1"]
        parsed = parse_config(config.vendor, config.text)
        for agg in config.data["aggs"]:
            stanza = parsed.interfaces[agg["name"]]
            assert stanza.v6_prefix == agg["v6_prefix"]
            for pif in agg["pifs"]:
                assert parsed.interfaces[pif["name"]].channel_group == agg["name"]

    def test_bgp_round_trips(self, configs):
        config = configs["pop01.c01.psw1"]
        parsed = parse_config(config.vendor, config.text)
        assert parsed.bgp_local_asn == config.data["bgp"]["local_asn"]
        expected = {n["peer_ip"] for n in config.data["bgp"]["neighbors"]}
        assert set(parsed.bgp_neighbors) == expected
