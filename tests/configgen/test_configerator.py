"""Tests for the Configerator template repository and review workflow."""

import pytest

from repro.common.errors import ConfigGenerationError
from repro.configgen.configerator import Configerator


@pytest.fixture
def repo():
    return Configerator()


class TestBuiltinSeed:
    def test_vendor_templates_present(self, repo):
        for vendor in ("vendor1", "vendor2"):
            for section in ("system", "interfaces", "bgp", "mpls"):
                assert repo.exists(f"{vendor}/{section}.tmpl")

    def test_seed_is_version_one(self, repo):
        assert repo.current_version("vendor1/system.tmpl") == 1

    def test_unseeded_repo_is_empty(self):
        assert Configerator(seed_builtin=False).paths() == []


class TestReviewWorkflow:
    def test_propose_does_not_land(self, repo):
        repo.propose("vendor1/system.tmpl", "x", author="alice")
        assert repo.get("vendor1/system.tmpl") != "x"
        assert len(repo.pending()) == 1

    def test_approve_lands(self, repo):
        change = repo.propose("vendor1/system.tmpl", "new content", author="alice")
        version = repo.approve(change.change_id, reviewer="bob")
        assert version.version == 2
        assert repo.get("vendor1/system.tmpl") == "new content"
        assert repo.pending() == []

    def test_self_review_rejected(self, repo):
        change = repo.propose("vendor1/system.tmpl", "x", author="alice")
        with pytest.raises(ConfigGenerationError, match="cannot review"):
            repo.approve(change.change_id, reviewer="alice")

    def test_reject_discards(self, repo):
        change = repo.propose("vendor1/system.tmpl", "x", author="alice")
        repo.reject(change.change_id, reviewer="bob")
        with pytest.raises(ConfigGenerationError, match="no pending"):
            repo.approve(change.change_id, reviewer="bob")
        assert repo.current_version("vendor1/system.tmpl") == 1

    def test_author_required(self, repo):
        with pytest.raises(ConfigGenerationError, match="author"):
            repo.propose("p", "c", author="")

    def test_new_path_via_review(self, repo):
        change = repo.propose("vendor1/firewall.tmpl", "acl {{ n }}", author="a")
        repo.approve(change.change_id, reviewer="b")
        assert repo.get("vendor1/firewall.tmpl") == "acl {{ n }}"


class TestHistory:
    def test_versions_retained(self, repo):
        for index in range(3):
            change = repo.propose("p.tmpl", f"v{index}", author="a")
            repo.approve(change.change_id, reviewer="b")
        assert repo.get("p.tmpl", version=1) == "v0"
        assert repo.get("p.tmpl", version=3) == "v2"
        assert repo.get("p.tmpl") == "v2"
        assert len(repo.history("p.tmpl")) == 3

    def test_bad_version(self, repo):
        with pytest.raises(ConfigGenerationError, match="no version"):
            repo.get("vendor1/system.tmpl", version=99)

    def test_missing_path(self, repo):
        with pytest.raises(ConfigGenerationError, match="no template"):
            repo.get("ghost.tmpl")

    def test_diff_between_versions(self, repo):
        change = repo.propose("p.tmpl", "line1\nline2\n", author="a")
        repo.approve(change.change_id, reviewer="b")
        change = repo.propose("p.tmpl", "line1\nline2 changed\n", author="a")
        repo.approve(change.change_id, reviewer="b")
        diff = repo.diff("p.tmpl", 1, 2)
        assert "-line2" in diff and "+line2 changed" in diff

    def test_history_records_identities(self, repo):
        change = repo.propose("p.tmpl", "x", author="alice", note="why")
        repo.approve(change.change_id, reviewer="bob")
        version = repo.history("p.tmpl")[-1]
        assert (version.author, version.reviewer, version.note) == (
            "alice", "bob", "why",
        )
