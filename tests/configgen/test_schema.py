"""Tests for the Thrift-like config data schema (paper Figure 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigGenerationError
from repro.configgen.schema import (
    CONFIG_SCHEMA,
    FieldDef,
    SchemaRegistry,
    TBool,
    TI32,
    TI64,
    TList,
    TString,
    TStructRef,
)


def minimal_device(**overrides):
    data = {
        "name": "psw1",
        "vendor": "vendor2",
        "system": {"hostname": "psw1"},
    }
    data.update(overrides)
    return data


class TestValidation:
    def test_minimal_device_validates(self):
        normalized = CONFIG_SCHEMA.validate("Device", minimal_device())
        assert normalized["aggs"] == []
        assert normalized["system"]["syslog_collector"] == ""

    def test_missing_required_field(self):
        with pytest.raises(ConfigGenerationError, match="required"):
            CONFIG_SCHEMA.validate("Device", {"name": "x", "vendor": "v"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigGenerationError, match="unknown field"):
            CONFIG_SCHEMA.validate("Device", minimal_device(bogus=1))

    def test_type_mismatch(self):
        with pytest.raises(ConfigGenerationError, match="expected string"):
            CONFIG_SCHEMA.validate("Device", minimal_device(name=42))

    def test_nested_struct_validated(self):
        device = minimal_device(
            aggs=[{"name": "ae0", "number": "zero"}]  # number must be i32
        )
        with pytest.raises(ConfigGenerationError, match="aggs\\[0\\].number"):
            CONFIG_SCHEMA.validate("Device", device)

    def test_list_element_path_in_error(self):
        device = minimal_device(aggs=[{"name": "ae0", "number": 0, "pifs": [{}]}])
        with pytest.raises(ConfigGenerationError, match="pifs\\[0\\].name"):
            CONFIG_SCHEMA.validate("Device", device)

    def test_i32_range(self):
        with pytest.raises(ConfigGenerationError, match="i32 range"):
            CONFIG_SCHEMA.validate(
                "Device",
                minimal_device(aggs=[{"name": "ae0", "number": 2**31}]),
            )

    def test_bool_strictness(self):
        device = minimal_device(
            aggs=[{"name": "ae0", "number": 0, "lacp_fast": "yes"}]
        )
        with pytest.raises(ConfigGenerationError, match="expected bool"):
            CONFIG_SCHEMA.validate("Device", device)

    def test_unknown_struct(self):
        with pytest.raises(ConfigGenerationError, match="unknown struct"):
            CONFIG_SCHEMA.validate("NoSuchStruct", {})


class TestBinaryWire:
    def test_round_trip_minimal(self):
        wire = CONFIG_SCHEMA.dumps("Device", minimal_device())
        revived = CONFIG_SCHEMA.loads("Device", wire)
        assert revived["name"] == "psw1"
        assert revived["system"]["hostname"] == "psw1"

    def test_round_trip_full(self):
        device = minimal_device(
            role="psw",
            aggs=[
                {
                    "name": "ae0",
                    "number": 0,
                    "v6_prefix": "2401:db00::/127",
                    "pifs": [{"name": "et1/0", "speed_mbps": 10_000}],
                }
            ],
            bgp={
                "local_asn": 65101,
                "neighbors": [
                    {
                        "peer_ip": "2401:db00::1",
                        "peer_asn": 65501,
                        "local_ip": "2401:db00::",
                        "session_type": "ebgp",
                        "address_family": "v6",
                    }
                ],
            },
            tunnels=[{"name": "te-1", "destination": "2401:db00:f::1"}],
        )
        revived = CONFIG_SCHEMA.loads("Device", CONFIG_SCHEMA.dumps("Device", device))
        assert revived["aggs"][0]["pifs"][0]["name"] == "et1/0"
        assert revived["bgp"]["neighbors"][0]["peer_asn"] == 65501
        assert revived["tunnels"][0]["destination"] == "2401:db00:f::1"

    def test_absent_optionals_round_trip_as_defaults(self):
        wire = CONFIG_SCHEMA.dumps("Device", minimal_device())
        revived = CONFIG_SCHEMA.loads("Device", wire)
        assert revived["bgp"] is None
        assert revived["role"] == ""

    def test_trailing_bytes_rejected(self):
        wire = CONFIG_SCHEMA.dumps("Device", minimal_device())
        with pytest.raises(ConfigGenerationError, match="trailing"):
            CONFIG_SCHEMA.loads("Device", wire + b"\x00")

    def test_unicode_strings(self):
        device = minimal_device(role="日本語-ascii-mix")
        revived = CONFIG_SCHEMA.loads("Device", CONFIG_SCHEMA.dumps("Device", device))
        assert revived["role"] == "日本語-ascii-mix"


class TestRegistryDefinition:
    def test_duplicate_field_ids_rejected(self):
        registry = SchemaRegistry()
        with pytest.raises(ValueError, match="duplicate field ids"):
            registry.define(
                "Bad", [FieldDef(1, "a", TString), FieldDef(1, "b", TString)]
            )

    def test_duplicate_struct_rejected(self):
        registry = SchemaRegistry()
        registry.define("S", [FieldDef(1, "a", TString)])
        with pytest.raises(ValueError, match="already defined"):
            registry.define("S", [FieldDef(1, "a", TString)])

    def test_i64_for_asns(self):
        registry = SchemaRegistry()
        registry.define("S", [FieldDef(1, "asn", TI64, required=True)])
        wire = registry.dumps("S", {"asn": 4_200_000_000})
        assert registry.loads("S", wire)["asn"] == 4_200_000_000


class TestSchemaProperties:
    simple_struct = st.fixed_dictionaries(
        {
            "name": st.text(max_size=40),
            "number": st.integers(min_value=-(2**31), max_value=2**31 - 1),
            "pifs": st.lists(
                st.fixed_dictionaries({"name": st.text(max_size=20)}), max_size=5
            ),
        }
    )

    @settings(max_examples=50, deadline=None)
    @given(agg=simple_struct)
    def test_agg_round_trip(self, agg):
        wire = CONFIG_SCHEMA.dumps("AggregatedInterface", agg)
        revived = CONFIG_SCHEMA.loads("AggregatedInterface", wire)
        assert revived["name"] == agg["name"]
        assert revived["number"] == agg["number"]
        assert [p["name"] for p in revived["pifs"]] == [
            p["name"] for p in agg["pifs"]
        ]


class TestAclAndPolicyStructs:
    def test_acl_policy_round_trip(self):
        device = minimal_device(
            acls=[
                {
                    "name": "edge-in",
                    "entries": [
                        {"sequence": 10, "action": "deny", "protocol": "tcp",
                         "port": 23},
                        {"sequence": 20, "action": "permit"},
                    ],
                }
            ],
        )
        revived = CONFIG_SCHEMA.loads("Device", CONFIG_SCHEMA.dumps("Device", device))
        entries = revived["acls"][0]["entries"]
        assert entries[0]["port"] == 23
        assert entries[1]["protocol"] == "any"  # default filled

    def test_route_policy_round_trip(self):
        device = minimal_device(
            route_policies=[
                {"name": "isp-in", "prefixes": ["2a00:100::/32"]}
            ],
        )
        revived = CONFIG_SCHEMA.loads("Device", CONFIG_SCHEMA.dumps("Device", device))
        assert revived["route_policies"][0]["prefixes"] == ["2a00:100::/32"]
        assert revived["route_policies"][0]["action"] == "permit"

    def test_neighbor_shutdown_and_policy_fields(self):
        device = minimal_device(
            bgp={
                "local_asn": 65000,
                "neighbors": [
                    {"peer_ip": "1::2", "peer_asn": 65001, "local_ip": "1::1",
                     "session_type": "ebgp", "address_family": "v6",
                     "shutdown": True, "import_policy": "isp-in"},
                ],
            },
        )
        revived = CONFIG_SCHEMA.loads("Device", CONFIG_SCHEMA.dumps("Device", device))
        neighbor = revived["bgp"]["neighbors"][0]
        assert neighbor["shutdown"] is True
        assert neighbor["import_policy"] == "isp-in"
