"""Tests for the Django-style template engine (paper Figure 9)."""

import pytest

from repro.common.errors import TemplateError
from repro.configgen.engine import Template, register_filter


def render(source, **context):
    return Template(source).render(context)


class TestVariables:
    def test_simple(self):
        assert render("hi {{ name }}", name="x") == "hi x"

    def test_dotted_dict(self):
        assert render("{{ a.b.c }}", a={"b": {"c": 7}}) == "7"

    def test_dotted_attribute(self):
        class Thing:
            value = "attr"

        assert render("{{ t.value }}", t=Thing()) == "attr"

    def test_list_index(self):
        assert render("{{ xs.1 }}", xs=["a", "b"]) == "b"

    def test_list_index_out_of_range(self):
        assert render("{{ xs.9 }}", xs=["a"]) == ""

    def test_missing_renders_empty(self):
        # Django semantics: missing variables never crash a render.
        assert render("[{{ nope }}]") == "[]"

    def test_missing_intermediate(self):
        assert render("[{{ a.b.c }}]", a={}) == "[]"

    def test_whitespace_tolerant(self):
        assert render("{{name}} {{  name  }}", name="x") == "x x"


class TestFilters:
    def test_upper_lower(self):
        assert render("{{ x|upper }}/{{ x|lower }}", x="Ab") == "AB/ab"

    def test_default(self):
        assert render("{{ x|default:'fallback' }}") == "fallback"
        assert render("{{ x|default:'fallback' }}", x="real") == "real"

    def test_default_numeric(self):
        assert render("{{ mtu|default:9192 }}") == "9192"

    def test_join(self):
        assert render("{{ xs|join:', ' }}", xs=[1, 2, 3]) == "1, 2, 3"

    def test_length_first_last(self):
        assert render("{{ xs|length }}{{ xs|first }}{{ xs|last }}", xs="abc") == "3ac"

    def test_ip_addr_and_prefixlen(self):
        assert render("{{ p|ip_addr }}", p="2401:db00::1/127") == "2401:db00::1"
        assert render("{{ p|prefixlen }}", p="10.0.0.1/31") == "31"

    def test_chained(self):
        assert render("{{ xs|first|upper }}", xs=["ab"]) == "AB"

    def test_unknown_filter(self):
        with pytest.raises(TemplateError, match="unknown filter"):
            Template("{{ x|bogus }}")

    def test_custom_filter_registration(self):
        register_filter("reverse_test_only", lambda v: str(v)[::-1])
        assert render("{{ x|reverse_test_only }}", x="abc") == "cba"


class TestIf:
    def test_truthiness(self):
        source = "{% if x %}yes{% endif %}"
        assert render(source, x=1) == "yes"
        assert render(source, x=0) == ""
        assert render(source, x=[]) == ""
        assert render(source) == ""  # missing is falsey

    def test_else(self):
        source = "{% if x %}a{% else %}b{% endif %}"
        assert render(source, x=True) == "a"
        assert render(source, x=False) == "b"

    def test_elif_chain(self):
        source = "{% if n == 1 %}one{% elif n == 2 %}two{% else %}many{% endif %}"
        assert render(source, n=1) == "one"
        assert render(source, n=2) == "two"
        assert render(source, n=3) == "many"

    def test_not(self):
        assert render("{% if not x %}empty{% endif %}", x=[]) == "empty"

    def test_comparison_to_string_literal(self):
        source = "{% if kind == 'ebgp' %}external{% endif %}"
        assert render(source, kind="ebgp") == "external"
        assert render(source, kind="ibgp") == ""

    def test_not_equal(self):
        assert render("{% if x != 3 %}diff{% endif %}", x=4) == "diff"

    def test_nested(self):
        source = "{% if a %}{% if b %}both{% endif %}{% endif %}"
        assert render(source, a=1, b=1) == "both"
        assert render(source, a=1, b=0) == ""

    def test_unterminated(self):
        with pytest.raises(TemplateError, match="unexpected end"):
            Template("{% if x %}oops")


class TestFor:
    def test_basic(self):
        assert render("{% for x in xs %}{{ x }};{% endfor %}", xs=[1, 2]) == "1;2;"

    def test_forloop_counters(self):
        source = "{% for x in xs %}{{ forloop.counter }}:{{ forloop.counter0 }} {% endfor %}"
        assert render(source, xs="ab") == "1:0 2:1 "

    def test_forloop_first_last(self):
        source = (
            "{% for x in xs %}{% if forloop.first %}[{% endif %}{{ x }}"
            "{% if forloop.last %}]{% else %},{% endif %}{% endfor %}"
        )
        assert render(source, xs=[1, 2, 3]) == "[1,2,3]"

    def test_nested_loops_with_parentloop(self):
        source = (
            "{% for row in grid %}{% for cell in row %}"
            "{{ forloop.parentloop.counter }}.{{ forloop.counter }} "
            "{% endfor %}{% endfor %}"
        )
        assert render(source, grid=[[0, 0], [0]]) == "1.1 1.2 2.1 "

    def test_loop_variable_scoped(self):
        source = "{% for x in xs %}{{ x }}{% endfor %}{{ x }}"
        assert render(source, xs=[1], x="outer") == "1outer"

    def test_missing_iterable_renders_nothing(self):
        assert render("{% for x in nope %}{{ x }}{% endfor %}") == ""

    def test_non_iterable_raises(self):
        with pytest.raises(TemplateError, match="not iterable"):
            render("{% for x in n %}{{ x }}{% endfor %}", n=5)

    def test_malformed_for(self):
        with pytest.raises(TemplateError, match="malformed for"):
            Template("{% for x y %}{% endfor %}")


class TestMisc:
    def test_comments_removed(self):
        assert render("a{# hidden {{ x }} #}b") == "ab"

    def test_unknown_tag(self):
        with pytest.raises(TemplateError, match="unknown tag"):
            Template("{% include 'x' %}")

    def test_error_carries_line_number(self):
        with pytest.raises(TemplateError, match="line 3"):
            Template("a\nb\n{% bogus %}")

    def test_render_does_not_mutate_context(self):
        context = {"xs": [1]}
        Template("{% for x in xs %}{{ x }}{% endfor %}").render(context)
        assert context == {"xs": [1]}

    def test_paper_figure9_vendor1_shape(self):
        """The exact control-flow shape of the paper's left-hand template."""
        source = (
            "{% for agg in device.aggs %}interface {{agg.name}}\n"
            "{% if agg.v4_prefix %} ip addr {{agg.v4_prefix}}\n{% endif %}"
            "{% if agg.v6_prefix %} ipv6 addr {{agg.v6_prefix}}\n{% endif %}"
            "{% for pif in agg.pifs %}interface {{pif.name}}\n"
            " channel-group {{agg.name}}\n{% endfor %}{% endfor %}"
        )
        device = {
            "aggs": [
                {
                    "name": "ae0",
                    "v4_prefix": None,
                    "v6_prefix": "2401:db00::/127",
                    "pifs": [{"name": "et1/1"}, {"name": "et1/2"}],
                }
            ]
        }
        output = Template(source).render({"device": device})
        assert "interface ae0" in output
        assert "ip addr" not in output  # v4 absent
        assert "ipv6 addr 2401:db00::/127" in output
        assert output.count("channel-group ae0") == 2


class TestConditionsBothSidesVariables:
    def test_variable_to_variable_comparison(self):
        source = "{% if a.x == b.y %}same{% else %}diff{% endif %}"
        assert render(source, a={"x": 5}, b={"y": 5}) == "same"
        assert render(source, a={"x": 5}, b={"y": 6}) == "diff"

    def test_filtered_condition(self):
        source = "{% if xs|length == 2 %}pair{% endif %}"
        assert render(source, xs=[1, 2]) == "pair"
        assert render(source, xs=[1]) == ""

    def test_quoted_pipe_in_filter_argument(self):
        assert render("{{ xs|join:'|' }}", xs=["a", "b"]) == "a|b"
