"""Incremental config generation: dirty mapping and the equivalence guarantee.

``regenerate_dirty()`` must regenerate exactly the devices whose inputs
changed — and the resulting golden set must be byte-identical to a full
regeneration from scratch.  The property test at the bottom drives that
guarantee over randomized design-mutation sequences.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configgen.generator import ConfigGenerator
from repro.core.seeds import seed_environment
from repro.design.cluster import build_cluster
from repro.fbnet.models import (
    AggregatedInterface,
    BgpV4Session,
    ClusterGeneration,
    Device,
    DrainState,
    NetworkSwitch,
    PhysicalInterface,
    Region,
)
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.incremental


@pytest.fixture
def pop_cluster(store, env):
    return build_cluster(
        store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )


@pytest.fixture
def generator(store):
    return ConfigGenerator(store)


def golden_texts(generator):
    return {name: config.text for name, config in generator.golden.items()}


def full_regeneration(store, generator):
    """A from-scratch generation sharing the incremental run's templates."""
    fresh = ConfigGenerator(store, generator.configerator)
    fresh.generate_devices(store.all(Device))
    return golden_texts(fresh)


class TestRegenerateDirty:
    def test_noop_when_nothing_changed(self, store, env, pop_cluster, generator):
        generator.generate_devices(store.all(Device))
        before = dict(generator.golden)
        report = generator.regenerate_dirty()
        assert not report.regenerated
        assert not report.dirty
        assert sorted(report.skipped) == sorted(before)
        # Clean devices keep the very same config objects, not rebuilt ones.
        assert all(generator.golden[name] is before[name] for name in before)

    def test_single_interface_change_regenerates_one_device(
        self, store, env, pop_cluster, generator
    ):
        generator.generate_devices(store.all(Device))
        pif = store.all(PhysicalInterface)[0]
        owner = store.get(AggregatedInterface, pif.agg_interface_id).related(
            "device"
        )
        store.update(pif, description="relabeled by tech")
        report = generator.regenerate_dirty()
        assert set(report.regenerated) == {owner.name}
        assert owner.name in report.dirty
        assert "PhysicalInterface" in report.dirty[owner.name]
        assert "relabeled by tech" in {
            member["description"]
            for agg in generator.golden[owner.name].data["aggs"]
            for member in agg["pifs"]
        }
        assert golden_texts(generator) == full_regeneration(store, generator)

    def test_drain_change_regenerates_only_that_device(
        self, store, env, pop_cluster, generator
    ):
        generator.generate_devices(store.all(Device))
        device = pop_cluster.devices["PR"][0]
        store.update(device, drain_state=DrainState.DRAINING)
        report = generator.regenerate_dirty()
        assert set(report.regenerated) == {device.name}
        assert golden_texts(generator) == full_regeneration(store, generator)

    def test_new_device_is_dirty_with_reason_new(
        self, store, env, pop_cluster, generator
    ):
        generator.generate_devices(store.all(Device))
        newcomer = store.create(
            NetworkSwitch,
            name="pop01.c01.psw9",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        report = generator.regenerate_dirty()
        assert report.dirty[newcomer.name] == "new"
        assert newcomer.name in report.regenerated

    def test_deleted_device_is_retired(self, store, env, pop_cluster, generator):
        generator.generate_devices(store.all(Device))
        loner = store.create(
            NetworkSwitch,
            name="pop01.c01.psw9",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        generator.regenerate_dirty()
        assert loner.name in generator.golden
        store.delete(loner)
        report = generator.regenerate_dirty()
        assert report.retired == ["pop01.c01.psw9"]
        assert loner.name not in generator.golden
        # An explicit device list never retires anything.
        report = generator.regenerate_dirty(store.all(Device))
        assert not report.retired

    def test_template_bump_dirties_only_that_vendor(
        self, store, env, pop_cluster, generator
    ):
        generator.generate_devices(store.all(Device))
        change = generator.configerator.propose(
            "vendor1/system.tmpl",
            "# bumped\nhostname {{device.system.hostname}}\n",
            author="alice",
        )
        generator.configerator.approve(change.change_id, reviewer="bob")
        report = generator.regenerate_dirty()
        vendor1 = {
            name
            for name, config in generator.golden.items()
            if config.vendor == "vendor1"
        }
        assert set(report.regenerated) == vendor1
        assert all(reason == "template" for reason in report.dirty.values())
        assert golden_texts(generator) == full_regeneration(store, generator)

    def test_unrelated_change_regenerates_nothing(
        self, store, env, pop_cluster, generator
    ):
        generator.generate_devices(store.all(Device))
        store.create(Region, name="antarctica")
        report = generator.regenerate_dirty()
        assert not report.regenerated

    def test_untracked_golden_is_conservatively_dirty(
        self, store, env, pop_cluster, generator
    ):
        generator.generate_devices(store.all(Device))
        device = pop_cluster.devices["PR"][0]
        old = generator.golden[device.name]
        generator.golden[device.name] = type(old)(
            device_name=old.device_name,
            vendor=old.vendor,
            text=old.text,
            data=old.data,
            design_position=old.design_position,
            read_set=None,
        )
        report = generator.regenerate_dirty()
        assert report.dirty[device.name] == "untracked"

    def test_obs_counters_account_every_device(
        self, store, env, pop_cluster, generator
    ):
        from repro import obs

        generator.generate_devices(store.all(Device))
        device = pop_cluster.devices["PR"][0]
        store.update(device, drain_state=DrainState.DRAINING)
        report = generator.regenerate_dirty()
        assert obs.counter("configgen.dirty").value == len(report.dirty)
        assert obs.counter("configgen.skipped").value == len(report.skipped)
        assert obs.counter("configgen.regenerated").value == len(
            report.regenerated
        )
        assert report.devices_total == len(store.all(Device))

    def test_subscribers_hear_about_regenerations(
        self, store, env, pop_cluster, generator
    ):
        batches = []
        generator.subscribe(batches.append)
        generator.generate_devices(store.all(Device))
        device = pop_cluster.devices["PR"][0]
        store.update(device, drain_state=DrainState.DRAINING)
        generator.regenerate_dirty()
        assert [c.device_name for c in batches[-1]] == [device.name]
        # A clean pass announces nothing.
        count = len(batches)
        generator.regenerate_dirty()
        assert len(batches) == count


MUTATION_KINDS = 5


def apply_mutation(store, kind, pick, salt, step):
    """One randomized design mutation; returns a description for debugging."""
    if kind == 0:
        pifs = store.all(PhysicalInterface)
        pif = pifs[pick % len(pifs)]
        store.update(pif, description=f"hyp-{salt}")
        return f"pif {pif.name} description"
    if kind == 1:
        aggs = store.all(AggregatedInterface)
        agg = aggs[pick % len(aggs)]
        store.update(agg, mtu=(1500, 4200, 9000)[salt % 3])
        return f"agg {agg.name} mtu"
    if kind == 2:
        devices = store.all(Device)
        device = devices[pick % len(devices)]
        states = (DrainState.DRAINED, DrainState.UNDRAINED, DrainState.DRAINING)
        store.update(device, drain_state=states[salt % 3])
        return f"device {device.name} drain"
    if kind == 3:
        sessions = store.all(BgpV4Session)
        if not sessions:
            return "no bgp sessions"
        session = sessions[pick % len(sessions)]
        store.update(session, description=f"hyp-{salt}")
        return f"bgp {session.id} description"
    # An unrelated object: must dirty nothing.
    store.create(Region, name=f"hyp-{step}-{salt}")
    return "unrelated region"


class TestIncrementalEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        steps=st.lists(
            st.tuples(
                st.integers(0, MUTATION_KINDS - 1),
                st.integers(0, 10_000),
                st.integers(0, 10_000),
            ),
            max_size=6,
        )
    )
    def test_incremental_equals_full(self, steps):
        """Incremental output is byte-identical to full regeneration."""
        store = ObjectStore()
        env = seed_environment(store)
        build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN1
        )
        generator = ConfigGenerator(store)
        generator.generate_devices(store.all(Device))
        for step, (kind, pick, salt) in enumerate(steps):
            apply_mutation(store, kind, pick, salt, step)
        generator.regenerate_dirty()
        assert golden_texts(generator) == full_regeneration(store, generator)
