"""Tests for derivation and the full config generation pipeline."""

import pytest

from repro.common.errors import ConfigGenerationError
from repro.configgen.configerator import Configerator
from repro.configgen.derive import derive_device_data, fetch_location_devices
from repro.configgen.generator import ConfigGenerator
from repro.design.cluster import build_cluster
from repro.fbnet.models import ClusterGeneration, DrainState


@pytest.fixture
def pop_cluster(store, env):
    return build_cluster(
        store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )


@pytest.fixture
def generator(store):
    return ConfigGenerator(store)


class TestDerivation:
    def test_fetch_location_devices(self, store, env, pop_cluster):
        devices = fetch_location_devices(store, env.pops["pop01"])
        assert len(devices) == 14  # 2 PR + 4 PSW + 8 TOR
        assert devices[0].name == "pop01.c01.pr1"

    def test_fetch_other_location_empty(self, store, env, pop_cluster):
        assert fetch_location_devices(store, env.pops["pop02"]) == []

    def test_device_data_schema_valid(self, store, env, pop_cluster):
        pr1 = pop_cluster.devices["PR"][0]
        data = derive_device_data(store, pr1)
        assert data["vendor"] == "vendor1"
        assert len(data["aggs"]) == 4  # one bundle per PSW
        assert all(len(agg["pifs"]) == 2 for agg in data["aggs"])

    def test_bgp_oriented_per_device(self, store, env, pop_cluster):
        """Both peers' configs derive from the same session objects."""
        pr1 = pop_cluster.devices["PR"][0]
        psw1 = pop_cluster.devices["PSW"][0]
        pr_data = derive_device_data(store, pr1)
        psw_data = derive_device_data(store, psw1)
        pr_neighbors = {n["peer_ip"] for n in pr_data["bgp"]["neighbors"]}
        psw_neighbors = {n["peer_ip"] for n in psw_data["bgp"]["neighbors"]}
        # The PSW's addresses appear as the PR's peers and vice versa.
        psw_locals = {n["local_ip"] for n in psw_data["bgp"]["neighbors"]}
        assert pr_neighbors & psw_locals
        assert pr_data["bgp"]["local_asn"] != psw_data["bgp"]["local_asn"]

    def test_device_without_bgp(self, store, env):
        cluster = build_cluster(
            store, "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN1
        )
        data = derive_device_data(store, cluster.devices["PSW"][0])
        assert data["bgp"] is None


class TestGeneration:
    def test_vendor_dialects_differ(self, store, env, pop_cluster, generator):
        configs = generator.generate_location(env.pops["pop01"])
        pr = configs["pop01.c01.pr1"]  # vendor1
        psw = configs["pop01.c01.psw1"]  # vendor2
        assert "hostname pop01.c01.pr1" in pr.text
        assert "router bgp" in pr.text
        assert "host-name pop01.c01.psw1;" in psw.text
        assert "protocols {" in psw.text
        assert "{" not in pr.text  # no brace syntax leaks into vendor1

    def test_same_data_both_sides(self, store, env, pop_cluster, generator):
        """The shared bundle subnet shows up in both endpoint configs."""
        configs = generator.generate_location(env.pops["pop01"])
        pr = configs["pop01.c01.pr1"]
        psw = configs["pop01.c01.psw1"]
        psw_v6 = next(
            agg["v6_prefix"] for agg in psw.data["aggs"] if agg["v6_prefix"]
        )
        peer_ip = psw_v6.split("/")[0]
        assert peer_ip in pr.text  # the PR points BGP at the PSW's address

    def test_golden_registry_populated(self, store, env, pop_cluster, generator):
        generator.generate_location(env.pops["pop01"])
        expected = {f"pop01.c01.pr{i}" for i in (1, 2)}
        expected |= {f"pop01.c01.psw{i}" for i in range(1, 5)}
        expected |= {f"pop01.c01.tor{i}" for i in range(1, 9)}
        assert set(generator.golden) == expected

    def test_deterministic(self, store, env, pop_cluster, generator):
        first = generator.generate_device(pop_cluster.devices["PR"][0])
        second = generator.generate_device(pop_cluster.devices["PR"][0])
        assert first.text == second.text
        assert first.sha == second.sha

    def test_missing_template_raises(self, store, env, pop_cluster):
        generator = ConfigGenerator(store, Configerator(seed_builtin=False))
        with pytest.raises(ConfigGenerationError, match="no template"):
            generator.generate_device(pop_cluster.devices["PR"][0])

    def test_template_update_changes_output(self, store, env, pop_cluster, generator):
        device = pop_cluster.devices["PR"][0]
        before = generator.generate_device(device).text
        change = generator.configerator.propose(
            "vendor1/system.tmpl",
            "# v2 header for {{device.name}}\nhostname {{device.system.hostname}}\n",
            author="alice",
        )
        generator.configerator.approve(change.change_id, reviewer="bob")
        after = generator.generate_device(device).text
        assert before != after
        assert "# v2 header" in after

    def test_staleness_detection(self, store, env, pop_cluster, generator):
        device = pop_cluster.devices["PR"][0]
        config = generator.generate_device(device)
        assert not generator.is_stale(config)
        store.update(device, drain_state=DrainState.DRAINING)
        assert generator.is_stale(config)

    def test_mpls_section_only_when_tunnels(self, store, env, pop_cluster, generator):
        config = generator.generate_device(pop_cluster.devices["PR"][0])
        assert "tunnel-te" not in config.text
