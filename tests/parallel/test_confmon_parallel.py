"""Parallel drift sweeps find the same drift as serial sweeps."""

from __future__ import annotations

import pytest

from repro import Robotron, parallel, seed_environment
from repro.fbnet.models import ClusterGeneration

pytestmark = pytest.mark.parallel

DRIFTED = ("pop01.c01.psw1", "pop01.c01.tor3", "pop01.c01.pr1")


def build_monitored_network():
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    assert report.ok, report.failed
    robotron.attach_monitoring()
    return robotron


def sweep_fingerprint(worker_count: int) -> dict:
    robotron = build_monitored_network()
    confmon = robotron.confmon
    before = len(confmon.discrepancies)
    for name in DRIFTED:
        device = robotron.fleet.get(name)
        # Drift silently (no syslog-triggering commit): only the sweep
        # may detect it, whatever the pool size.
        device.startup_config = device.running_config
        device.running_config += "banner motd drifted\n"
    with parallel.workers(worker_count):
        found = confmon.priority_sweep()
    return {
        "found": [(d.device, d.diff, d.detected_at) for d in found],
        "log": [
            (d.device, d.diff) for d in confmon.discrepancies[before:]
        ],
        "last_checked": dict(confmon._last_checked),
        "clock": robotron.scheduler.clock.now,
    }


class TestSweepEquivalence:
    @pytest.mark.parametrize("count", (2, 4, 8))
    def test_sweep_identical_at_any_pool_size(self, count):
        baseline = sweep_fingerprint(1)
        assert {d for d, _, _ in baseline["found"]} == set(DRIFTED)
        assert sweep_fingerprint(count) == baseline

    def test_sweep_budget_respected_in_parallel(self):
        robotron = build_monitored_network()
        with parallel.workers(4):
            robotron.confmon.priority_sweep(limit=5)
        assert len(robotron.confmon._last_checked) == 5
