"""Unit tests for the deterministic worker pool (``repro.parallel``)."""

from __future__ import annotations

import time

import pytest

from repro import faults, obs, parallel
from repro.faults import FaultPlan
from repro.parallel import (
    SLOW_TASK_SECONDS,
    TaskClock,
    configured_workers,
    current_task,
    run_tasks,
    set_workers,
    task_clock,
)

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (1, 2, 4, 8)


class FakeClock:
    """A minimal simulated clock (the pool only needs ``now``/``advance``)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


class TestConfiguration:
    def test_default_is_one_worker(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV, raising=False)
        assert configured_workers() == 1

    def test_env_var_sets_the_pool_size(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "6")
        assert configured_workers() == 6

    def test_garbage_env_value_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "lots")
        assert configured_workers() == 1

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        with parallel.workers(5):
            assert configured_workers() == 5
        assert configured_workers() == 2

    def test_workers_context_restores_previous_override(self):
        set_workers(3)
        try:
            with parallel.workers(7):
                assert configured_workers() == 7
            assert configured_workers() == 3
        finally:
            set_workers(None)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            set_workers(0)
        with pytest.raises(ValueError):
            run_tasks([("a", lambda: 1)], section="t", workers=0)


class TestRunTasks:
    def test_empty_batch(self):
        assert run_tasks([], section="t") == []

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate task keys"):
            run_tasks([("a", lambda: 1), ("a", lambda: 2)], section="t")

    @pytest.mark.parametrize("count", WORKER_COUNTS)
    def test_results_come_back_in_task_order(self, count):
        # Later keys finish first (they sleep less): completion order is
        # reversed, task order must not be.
        keys = [f"task-{i}" for i in range(8)]

        def work(i: int) -> int:
            time.sleep((8 - i) * 0.001)
            return i * i

        results = run_tasks(
            [(key, lambda i=i: work(i)) for i, key in enumerate(keys)],
            section="t",
            workers=count,
        )
        assert [r.key for r in results] == keys
        assert [r.value for r in results] == [i * i for i in range(8)]
        assert all(r.ok for r in results)

    def test_current_task_visible_inside_a_task(self):
        seen = {}

        def work() -> None:
            context = current_task()
            seen["key"] = context.key
            seen["section"] = context.section

        run_tasks([("the-key", work)], section="the-section")
        assert seen == {"key": "the-key", "section": "the-section"}
        assert current_task() is None  # restored on the coordinator

    def test_tasks_counter_incremented(self):
        run_tasks([(str(i), lambda: None) for i in range(5)], section="t")
        assert obs.counter("parallel.tasks", section="t").value == 5


class TestTaskClock:
    def test_advance_accumulates(self):
        clock = TaskClock(10.0)
        assert clock.now == 10.0
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock.now == 13.0
        assert clock.offset == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            TaskClock(0.0).advance(-1.0)

    def test_task_clock_falls_back_to_default(self):
        sentinel = FakeClock()
        assert task_clock(sentinel) is sentinel

    @pytest.mark.parametrize("count", WORKER_COUNTS)
    def test_batch_advances_shared_clock_by_the_maximum(self, count):
        # Concurrent waits overlap in simulated time: the batch costs the
        # slowest task's wait, regardless of the worker count.
        clock = FakeClock()
        advances = [0.5, 3.0, 1.5, 2.0]

        def work(seconds: float) -> float:
            return task_clock(None).advance(seconds)

        results = run_tasks(
            [(f"k{i}", lambda s=s: work(s)) for i, s in enumerate(advances)],
            section="t",
            workers=count,
            clock=clock,
        )
        assert [r.clock_advance for r in results] == advances
        assert clock.now == 3.0


class TestFaultScopePartitioning:
    def plan_record(self, worker_count: int, seed: int = 99) -> list:
        """Run one pooled batch under a fresh plan; return its injections."""
        plan = FaultPlan(seed=seed)
        plan.inject("test.flaky", probability=0.5)
        with plan.installed():
            run_tasks(
                [
                    (f"k{i}", lambda i=i: [
                        faults.should_inject("test.flaky", call=j)
                        for j in range(4)
                    ])
                    for i in range(6)
                ],
                section="t",
                workers=worker_count,
            )
        return list(plan.injections)

    @pytest.mark.parametrize("count", WORKER_COUNTS)
    def test_injections_independent_of_worker_count(self, count):
        baseline = self.plan_record(1)
        assert baseline  # the seed must actually fire something
        assert self.plan_record(count) == baseline

    def test_different_seeds_still_diverge(self):
        assert self.plan_record(4, seed=1) != self.plan_record(4, seed=2)

    def test_after_and_times_count_per_task_inside_the_pool(self):
        plan = FaultPlan(seed=0)
        spec = plan.inject("test.count", after=1, times=1)
        decisions = {}

        def work(key: str) -> None:
            decisions[key] = [
                faults.should_inject("test.count") for _ in range(3)
            ]

        with plan.installed():
            run_tasks(
                [(k, lambda k=k: work(k)) for k in ("a", "b")],
                section="t",
                workers=2,
            )
        # Each task skips its own first call, injects its second, and is
        # then exhausted — identical per-task records, merged counts.
        # (An exhausted spec stops counting ``seen``, as in serial runs.)
        assert decisions == {
            "a": [False, True, False],
            "b": [False, True, False],
        }
        assert spec.injected == 2
        assert spec.seen == 4


class TestCancellation:
    def failing_batch(self, worker_count: int):
        ran: list[str] = []

        def work(key: str) -> str:
            ran.append(key)
            if key == "k2":
                raise RuntimeError("boom from k2")
            return key

        results = run_tasks(
            [(f"k{i}", lambda i=i: work(f"k{i}")) for i in range(6)],
            section="t",
            workers=worker_count,
            cancel_on_error=True,
        )
        return results, ran

    @pytest.mark.parametrize("count", WORKER_COUNTS)
    def test_smallest_keyed_error_raised_and_later_tasks_cancelled(self, count):
        results, _ran = self.failing_batch(count)
        assert [r.key for r in results] == [f"k{i}" for i in range(6)]
        assert results[0].ok and results[1].ok
        assert isinstance(results[2].error, RuntimeError)
        for result in results[3:]:
            assert result.cancelled
            assert result.value is None and result.error is None
        with pytest.raises(RuntimeError, match="boom from k2"):
            parallel.raise_first_error(results)

    def test_pool_drains_cleanly_after_an_error(self):
        # The failed batch must not wedge anything: the very next batch on
        # a fresh pool runs to completion.
        self.failing_batch(4)
        results = run_tasks(
            [(str(i), lambda i=i: i) for i in range(4)],
            section="t",
            workers=4,
        )
        assert [r.value for r in results] == [0, 1, 2, 3]

    def test_without_cancel_on_error_every_task_runs(self):
        def work(i: int) -> int:
            if i == 0:
                raise RuntimeError("first fails")
            return i

        results = run_tasks(
            [(str(i), lambda i=i: work(i)) for i in range(4)],
            section="t",
            workers=2,
        )
        assert results[0].error is not None
        assert [r.value for r in results[1:]] == [1, 2, 3]


class TestStragglers:
    def test_slow_task_fault_does_not_wedge_the_pool(self):
        # One injected straggler sleeps SLOW_TASK_SECONDS of wall time;
        # the other seven tasks keep flowing through the other workers.
        plan = FaultPlan(seed=0)
        plan.inject("parallel.slow_task", key="k3")
        started = time.perf_counter()
        with plan.installed():
            results = run_tasks(
                [(f"k{i}", lambda i=i: i) for i in range(8)],
                section="t",
                workers=4,
            )
        elapsed = time.perf_counter() - started
        assert [r.value for r in results] == list(range(8))
        assert plan.injected_count("parallel.slow_task") == 1
        # The batch cost ~one stall, not eight serialized ones.
        assert elapsed < SLOW_TASK_SECONDS * 4
        assert results[3].wall_seconds >= SLOW_TASK_SECONDS

    def test_straggler_counted_and_kept_out_of_deterministic_dump(self):
        plan = FaultPlan(seed=0)
        plan.inject("parallel.slow_task", key="k0")
        with plan.installed():
            run_tasks(
                [(f"k{i}", lambda: None) for i in range(6)],
                section="t",
                workers=2,
            )
        assert obs.counter("parallel.stragglers", section="t").value == 1
        dump = obs.deterministic_dump()
        names = {entry["name"] for entry in dump["counters"]}
        names |= {entry["name"] for entry in dump["histograms"]}
        assert "parallel.stragglers" not in names
        assert "parallel.queue_depth" not in names
        assert "parallel.tasks" in names
