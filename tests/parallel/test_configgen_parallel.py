"""Parallel config generation must be byte-identical to serial (tentpole)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import parallel, seed_environment
from repro.common.errors import ConfigGenerationError
from repro.configgen.generator import ConfigGenerator
from repro.design.cluster import build_cluster
from repro.faults import FaultPlan
from repro.fbnet.models import ClusterGeneration, Device
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def design():
    """One POP cluster design, shared read-only across this module."""
    store = ObjectStore()
    env = seed_environment(store)
    build_cluster(store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2)
    devices = sorted(store.all(Device), key=lambda d: d.name)
    return store, devices


def generate_texts(store, devices, worker_count, configerator=None):
    """A fresh generator's output, keyed by device, at one pool size."""
    generator = ConfigGenerator(store, configerator)
    with parallel.workers(worker_count):
        configs = generator.generate_devices(devices)
    return generator, {name: config.text for name, config in configs.items()}


class TestByteIdentity:
    @pytest.mark.parametrize("count", WORKER_COUNTS)
    def test_full_generation_identical_to_serial(self, design, count):
        store, devices = design
        serial_gen, serial = generate_texts(store, devices, 1)
        parallel_gen, pooled = generate_texts(
            store, devices, count, serial_gen.configerator
        )
        assert pooled == serial
        assert {n: c.sha for n, c in parallel_gen.golden.items()} == {
            n: c.sha for n, c in serial_gen.golden.items()
        }

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_any_subset_at_any_pool_size_matches_serial(self, design, data):
        store, devices = design
        subset = data.draw(
            st.lists(st.sampled_from(devices), unique_by=lambda d: d.name)
        )
        count = data.draw(st.sampled_from(WORKER_COUNTS))
        _, serial = generate_texts(store, subset, 1)
        _, pooled = generate_texts(store, subset, count)
        assert pooled == serial

    def test_golden_registration_order_is_task_order(self, design):
        store, devices = design
        generator = ConfigGenerator(store)
        with parallel.workers(4):
            generator.generate_devices(devices)
        assert list(generator.golden) == [d.name for d in devices]


class TestErrorPathDeterminism:
    def failing_generation(self, design, worker_count):
        store, devices = design
        victim = devices[len(devices) // 2].name
        plan = FaultPlan(seed=7)
        plan.inject("configgen.render", device=victim)
        generator = ConfigGenerator(store)
        with plan.installed(), parallel.workers(worker_count):
            with pytest.raises(ConfigGenerationError) as excinfo:
                generator.generate_devices(devices)
        return generator, victim, str(excinfo.value)

    @pytest.mark.parametrize("count", WORKER_COUNTS)
    def test_same_error_and_no_partial_golden_at_any_pool_size(
        self, design, count
    ):
        serial_gen, victim, serial_msg = self.failing_generation(design, 1)
        pooled_gen, _victim, pooled_msg = self.failing_generation(design, count)
        assert pooled_msg == serial_msg
        assert victim in serial_msg
        # All-or-nothing: a failed batch registers nothing, so partial
        # state cannot differ by worker count.
        assert serial_gen.golden == {}
        assert pooled_gen.golden == {}
