"""Concurrent phased pushes: failure-domain caps and determinism."""

from __future__ import annotations

import threading
import time

import pytest

from repro import Robotron, parallel, seed_environment
from repro.deploy.deployer import DeployReport, cluster_domain
from repro.faults import FaultPlan
from repro.fbnet.models import ClusterGeneration

pytestmark = pytest.mark.parallel


def build_two_cluster_network():
    """A fleet spanning two clusters — two distinct failure domains."""
    robotron = Robotron()
    env = seed_environment(robotron.store)
    clusters = [
        robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        ),
        robotron.build_cluster(
            "pop02.c01", env.pops["pop02"], ClusterGeneration.POP_GEN2
        ),
    ]
    robotron.boot_fleet()
    for cluster in clusters:
        report = robotron.provision_cluster(cluster)
        assert report.ok, report.failed
    return robotron


class InFlightTracker:
    """Counts concurrent pushes, overall and per failure domain."""

    def __init__(self, deployer, fleet):
        self._deployer = deployer
        self._fleet = fleet
        self._lock = threading.Lock()
        self._per_domain: dict[str, int] = {}
        self._total = 0
        self.max_total = 0
        self.domain_violations: list[str] = []

    def install(self):
        original = self._deployer._push_one

        def tracked(name, config):
            domain = self._deployer.failure_domain(self._fleet.get(name))
            with self._lock:
                self._per_domain[domain] = self._per_domain.get(domain, 0) + 1
                self._total += 1
                self.max_total = max(self.max_total, self._total)
                if self._per_domain[domain] > 1:
                    self.domain_violations.append(name)
            time.sleep(0.003)  # widen the race window
            try:
                return original(name, config)
            finally:
                with self._lock:
                    self._per_domain[domain] -= 1
                    self._total -= 1

        self._deployer._push_one = tracked


class TestFailureDomainCap:
    def test_never_two_in_flight_pushes_in_one_domain(self):
        robotron = build_two_cluster_network()
        configs = dict(robotron.generator.golden)
        batch = sorted(configs)
        assert {cluster_domain(robotron.fleet.get(n)) for n in batch} == {
            "pop01.c01",
            "pop02.c01",
        }
        tracker = InFlightTracker(robotron.deployer, robotron.fleet)
        tracker.install()
        report = DeployReport(operation="phase")
        with parallel.workers(4):
            outcome = robotron.deployer.push_phase(configs, batch, report)
        assert sorted(outcome.succeeded) == batch
        assert tracker.domain_violations == []
        # ...while the two domains really did push concurrently.
        assert tracker.max_total > 1

    def test_default_domain_map_is_fully_serial(self, pop_network):
        # Without domain_of, every device shares one domain: even at
        # workers=4 there is never more than one in-flight push.
        robotron = pop_network
        robotron.deployer._domain_of = None
        configs = dict(robotron.generator.golden)
        batch = sorted(configs)
        tracker = InFlightTracker(robotron.deployer, robotron.fleet)
        tracker.install()
        with parallel.workers(4):
            robotron.deployer.push_phase(configs, batch, DeployReport(operation="p"))
        assert tracker.max_total == 1

    def test_wave_plan_ignores_worker_count(self):
        robotron = build_two_cluster_network()
        batch = sorted(robotron.generator.golden)
        with parallel.workers(1):
            serial_waves = robotron.deployer._plan_waves(batch)
        with parallel.workers(8):
            pooled_waves = robotron.deployer._plan_waves(batch)
        assert pooled_waves == serial_waves
        # Two clusters: waves pair one device from each domain.
        assert all(len(wave) <= 2 for wave in serial_waves)
        for wave in serial_waves:
            domains = [cluster_domain(robotron.fleet.get(n)) for n in wave]
            assert len(set(domains)) == len(domains)


class TestPhaseDeterminism:
    def run_phase(self, worker_count: int, seed: int = 1337):
        robotron = build_two_cluster_network()
        configs = dict(robotron.generator.golden)
        batch = sorted(configs)
        plan = FaultPlan(seed=seed)
        # A persistent failure in one domain and a seeded flake overall.
        plan.inject("deploy.push", device="pop01.c01.tor2")
        plan.inject("deploy.push", probability=0.2)
        report = DeployReport(operation="phase")
        with plan.installed(), parallel.workers(worker_count):
            outcome = robotron.deployer.push_phase(configs, batch, report)
        return {
            "succeeded": outcome.succeeded,
            "failed": dict(outcome.failed),
            "injections": list(plan.injections),
            "states": {
                name: robotron.fleet.get(name).running_sha for name in batch
            },
            "clock": robotron.scheduler.clock.now,
        }

    @pytest.mark.parametrize("count", (2, 4, 8))
    def test_outcome_identical_at_any_pool_size(self, count):
        baseline = self.run_phase(1)
        assert baseline["failed"]  # the plan must actually bite
        assert self.run_phase(count) == baseline
