"""Tests for syslog collection and classification (Table 3 machinery)."""

import pytest

from repro.fbnet.models import EventSeverity
from repro.monitoring.classifier import Classifier, SyslogRule, default_rule_table
from repro.monitoring.syslog import SyslogCollector, SyslogMessage


def message(text, device="psw1", tag="EVENT"):
    return SyslogMessage(device=device, tag=tag, message=text, timestamp=1.0)


class TestCollector:
    def test_normalizes_and_counts(self):
        collector = SyslogCollector()
        seen = []
        collector.subscribe(seen.append)
        collector({"device": "d1", "tag": "CONFIG", "message": "x", "timestamp": 5})
        assert collector.received == 1
        assert seen[0] == SyslogMessage("d1", "CONFIG", "x", 5.0)

    def test_multiple_sinks(self):
        collector = SyslogCollector()
        a, b = [], []
        collector.subscribe(a.append)
        collector.subscribe(b.append)
        collector({"device": "d", "tag": "T", "message": "m", "timestamp": 0})
        assert len(a) == len(b) == 1

    def test_render_format(self):
        assert message("Link down", device="d1").render() == "<EVENT> d1: Link down"


class TestClassifier:
    def test_first_match_by_severity_order(self):
        rules = [
            SyslogRule("warn-any", r"Alarm", EventSeverity.WARNING),
            SyslogRule("crit-power", r"Critical Power Alarm", EventSeverity.CRITICAL),
        ]
        classifier = Classifier(rules)
        alert = classifier(message("Critical Power Alarm on PSU1"))
        # CRITICAL rules are evaluated first even if listed later.
        assert alert.severity is EventSeverity.CRITICAL
        assert alert.rule == "crit-power"

    def test_no_match_is_ignored(self):
        classifier = Classifier(default_rule_table())
        assert classifier(message("LSP change: recompute")) is None
        assert classifier.counts[EventSeverity.IGNORED] == 1

    def test_counts_accumulate(self):
        classifier = Classifier(default_rule_table())
        classifier(message("Interface ae0 link state down"))
        classifier(message("Interface ae1 link state down"))
        classifier(message("something unmatched"))
        assert classifier.counts[EventSeverity.WARNING] == 2
        assert classifier.counts[EventSeverity.IGNORED] == 1

    def test_severity_table_percentages(self):
        classifier = Classifier(default_rule_table())
        for _ in range(3):
            classifier(message("unmatched noise"))
        classifier(message("IP conflict detected"))
        table = classifier.severity_table()
        count, pct = table[EventSeverity.IGNORED]
        assert count == 3 and pct == 75.0
        assert table[EventSeverity.MINOR] == (1, 25.0)

    def test_rule_count(self):
        classifier = Classifier(default_rule_table())
        assert classifier.rule_count(EventSeverity.CRITICAL) == 4

    def test_alert_sinks(self):
        classifier = Classifier(default_rule_table())
        alerts = []
        classifier.on_alert(alerts.append)
        classifier(message("TCAM error on unit 0"))
        assert alerts[0].rule == "tcam-errors"
        assert alerts[0].device == "psw1"

    def test_remediation_hook_fires(self):
        rules = [
            SyslogRule(
                "config-change", r"Configuration changed",
                EventSeverity.WARNING, remediation="collect-config",
            )
        ]
        classifier = Classifier(rules)
        remediated = []
        classifier.register_remediation("collect-config", remediated.append)
        classifier(message("Configuration changed (commit 3)"))
        assert len(remediated) == 1

    def test_device_reboot_is_critical(self):
        classifier = Classifier(default_rule_table())
        alert = classifier(message("System restarted: psw1 booting", tag="SYSTEM"))
        assert alert.severity is EventSeverity.CRITICAL


class TestEndToEndPassivePipeline:
    def test_device_to_alert(self, pop_network):
        """A link-down-ish event flows device → anycast → classifier."""
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        before = len(robotron.classifier.alerts)
        device.emit_syslog("EVENT", "Interface ae0 link state down")
        assert len(robotron.classifier.alerts) == before + 1
        assert robotron.classifier.alerts[-1].device == "pop01.c01.psw1"
