"""Tests for config monitoring: drift detection, backup, restore (5.4.3)."""

import pytest


def manual_change(device):
    """An engineer edits a device out of band."""
    if device.vendor == "vendor1":
        hacked = device.running_config + "interface et9/9\n no shutdown\n!\n"
    else:
        hacked = device.running_config + "interfaces {\n    et9/9 {\n    }\n}\n"
    device.commit(hacked)
    return hacked


class TestDriftDetection:
    def test_manual_change_detected_via_syslog(self, pop_network):
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        before = len(robotron.confmon.discrepancies)
        manual_change(device)
        # The config-change syslog triggered an ad-hoc collection + diff.
        assert len(robotron.confmon.discrepancies) == before + 1
        discrepancy = robotron.confmon.discrepancies[-1]
        assert discrepancy.device == "pop01.c01.psw1"
        assert "et9/9" in discrepancy.diff

    def test_conforming_change_not_flagged(self, pop_network):
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        before = len(robotron.confmon.discrepancies)
        device.commit(device.running_config)  # same text: no syslog, no drift
        robotron.confmon.check_device("pop01.c01.psw1")
        assert len(robotron.confmon.discrepancies) == before

    def test_notification_raised(self, pop_network):
        robotron = pop_network
        manual_change(robotron.fleet.get("pop01.c01.psw2"))
        assert any(
            "config drift on pop01.c01.psw2" in note
            for note in robotron.notifications
        )

    def test_check_all_sweep(self, pop_network):
        robotron = pop_network
        manual_change(robotron.fleet.get("pop01.c01.psw1"))
        manual_change(robotron.fleet.get("pop01.c01.pr1"))
        found = robotron.confmon.check_all()
        assert {d.device for d in found} == {"pop01.c01.psw1", "pop01.c01.pr1"}

    def test_unmanaged_device_skipped(self, pop_network):
        robotron = pop_network
        robotron.fleet.add_device("rogue", "vendor1")
        assert robotron.confmon.check_device("rogue") is None


class TestBackupAndRestore:
    def test_backup_revisions_accumulate(self, pop_network):
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        robotron.confmon.check_device(device.name)  # baseline revision
        manual_change(device)
        assert robotron.confmon.backup.revision_count(device.name) >= 2

    def test_restore_golden(self, pop_network):
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        manual_change(device)
        assert robotron.confmon.restore_golden(device.name)
        golden = robotron.generator.golden[device.name]
        assert device.running_config == golden.text
        # The restore itself is config-conformant: no new discrepancy.
        assert robotron.confmon.check_device(device.name) is None

    def test_restore_unmanaged_returns_false(self, pop_network):
        robotron = pop_network
        robotron.fleet.add_device("rogue", "vendor1")
        assert not robotron.confmon.restore_golden("rogue")

    def test_restore_any_prior_revision(self, pop_network):
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        robotron.confmon.check_device(device.name)
        original = device.running_config
        manual_change(device)
        robotron.confmon.restore_revision(device.name, 0)
        assert device.running_config == original


class TestDesiredDerivedAudit:
    def test_clean_network_audits_clean(self, pop_network):
        robotron = pop_network
        robotron.run_minutes(10)  # populate Derived models
        assert robotron.audit().clean

    def test_fiber_cut_shows_missing_circuit(self, pop_network):
        robotron = pop_network
        robotron.run_minutes(10)
        robotron.fleet.unwire("pop01.c01.pr1", "et1/0")
        robotron.run_minutes(10)  # LLDP repolls; circuit vanishes? --
        # DerivedCircuit rows persist; but the interface audit sees down.
        report = robotron.audit()
        downs = report.by_kind("interface-down")
        assert downs, report.findings

    def test_bgp_mismatch_detected(self, pop_network):
        robotron = pop_network
        robotron.run_minutes(10)
        device = robotron.fleet.get("pop01.c01.psw1")
        # Remove BGP from the device config out of band.
        text = device.running_config.split("protocols {")[0]
        device.commit(text)
        robotron.run_minutes(10)
        report = robotron.audit()
        assert report.by_kind("bgp-not-established") or report.by_kind(
            "bgp-not-observed"
        )


@pytest.mark.incremental
class TestPrioritySweep:
    """Regeneration-aware sweep ordering (change propagation)."""

    def sweep_order(self, confmon, limit=None):
        """Run a priority sweep, recording the order devices are checked.

        Hooks the sweep's per-device collection seam; at the default
        worker count (1) tasks run inline in queue order, so the recorded
        order is the sweep queue.
        """
        order = []
        original = confmon._collect_and_compare
        confmon._collect_and_compare = (
            lambda name: (order.append(name), original(name))[1]
        )
        try:
            confmon.priority_sweep(limit=limit)
        finally:
            del confmon._collect_and_compare
        return order

    def test_fresh_devices_checked_first_newest_first(self, pop_network):
        robotron = pop_network
        confmon = robotron.confmon
        clock = robotron.scheduler.clock
        golden = robotron.generator.golden
        confmon.note_regenerated([golden["pop01.c01.psw2"]])
        clock.advance(1.0)
        confmon.note_regenerated([golden["pop01.c01.tor3"]])
        order = self.sweep_order(confmon)
        assert order[:2] == ["pop01.c01.tor3", "pop01.c01.psw2"]
        assert sorted(order) == sorted(robotron.fleet.devices)

    def test_rest_of_fleet_ordered_least_recently_checked(self, pop_network):
        robotron = pop_network
        confmon = robotron.confmon
        clock = robotron.scheduler.clock
        for name in sorted(robotron.fleet.devices):
            confmon.check_device(name)
            clock.advance(1.0)
        confmon.check_device("pop01.c01.tor1")  # freshly re-checked: last
        order = self.sweep_order(confmon)
        assert order[0] == "pop01.c01.pr1"  # oldest check goes first
        assert order[-1] == "pop01.c01.tor1"

    def test_limit_budgets_the_sweep(self, pop_network):
        from repro import obs

        robotron = pop_network
        confmon = robotron.confmon
        confmon.note_regenerated(
            [robotron.generator.golden["pop01.c01.psw1"]]
        )
        order = self.sweep_order(confmon, limit=3)
        assert len(order) == 3
        assert order[0] == "pop01.c01.psw1"
        assert obs.counter("confmon.priority_sweep").value == 1
        assert obs.counter("confmon.priority_sweep.fresh").value == 1

    def test_checking_a_device_clears_its_fresh_flag(self, pop_network):
        robotron = pop_network
        confmon = robotron.confmon
        confmon.note_regenerated(
            [robotron.generator.golden["pop01.c01.psw1"]]
        )
        confmon.check_device("pop01.c01.psw1")
        order = self.sweep_order(confmon, limit=1)
        # No longer prioritized: some never-checked device goes first.
        assert order != ["pop01.c01.psw1"]

    def test_sweep_finds_drift_on_fresh_device(self, pop_network):
        robotron = pop_network
        confmon = robotron.confmon
        device = robotron.fleet.get("pop01.c01.psw1")
        manual_change(device)
        before = len(confmon.discrepancies)
        confmon.note_regenerated([robotron.generator.golden[device.name]])
        found = confmon.priority_sweep(limit=1)
        assert [d.device for d in found] == [device.name]
        assert len(confmon.discrepancies) == before + 1
