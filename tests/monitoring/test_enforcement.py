"""Tests for periodic golden-config enforcement (paper section 8)."""

import pytest


def drift(device):
    if device.vendor == "vendor1":
        device.commit(device.running_config + "interface et8/8\n shutdown\n!\n")
    else:
        device.commit(
            device.running_config + "interfaces {\n    et8/8 {\n        disable;\n    }\n}\n"
        )


class TestPeriodicEnforcement:
    def test_old_drift_restored(self, pop_network):
        robotron = pop_network
        robotron.confmon.enforce_periodically(600, emergency_window=1800)
        device = robotron.fleet.get("pop01.c01.psw1")
        drift(device)
        golden = robotron.generator.golden[device.name].text

        # Inside the emergency window: the manual change survives sweeps.
        robotron.run(1200)
        assert device.running_config != golden
        # Once the window passes, the next sweep reverts it.
        robotron.run(1800)
        assert device.running_config == golden

    def test_fresh_drift_gets_the_emergency_window(self, pop_network):
        robotron = pop_network
        robotron.confmon.enforce_periodically(600, emergency_window=3600)
        device = robotron.fleet.get("pop01.c01.pr1")
        drift(device)
        robotron.run(1800)  # three sweeps, all within the window
        assert device.running_config != robotron.generator.golden[device.name].text

    def test_conforming_devices_untouched(self, pop_network):
        robotron = pop_network
        robotron.confmon.enforce_periodically(600, emergency_window=0.0)
        device = robotron.fleet.get("pop01.c01.psw2")
        history_before = len(device.config_history)
        robotron.run(1800)
        assert len(device.config_history) == history_before

    def test_window_resets_after_restore(self, pop_network):
        robotron = pop_network
        robotron.confmon.enforce_periodically(600, emergency_window=900)
        device = robotron.fleet.get("pop01.c01.psw1")
        golden = robotron.generator.golden[device.name].text
        drift(device)
        # Sweeps at 600 (first sees the drift), 1200, 1800 (age >= 900:
        # restored).
        robotron.run(2100)
        assert device.running_config == golden
        drift(device)  # drifts again: fresh window
        robotron.run(600)  # sweep at 2400 first sees it
        assert device.running_config != golden
        robotron.run(900)  # sweep at 3600: age 1200 >= 900, restored
        assert device.running_config == golden

    def test_canceller_stops_enforcement(self, pop_network):
        robotron = pop_network
        cancel = robotron.confmon.enforce_periodically(600, emergency_window=0.0)
        device = robotron.fleet.get("pop01.c01.psw1")
        cancel()
        drift(device)
        robotron.run(3600)
        assert device.running_config != robotron.generator.golden[device.name].text

    def test_crashed_device_skipped(self, pop_network):
        robotron = pop_network
        robotron.confmon.enforce_periodically(600, emergency_window=0.0)
        device = robotron.fleet.get("pop01.c01.psw1")
        drift(device)
        device.crash()
        robotron.run(1800)  # sweeps must not die on the unreachable device
        device.boot()
        robotron.run(600)
        assert device.running_config == robotron.generator.golden[device.name].text
