"""Tests for the active monitoring pipeline: jobs, engines, backends."""

import pytest

from repro.common.errors import MonitoringError
from repro.devices.fleet import DeviceFleet
from repro.monitoring.backends import (
    ConfigBackupBackend,
    DerivedModelBackend,
    TimeSeriesBackend,
)
from repro.monitoring.engines import engine_for
from repro.monitoring.jobs import JobManager, JobSpec
from repro.simulation.clock import EventScheduler


@pytest.fixture
def rig():
    scheduler = EventScheduler()
    fleet = DeviceFleet(scheduler)
    v1 = fleet.add_device("d1", "vendor1")
    v2 = fleet.add_device("d2", "vendor2")
    v1.commit("hostname d1\ninterface ae0\n no shutdown\n!\n")
    v2.commit("system {\n    host-name d2;\n}\n")
    manager = JobManager(fleet, scheduler)
    return fleet, manager, scheduler


class TestEngines:
    def test_engine_for(self):
        for name in ("snmp", "cli", "xmlrpc", "thrift"):
            assert engine_for(name).name == name
        with pytest.raises(MonitoringError):
            engine_for("carrier-pigeon")

    def test_poll_counts_events(self, rig):
        fleet, manager, _ = rig
        engine = manager.engine("snmp")
        engine.poll(fleet.get("d1"), "system")
        engine.poll(fleet.get("d2"), "system")
        assert engine.events == 2

    def test_capability_gap_counts_error(self, rig):
        fleet, manager, _ = rig
        engine = manager.engine("thrift")
        with pytest.raises(MonitoringError):
            engine.poll(fleet.get("d1"), "interfaces")  # vendor1: no thrift
        assert engine.errors == 1 and engine.events == 0

    def test_wrong_data_type(self, rig):
        fleet, manager, _ = rig
        with pytest.raises(MonitoringError, match="cannot collect"):
            manager.engine("snmp").poll(fleet.get("d1"), "lldp")

    def test_cli_lacp_members(self, rig):
        fleet, manager, _ = rig
        fleet.get("d1").commit(
            "hostname d1\ninterface ae0\n no shutdown\n!\n"
            "interface et1/0\n channel-group ae0\n no shutdown\n!\n"
        )
        record = manager.engine("cli").poll(fleet.get("d1"), "lacp-members")
        assert record["payload"]["ae0"][0]["member"] == "et1/0"


class TestJobManager:
    def test_periodic_job_fires_on_schedule(self, rig):
        fleet, manager, scheduler = rig
        tsdb = TimeSeriesBackend()
        manager.register_backend(tsdb)
        manager.add_job(JobSpec("sys", "snmp", "system", period=60, backends=("tsdb",)))
        scheduler.run_for(300)
        points = tsdb.series[("d1", "cpu")]
        assert len(points) == 5

    def test_device_filter(self, rig):
        fleet, manager, scheduler = rig
        spec = JobSpec(
            "v2-only", "thrift", "interfaces", period=60,
            device_filter=lambda d: d.vendor == "vendor2",
        )
        manager.add_job(spec)
        scheduler.run_for(60)
        assert manager.engine("thrift").events == 1
        assert manager.failures == []

    def test_unreachable_device_recorded_as_failure(self, rig):
        fleet, manager, scheduler = rig
        manager.add_job(JobSpec("sys", "snmp", "system", period=60))
        fleet.get("d1").crash()
        scheduler.run_for(60)
        assert any(device == "d1" for _job, device, _err in manager.failures)
        # The healthy device was still polled.
        assert manager.engine("snmp").events == 1

    def test_duplicate_job_rejected(self, rig):
        _, manager, _ = rig
        manager.add_job(JobSpec("sys", "snmp", "system", period=60))
        with pytest.raises(MonitoringError, match="already registered"):
            manager.add_job(JobSpec("sys", "snmp", "system", period=60))

    def test_remove_job_stops_firing(self, rig):
        fleet, manager, scheduler = rig
        manager.add_job(JobSpec("sys", "snmp", "system", period=60))
        scheduler.run_for(60)
        fired = manager.engine("snmp").events
        manager.remove_job("sys")
        scheduler.run_for(600)
        assert manager.engine("snmp").events == fired

    def test_adhoc_job(self, rig):
        fleet, manager, _ = rig
        record = manager.run_adhoc("cli", "running-config", "d1")
        assert "hostname d1" in record["payload"]

    def test_unknown_backend_name(self, rig):
        fleet, manager, _ = rig
        with pytest.raises(MonitoringError, match="no backend"):
            manager.run_adhoc("cli", "running-config", "d1", backends=("ghost",))

    def test_event_counts(self, rig):
        fleet, manager, scheduler = rig
        manager.add_job(JobSpec("sys", "snmp", "system", period=60))
        manager.add_job(JobSpec("cfg", "cli", "running-config", period=120))
        scheduler.run_for(240)
        counts = manager.event_counts()
        assert counts["snmp"] == 8  # 4 firings x 2 devices
        assert counts["cli"] == 4


class TestBackends:
    def test_tsdb_latest(self, rig):
        fleet, manager, scheduler = rig
        tsdb = TimeSeriesBackend()
        manager.register_backend(tsdb)
        manager.add_job(JobSpec("sys", "snmp", "system", 60, ("tsdb",)))
        scheduler.run_for(60)
        assert tsdb.latest("d1", "cpu") is not None
        assert tsdb.latest("ghost", "cpu") is None

    def test_config_backup_dedupes(self, rig):
        fleet, manager, scheduler = rig
        backup = ConfigBackupBackend()
        manager.register_backend(backup)
        manager.add_job(
            JobSpec("cfg", "cli", "running-config", 60, (backup.name,))
        )
        scheduler.run_for(180)  # 3 collections, identical config
        assert backup.revision_count("d1") == 1
        fleet.get("d1").commit("hostname d1\ninterface ae1\n no shutdown\n!\n")
        scheduler.run_for(60)
        assert backup.revision_count("d1") == 2
        assert "ae1" in backup.latest("d1")


class TestDerivedBackend:
    def test_populates_derived_models(self, store, rig):
        from repro.fbnet.models import DerivedDevice, DerivedInterface

        fleet, manager, scheduler = rig
        manager.register_backend(DerivedModelBackend(store, scheduler.clock))
        manager.add_job(JobSpec("sys", "snmp", "system", 60, ("derived",)))
        manager.add_job(JobSpec("ifs", "snmp", "interfaces", 60, ("derived",)))
        scheduler.run_for(60)
        assert store.count(DerivedDevice) == 2
        derived = store.all(DerivedInterface)
        assert {d.device_name for d in derived} == {"d1"}  # d2 has no interfaces

    def test_updates_in_place_on_repoll(self, store, rig):
        from repro.fbnet.models import DerivedDevice

        fleet, manager, scheduler = rig
        manager.register_backend(DerivedModelBackend(store, scheduler.clock))
        manager.add_job(JobSpec("sys", "snmp", "system", 60, ("derived",)))
        scheduler.run_for(300)
        assert store.count(DerivedDevice) == 2  # no duplicates
        latest = store.all(DerivedDevice)[0]
        assert latest.collected_at == 300.0

    def test_lldp_pairs_become_one_derived_circuit(self, store):
        from repro.fbnet.models import DerivedCircuit

        scheduler = EventScheduler()
        fleet = DeviceFleet(scheduler)
        a = fleet.add_device("a", "vendor1")
        b = fleet.add_device("b", "vendor1")
        fleet.wire("a", "et1/0", "b", "et1/0")
        for device in (a, b):
            device.commit(
                f"hostname {device.name}\ninterface et1/0\n no shutdown\n!\n"
            )
        manager = JobManager(fleet, scheduler)
        manager.register_backend(DerivedModelBackend(store, scheduler.clock))
        manager.add_job(JobSpec("lldp", "cli", "lldp", 60, ("derived",)))
        scheduler.run_for(120)
        # Both ends reported each other, but only one circuit object exists.
        assert store.count(DerivedCircuit) == 1
