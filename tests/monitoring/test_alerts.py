"""Tests for metric-threshold alerting and metric-gated phased deploys."""

import pytest

from repro.monitoring.alerts import MetricAlertRule, MetricMonitor
from repro.monitoring.backends import TimeSeriesBackend


@pytest.fixture
def tsdb():
    backend = TimeSeriesBackend()
    backend.series[("d1", "cpu")].append((0.0, 0.35))
    backend.series[("d1", "memory")].append((0.0, 0.50))
    backend.series[("d1", "interfaces_up")].append((0.0, 8.0))
    backend.series[("d2", "cpu")].append((0.0, 0.97))
    return backend


class TestRules:
    def test_comparators(self):
        rule = MetricAlertRule("r", "cpu", ">", 0.9)
        assert rule.breached(0.95)
        assert not rule.breached(0.9)
        assert MetricAlertRule("r", "x", "<=", 1.0).breached(1.0)

    def test_unknown_comparator(self):
        with pytest.raises(ValueError):
            MetricAlertRule("r", "cpu", "~", 0.9)


class TestMonitor:
    def test_healthy_device_fires_nothing(self, tsdb):
        monitor = MetricMonitor(tsdb)
        assert monitor.evaluate_device("d1") == []
        assert monitor.healthy(["d1"])

    def test_breach_fires_and_notifies(self, tsdb):
        notified = []
        monitor = MetricMonitor(tsdb, notifier=notified.append)
        fired = monitor.evaluate_device("d2", at=42.0)
        assert fired[0].rule == "cpu-high"
        assert fired[0].value == 0.97
        assert notified == fired
        assert not monitor.healthy(["d1", "d2"])

    def test_missing_metric_is_not_a_breach(self, tsdb):
        monitor = MetricMonitor(tsdb)
        assert monitor.evaluate_device("ghost") == []

    def test_interfaces_down_rule(self, tsdb):
        tsdb.series[("d3", "interfaces_up")].append((0.0, 0.0))
        monitor = MetricMonitor(tsdb)
        fired = monitor.evaluate_device("d3")
        assert [alert.rule for alert in fired] == ["interfaces-down"]


class TestMetricGatedPhasing:
    def test_phased_deploy_halts_on_metric_breach(self, pop_network):
        """End to end: the canary's collected metrics gate the rollout."""
        robotron = pop_network
        robotron.run_minutes(2)  # collect real SNMP samples into the tsdb
        # A rule tight enough that every real device breaches it.
        monitor = MetricMonitor(
            robotron.tsdb,
            rules=[MetricAlertRule("cpu-any", "cpu", ">", 0.0)],
            notifier=lambda alert: robotron.notifications.append(
                f"metric alert {alert.rule} on {alert.device}"
            ),
        )
        configs = {
            name: robotron.generator.golden[name].text.replace("9192", "9100")
            for name in sorted(robotron.fleet.devices)
        }
        from repro.deploy.phases import PhaseSpec

        report = robotron.deployer.phased_deploy(
            configs,
            [PhaseSpec(name="canary", percentage=10),
             PhaseSpec(name="rest", percentage=100)],
            health_check=monitor.phased_health_check(),
        )
        assert len(report.succeeded) == 2  # canary only (ceil of 10% of 14)
        assert report.skipped
        assert any("metric alert" in n for n in robotron.notifications)

    def test_phased_deploy_proceeds_when_metrics_fine(self, pop_network):
        robotron = pop_network
        robotron.run_minutes(2)
        monitor = MetricMonitor(robotron.tsdb)  # default, sane thresholds
        configs = {
            name: robotron.generator.golden[name].text
            for name in sorted(robotron.fleet.devices)
        }
        from repro.deploy.phases import PhaseSpec

        report = robotron.deployer.phased_deploy(
            configs,
            [PhaseSpec(name="canary", percentage=10),
             PhaseSpec(name="rest", percentage=100)],
            health_check=monitor.phased_health_check(),
        )
        assert report.ok
        assert len(report.succeeded) == len(configs)
