"""Tests for monitoring storage backends, notably tsdb retention."""

import pytest

from repro.monitoring.backends import TimeSeriesBackend


def _system_record(cpu: float) -> dict:
    return {
        "device": "d1",
        "data_type": "system",
        "payload": {"cpu": cpu, "memory": 40.0, "uptime": 123.0},
    }


class TestTimeSeriesRetention:
    def test_default_window_is_bounded(self):
        backend = TimeSeriesBackend()
        assert backend.max_points_per_series == 4096

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesBackend(max_points_per_series=0)

    def test_eviction_drops_oldest_first(self):
        backend = TimeSeriesBackend(max_points_per_series=3)
        for i in range(5):
            backend.store(_system_record(cpu=float(i)), timestamp=float(i))
        points = list(backend.series[("d1", "cpu")])
        # Points 0 and 1 were evicted; order of survivors is preserved.
        assert points == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]

    def test_latest_reflects_newest_point_after_eviction(self):
        backend = TimeSeriesBackend(max_points_per_series=2)
        for i in range(10):
            backend.store(_system_record(cpu=float(i)), timestamp=float(i))
        assert backend.latest("d1", "cpu") == 9.0

    def test_each_series_evicts_independently(self):
        backend = TimeSeriesBackend(max_points_per_series=3)
        for i in range(5):
            backend.store(_system_record(cpu=float(i)), timestamp=float(i))
        # cpu/memory/uptime all came from the same records: same bound.
        assert len(backend.series[("d1", "cpu")]) == 3
        assert len(backend.series[("d1", "memory")]) == 3
        backend.series[("d2", "cpu")].append((0.0, 1.0))
        assert len(backend.series[("d2", "cpu")]) == 1

    def test_unbounded_enough_window_keeps_everything(self):
        backend = TimeSeriesBackend(max_points_per_series=100)
        for i in range(50):
            backend.store(_system_record(cpu=float(i)), timestamp=float(i))
        assert len(backend.series[("d1", "cpu")]) == 50
