"""Tests for the optical / AS-allocation / peering / facility models."""

import pytest

from repro.common.errors import IntegrityError
from repro.fbnet.models import (
    AsnAllocation,
    AutonomousSystem,
    ConsoleServer,
    DrainEvent,
    DrainState,
    IspPeer,
    MaintenanceWindow,
    NetworkSwitch,
    OpticalChannel,
    OpticalSpan,
    PeeringLink,
    PowerFeed,
)


@pytest.fixture
def device(store, env):
    return store.create(
        NetworkSwitch, name="psw1", hardware_profile=env.profiles["Switch_Vendor2"]
    )


class TestOpticalTransport:
    def test_span_and_channels(self, store, env):
        span = store.create(
            OpticalSpan,
            name="bbs01--bbs02",
            a_site=env.backbone_sites["bbs01"],
            z_site=env.backbone_sites["bbs02"],
            length_km=1200,
        )
        store.create(OpticalChannel, span=span, wavelength_nm=1550)
        store.create(OpticalChannel, span=span, wavelength_nm=1551)
        assert len(span.optical_channels) == 2

    def test_wavelength_unique_per_span(self, store, env):
        span = store.create(
            OpticalSpan, name="s", a_site=env.backbone_sites["bbs01"],
            z_site=env.backbone_sites["bbs02"],
        )
        store.create(OpticalChannel, span=span, wavelength_nm=1550)
        with pytest.raises(IntegrityError):
            store.create(OpticalChannel, span=span, wavelength_nm=1550)

    def test_span_delete_cascades_channels(self, store, env):
        span = store.create(
            OpticalSpan, name="s", a_site=env.backbone_sites["bbs01"],
            z_site=env.backbone_sites["bbs02"],
        )
        store.create(OpticalChannel, span=span, wavelength_nm=1550)
        store.delete(span)
        assert store.count(OpticalChannel) == 0


class TestPeeringAndAsn:
    def test_peering_link_chain(self, store, env):
        asn = store.create(AutonomousSystem, asn=64512, name="ExampleISP")
        peer = store.create(IspPeer, name="ExampleISP", autonomous_system=asn)
        link = store.create(
            PeeringLink, isp_peer=peer, pop=env.pops["pop01"], kind="transit"
        )
        assert link.isp_peer.autonomous_system.asn == 64512

    def test_asn_allocation_unique_per_pop(self, store, env):
        asn = store.create(AutonomousSystem, asn=65501)
        store.create(
            AsnAllocation, autonomous_system=asn, pop=env.pops["pop01"]
        )
        with pytest.raises(IntegrityError):
            store.create(
                AsnAllocation, autonomous_system=asn, pop=env.pops["pop01"]
            )

    def test_asn_protected_while_allocated(self, store, env):
        asn = store.create(AutonomousSystem, asn=65502)
        store.create(AsnAllocation, autonomous_system=asn, pop=env.pops["pop01"])
        with pytest.raises(IntegrityError, match="protected"):
            store.delete(asn)


class TestFacilityModels:
    def test_device_delete_cascades_facility_rows(self, store, env, device):
        store.create(DrainEvent, device=device, state=DrainState.DRAINED, at=1.0)
        store.create(
            MaintenanceWindow, device=device, ticket_id="MW-1",
            starts_at=0.0, ends_at=3600.0,
        )
        store.create(ConsoleServer, name="cs1", device=device, port=7)
        store.create(PowerFeed, device=device, feed="A", watts=850.0)
        store.delete(device)
        for model in (DrainEvent, MaintenanceWindow, ConsoleServer, PowerFeed):
            assert store.count(model) == 0

    def test_power_feed_unique_per_feed(self, store, device):
        store.create(PowerFeed, device=device, feed="A")
        store.create(PowerFeed, device=device, feed="B")
        with pytest.raises(IntegrityError):
            store.create(PowerFeed, device=device, feed="A")

    def test_drain_events_queryable_by_device(self, store, device):
        from repro.fbnet.query import Expr, Op

        store.create(DrainEvent, device=device, state=DrainState.DRAINING, at=1.0)
        store.create(DrainEvent, device=device, state=DrainState.DRAINED, at=2.0)
        events = store.filter(DrainEvent, Expr("device", Op.EQUAL, device.id))
        assert [e.state for e in events] == [DrainState.DRAINING, DrainState.DRAINED]
