"""Tests for the Thrift-like RPC service layer."""

import pytest

from repro.common.errors import RpcError
from repro.fbnet.models import Region
from repro.fbnet.query import Expr, Op
from repro.fbnet.rpc import (
    RpcRequest,
    RpcResponse,
    ServiceReplica,
    decode_message,
    encode_message,
)


class TestWireFormat:
    def test_round_trip(self):
        payload = {"a": [1, 2, {"b": "c"}], "n": None}
        assert decode_message(encode_message(payload)) == payload

    def test_truncated_header(self):
        with pytest.raises(RpcError, match="truncated"):
            decode_message(b"\x01\x00")

    def test_truncated_body(self):
        wire = encode_message({"x": 1})
        with pytest.raises(RpcError, match="truncated RPC body"):
            decode_message(wire[:-2])

    def test_bad_version(self):
        wire = bytearray(encode_message({"x": 1}))
        wire[0] = 9
        with pytest.raises(RpcError, match="version"):
            decode_message(bytes(wire))

    def test_non_object_body_rejected(self):
        body = b"[1,2]"
        wire = b"\x01" + len(body).to_bytes(4, "big") + body
        with pytest.raises(RpcError, match="object"):
            decode_message(wire)

    def test_request_round_trip(self):
        request = RpcRequest("read", "get", {"model": "Region"})
        revived = RpcRequest.from_wire(request.to_wire())
        assert revived == request

    def test_response_result_raises_on_error(self):
        response = RpcResponse(ok=False, error="kaput")
        with pytest.raises(RpcError, match="kaput"):
            response.result()


class TestServiceReplica:
    def test_read_replica_serves_get(self, store):
        store.create(Region, name="r1")
        replica = ServiceReplica("read-0", "na", "read", store)
        request = RpcRequest(
            "read", "get",
            {"model": "Region", "fields": ["name"],
             "query": Expr("name", Op.EQUAL, "r1").to_wire()},
        )
        response = RpcResponse.from_wire(replica.handle(request.to_wire()))
        assert response.result()[0]["name"] == "r1"
        assert replica.served == 1

    def test_write_replica_creates(self, store):
        replica = ServiceReplica("write-0", "na", "write", store)
        request = RpcRequest(
            "write", "create_objects", {"specs": [["Region", {"name": "r1"}]]}
        )
        response = RpcResponse.from_wire(replica.handle(request.to_wire()))
        assert response.ok
        assert store.count(Region) == 1

    def test_ref_revival_through_json(self, store):
        replica = ServiceReplica("write-0", "na", "write", store)
        request = RpcRequest(
            "write", "create_objects",
            {"specs": [
                ["Region", {"name": "r1"}],
                ["Pop", {"name": "p1", "region": ["$ref", 0], "domain": "pop"}],
            ]},
        )
        # Full wire round-trip: tuples become lists and must be revived.
        request = RpcRequest.from_wire(request.to_wire())
        response = RpcResponse.from_wire(replica.handle(request.to_wire()))
        assert response.ok, response.error

    def test_crashed_replica_refuses(self, store):
        replica = ServiceReplica("read-0", "na", "read", store)
        replica.crash()
        with pytest.raises(RpcError, match="down"):
            replica.handle(RpcRequest("read", "schema").to_wire())
        replica.recover()
        assert RpcResponse.from_wire(
            replica.handle(RpcRequest("read", "schema").to_wire())
        ).ok

    def test_wrong_service_kind(self, store):
        replica = ServiceReplica("read-0", "na", "read", store)
        with pytest.raises(RpcError, match="read service"):
            replica.handle(RpcRequest("write", "create_objects", {}).to_wire())

    def test_dispatch_error_surfaced_in_response(self, store):
        replica = ServiceReplica("write-0", "na", "write", store)
        request = RpcRequest(
            "write", "create_objects",
            {"specs": [["Region", {"name": "r1"}], ["Region", {"name": "r1"}]]},
        )
        response = RpcResponse.from_wire(replica.handle(request.to_wire()))
        assert not response.ok
        assert "unique" in response.error
        assert store.count(Region) == 0  # transaction rolled back

    def test_unknown_method(self, store):
        replica = ServiceReplica("read-0", "na", "read", store)
        with pytest.raises(RpcError, match="no method"):
            replica.handle(RpcRequest("read", "nope").to_wire())

    def test_bad_kind_rejected(self, store):
        with pytest.raises(ValueError):
            ServiceReplica("x", "na", "admin", store)
