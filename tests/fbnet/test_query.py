"""Tests for the query language: operators, paths, composition, wire format."""

import pytest

from repro.common.errors import QueryError
from repro.fbnet.models import (
    AggregatedInterface,
    Circuit,
    CircuitStatus,
    Device,
    Linecard,
    NetworkSwitch,
    PeeringRouter,
    PhysicalInterface,
    Region,
    V6Prefix,
)
from repro.fbnet.query import And, Expr, Not, Op, Or, Query, resolve_path


@pytest.fixture
def network(store, env):
    """A tiny network: one PR, one PSW, a bundle with one circuit."""
    pr = store.create(
        PeeringRouter, name="pr1",
        hardware_profile=env.profiles["Router_Vendor1"], pop=env.pops["pop01"],
    )
    psw = store.create(
        NetworkSwitch, name="psw1",
        hardware_profile=env.profiles["Switch_Vendor2"],
    )
    lcm = env.profiles["Router_Vendor1"].related("linecard_model")
    pr_lc = store.create(Linecard, device=pr, slot=1, linecard_model=lcm)
    psw_lc = store.create(Linecard, device=psw, slot=1, linecard_model=lcm)
    pr_agg = store.create(AggregatedInterface, name="ae0", device=pr, number=0)
    pr_pif = store.create(
        PhysicalInterface, name="et1/0", linecard=pr_lc, port=0, agg_interface=pr_agg
    )
    psw_pif = store.create(PhysicalInterface, name="et1/0", linecard=psw_lc, port=0)
    circuit = store.create(
        Circuit, name="c1", a_interface=pr_pif, z_interface=psw_pif,
        status=CircuitStatus.PRODUCTION,
    )
    store.create(V6Prefix, prefix="2401:db00::1/127", interface=pr_agg)
    return {
        "pr": pr, "psw": psw, "circuit": circuit,
        "pr_pif": pr_pif, "pr_agg": pr_agg,
    }


class TestOperators:
    def test_equal_scalar(self, store, network):
        assert store.filter(Device, Expr("name", Op.EQUAL, "pr1")) == [network["pr"]]

    def test_equal_list_means_any(self, store, network):
        found = store.filter(Device, Expr("name", Op.EQUAL, ["pr1", "psw1"]))
        assert len(found) == 2

    def test_not_equal(self, store, network):
        found = store.filter(Device, Expr("name", Op.NOT_EQUAL, "pr1"))
        assert [d.name for d in found] == ["psw1"]

    def test_regexp(self, store, network):
        assert store.count(Device, Expr("name", Op.REGEXP, r"^p(r|sw)1$")) == 2

    def test_regexp_bad_pattern(self):
        with pytest.raises(QueryError, match="bad regexp"):
            Expr("name", Op.REGEXP, "(")

    def test_contains_and_startswith(self, store, network):
        assert store.count(Device, Expr("name", Op.CONTAINS, "sw")) == 1
        assert store.count(Device, Expr("name", Op.STARTSWITH, "pr")) == 1

    def test_ordered_ops(self, store, network):
        assert store.count(PhysicalInterface, Expr("port", Op.GTE, 0)) == 2
        assert store.count(PhysicalInterface, Expr("port", Op.GT, 0)) == 0
        assert store.count(PhysicalInterface, Expr("port", Op.LTE, 0)) == 2

    def test_ordered_requires_single_rvalue(self):
        with pytest.raises(QueryError, match="exactly one"):
            Expr("port", Op.GT, [1, 2])

    def test_is_null(self, store, network):
        null_agg = store.filter(
            PhysicalInterface, Expr("agg_interface", Op.IS_NULL, True)
        )
        assert [p.id for p in null_agg] == [network["circuit"].z_interface_id]
        not_null = store.filter(
            PhysicalInterface, Expr("agg_interface", Op.IS_NULL, False)
        )
        assert [p.id for p in not_null] == [network["pr_pif"].id]

    def test_enum_compared_by_value(self, store, network):
        assert store.count(Circuit, Expr("status", Op.EQUAL, "production")) == 1

    def test_string_op_coerced(self, store, network):
        assert store.count(Device, Expr("name", "==", "pr1")) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError, match="unknown operator"):
            Expr("name", "~=", "x")


class TestPaths:
    def test_forward_fk_path(self, store, network):
        found = store.filter(
            PhysicalInterface, Expr("linecard.device.name", Op.EQUAL, "pr1")
        )
        assert found == [network["pr_pif"]]

    def test_terminal_fk_compares_id(self, store, network):
        found = store.filter(
            Circuit, Expr("a_interface", Op.EQUAL, network["pr_pif"].id)
        )
        assert found == [network["circuit"]]

    def test_reverse_relation_path(self, store, network):
        # Devices that own a linecard in slot 1 (reverse hop device<-linecard).
        found = store.filter(Device, Expr("linecards.slot", Op.EQUAL, 1))
        assert len(found) == 2

    def test_reverse_fanout_any_semantics(self, store, network):
        # Device with an agg interface carrying a v6 prefix.
        found = store.filter(
            Device,
            Expr("aggregated_interfaces.v6_prefixes.prefix", Op.STARTSWITH, "2401:"),
        )
        assert found == [network["pr"]]

    def test_unknown_field_raises(self, store, network):
        with pytest.raises(QueryError, match="unknown field"):
            store.filter(Device, Expr("bogus", Op.EQUAL, 1))

    def test_path_ending_on_relationship_raises(self, store, network):
        with pytest.raises(QueryError, match="value field"):
            store.filter(Device, Expr("linecards", Op.EQUAL, 1))

    def test_null_fk_contributes_no_leaves(self, store, network):
        circuit = store.create(Circuit, name="dangling")
        leaves = resolve_path(circuit, "a_interface.name")
        assert leaves == []

    def test_resolve_id(self, store, network):
        assert resolve_path(network["pr"], "id") == [network["pr"].id]


class TestComposition:
    def test_and(self, store, network):
        query = And(
            Expr("name", Op.STARTSWITH, "p"), Expr("name", Op.CONTAINS, "sw")
        )
        assert [d.name for d in store.filter(Device, query)] == ["psw1"]

    def test_or(self, store, network):
        query = Or(Expr("name", Op.EQUAL, "pr1"), Expr("name", Op.EQUAL, "psw1"))
        assert store.count(Device, query) == 2

    def test_not(self, store, network):
        assert store.count(Device, Not(Expr("name", Op.EQUAL, "pr1"))) == 1

    def test_operator_sugar(self, store, network):
        query = ~Expr("name", Op.EQUAL, "pr1") & Expr("name", Op.STARTSWITH, "p")
        assert [d.name for d in store.filter(Device, query)] == ["psw1"]
        query = Expr("name", Op.EQUAL, "pr1") | Expr("name", Op.EQUAL, "psw1")
        assert store.count(Device, query) == 2

    def test_empty_composition_rejected(self):
        with pytest.raises(QueryError):
            And()
        with pytest.raises(QueryError):
            Or()


class TestWireFormat:
    def test_expr_round_trip(self, store, network):
        query = Expr("name", Op.REGEXP, ["^pr", "^psw"])
        revived = Query.from_wire(query.to_wire())
        assert store.count(Device, revived) == 2

    def test_tree_round_trip(self, store, network):
        query = And(
            Or(Expr("name", Op.EQUAL, "pr1"), Expr("name", Op.EQUAL, "psw1")),
            Not(Expr("name", Op.CONTAINS, "sw")),
        )
        revived = Query.from_wire(query.to_wire())
        assert [d.name for d in store.filter(Device, revived)] == ["pr1"]

    def test_none_passes_through(self):
        assert Query.from_wire(None) is None

    def test_bad_wire_rejected(self):
        with pytest.raises(QueryError, match="bad wire"):
            Query.from_wire({"kind": "nope"})
