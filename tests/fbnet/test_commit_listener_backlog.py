"""Commit-listener backlog semantics under the ``store.commit_listener`` fault.

When the listener hookup hiccups, the commit itself stays durable but
delivery is deferred.  These tests pin the contract downstream relies
on (replication shipping, cache invalidation): deferred batches are
delivered *in commit order*, *exactly once*, and *before* the batch of
the commit that triggered the drain.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults.plan import FaultPlan
from repro.fbnet.models import Region


@pytest.fixture
def deliveries(store):
    received: list[list[str]] = []
    store.add_commit_listener(
        lambda records: received.append([r.values["name"] for r in records])
    )
    return received


def install_listener_fault(times: int) -> None:
    plan = FaultPlan(seed=1)
    plan.inject("store.commit_listener", times=times)
    faults.install(plan)


class TestListenerBacklog:
    def test_single_deferred_batch_drains_on_next_commit(self, store, deliveries):
        store.create(Region, name="a")
        install_listener_fault(times=1)
        store.create(Region, name="b")  # deferred
        assert deliveries == [["a"]]
        faults.uninstall()
        store.create(Region, name="c")  # drains b, then delivers c
        assert deliveries == [["a"], ["b"], ["c"]]

    def test_multiple_backlogged_commits_preserve_order(self, store, deliveries):
        install_listener_fault(times=3)
        with store.transaction():
            store.create(Region, name="a1")
            store.create(Region, name="a2")
        store.create(Region, name="b")
        store.create(Region, name="c")
        assert deliveries == []
        faults.uninstall()
        store.create(Region, name="d")
        # Oldest first, multi-record batches intact, drain before delivery.
        assert deliveries == [["a1", "a2"], ["b"], ["c"], ["d"]]

    def test_flush_delivers_exactly_once(self, store, deliveries):
        install_listener_fault(times=2)
        store.create(Region, name="a")
        store.create(Region, name="b")
        faults.uninstall()
        store.flush_commit_listeners()
        assert deliveries == [["a"], ["b"]]
        store.flush_commit_listeners()  # idempotent: backlog is empty now
        assert deliveries == [["a"], ["b"]]
        store.create(Region, name="c")
        assert deliveries == [["a"], ["b"], ["c"]]

    def test_deferred_commit_is_already_durable_in_journal(self, store, deliveries):
        install_listener_fault(times=1)
        store.create(Region, name="a")
        assert deliveries == []
        # Deferral delays *delivery*, never the commit itself.
        assert [r.values["name"] for r in store.journal] == ["a"]
