"""Tests for the transactional object store."""

import pytest

from repro.common.errors import (
    IntegrityError,
    ObjectDoesNotExist,
)
from repro.fbnet.models import (
    AggregatedInterface,
    Circuit,
    Device,
    Linecard,
    NetworkDomain,
    PeeringRouter,
    NetworkSwitch,
    Pop,
    Region,
    V6Prefix,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ChangeOp, ObjectStore


@pytest.fixture
def pr(store, env):
    return store.create(
        PeeringRouter,
        name="pr1",
        hardware_profile=env.profiles["Router_Vendor1"],
        pop=env.pops["pop01"],
    )


class TestCrud:
    def test_create_assigns_id(self, store):
        region = store.create(Region, name="r1")
        assert region.id is not None
        assert store.get(Region, region.id) is region

    def test_get_missing_raises(self, store):
        with pytest.raises(ObjectDoesNotExist):
            store.get(Region, 999)

    def test_update_persists(self, store, env, pr):
        store.update(pr, name="pr1-renamed")
        assert store.get(PeeringRouter, pr.id).name == "pr1-renamed"

    def test_update_unknown_field_rejected(self, store, pr):
        with pytest.raises(IntegrityError, match="no field"):
            store.update(pr, bogus=1)

    def test_delete_removes(self, store):
        region = store.create(Region, name="r1")
        rid = region.id
        store.delete(region)
        assert region.id is None
        with pytest.raises(ObjectDoesNotExist):
            store.get(Region, rid)

    def test_delete_unsaved_raises(self, store):
        with pytest.raises(ObjectDoesNotExist):
            store.delete(Region(name="x"))

    def test_cross_store_save_rejected(self, store):
        other = ObjectStore("other")
        region = other.create(Region, name="r1")
        with pytest.raises(IntegrityError, match="different store"):
            store.save(region)


class TestSubclassTables:
    def test_all_spans_subclasses(self, store, env):
        store.create(
            PeeringRouter, name="pr1",
            hardware_profile=env.profiles["Router_Vendor1"], pop=env.pops["pop01"],
        )
        store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        names = [d.name for d in store.all(Device)]
        assert names == ["pr1", "psw1"]

    def test_get_via_base_class(self, store, env, pr):
        assert store.get(Device, pr.id) is pr

    def test_unique_across_family(self, store, env, pr):
        # Device.name is unique across the whole device family.
        with pytest.raises(IntegrityError, match="unique"):
            store.create(
                NetworkSwitch, name="pr1",
                hardware_profile=env.profiles["Switch_Vendor2"],
            )


class TestConstraints:
    def test_fk_must_exist(self, store):
        with pytest.raises(IntegrityError, match="no Region"):
            store.create(Pop, name="p", region=12345, domain=NetworkDomain.POP)

    def test_unique_field(self, store):
        store.create(Region, name="r1")
        with pytest.raises(IntegrityError, match="unique"):
            store.create(Region, name="r1")

    def test_unique_together(self, store, env, pr):
        lcm = env.profiles["Router_Vendor1"].related("linecard_model")
        store.create(Linecard, device=pr, slot=1, linecard_model=lcm)
        with pytest.raises(IntegrityError, match="unique_together"):
            store.create(Linecard, device=pr, slot=1, linecard_model=lcm)

    def test_unique_allows_update_in_place(self, store):
        region = store.create(Region, name="r1")
        store.update(region, name="r1")  # same value, same row: fine


class TestDeletePolicies:
    def test_protect_blocks(self, store, env):
        with pytest.raises(IntegrityError, match="protected"):
            store.delete(env.pops["pop01"].related("region"))

    def test_cascade_follows(self, store, env, pr):
        lcm = env.profiles["Router_Vendor1"].related("linecard_model")
        lc = store.create(Linecard, device=pr, slot=1, linecard_model=lcm)
        from repro.fbnet.models import PhysicalInterface

        pif = store.create(PhysicalInterface, name="et1/0", linecard=lc, port=0)
        store.delete(pr)
        assert store.count(Linecard) == 0
        assert store.count(PhysicalInterface) == 0

    def test_set_null_clears(self, store, env, pr):
        agg = store.create(AggregatedInterface, name="ae0", device=pr, number=0)
        lcm = env.profiles["Router_Vendor1"].related("linecard_model")
        lc = store.create(Linecard, device=pr, slot=1, linecard_model=lcm)
        from repro.fbnet.models import PhysicalInterface

        pif = store.create(
            PhysicalInterface, name="et1/0", linecard=lc, port=0, agg_interface=agg
        )
        store.delete(agg)
        assert pif.agg_interface is None
        assert store.get(PhysicalInterface, pif.id) is pif

    def test_cascade_reaches_prefixes(self, store, env, pr):
        agg = store.create(AggregatedInterface, name="ae0", device=pr, number=0)
        store.create(V6Prefix, prefix="2401:db00::1/127", interface=agg)
        store.delete(agg)
        assert store.count(V6Prefix) == 0


class TestTransactions:
    def test_rollback_on_exception(self, store):
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.create(Region, name="r1")
                raise RuntimeError("boom")
        assert store.count(Region) == 0

    def test_rollback_restores_updates(self, store):
        region = store.create(Region, name="r1")
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.update(region, name="r2")
                raise RuntimeError("boom")
        assert region.name == "r1"
        assert store.first(Region, Expr("name", Op.EQUAL, "r1")) is region

    def test_rollback_restores_deletes(self, store):
        region = store.create(Region, name="r1")
        rid = region.id
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete(region)
                raise RuntimeError("boom")
        restored = store.get(Region, rid)
        assert restored.name == "r1"

    def test_nested_transactions_join(self, store):
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.create(Region, name="outer")
                with store.transaction():
                    store.create(Region, name="inner")
                raise RuntimeError("boom")
        assert store.count(Region) == 0

    def test_commit_is_atomic_in_journal(self, store):
        with store.transaction() as txn_id:
            store.create(Region, name="a")
            store.create(Region, name="b")
        records = store.journal
        assert {r.txn_id for r in records} == {txn_id}
        assert len(records) == 2

    def test_rollback_keeps_reverse_index_consistent(self, store, env):
        pop = env.pops["pop01"]
        region = pop.related("region")
        before = len(region.pops)
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.create(
                    Pop, name="tmp", region=region, domain=NetworkDomain.POP
                )
                raise RuntimeError("boom")
        assert len(region.pops) == before


class TestJournal:
    def test_journal_records_ops(self, store):
        region = store.create(Region, name="r1")
        store.update(region, name="r2")
        store.delete(region)
        ops = [r.op for r in store.journal]
        assert ops == [ChangeOp.CREATE, ChangeOp.UPDATE, ChangeOp.DELETE]

    def test_update_records_changed_fields(self, store):
        region = store.create(Region, name="r1")
        store.update(region, name="r2")
        update = store.journal[-1]
        assert update.changed_fields == ("name",)

    def test_journal_since(self, store):
        store.create(Region, name="r1")
        pos = store.journal_position
        store.create(Region, name="r2")
        tail = store.journal_since(pos)
        assert len(tail) == 1 and tail[0].values["name"] == "r2"

    def test_commit_listener_receives_batches(self, store):
        batches = []
        store.add_commit_listener(batches.append)
        with store.transaction():
            store.create(Region, name="a")
            store.create(Region, name="b")
        assert len(batches) == 1 and len(batches[0]) == 2

    def test_rolled_back_ops_never_reach_listeners(self, store):
        batches = []
        store.add_commit_listener(batches.append)
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.create(Region, name="a")
                raise RuntimeError("boom")
        assert batches == []


class TestApplyRecord:
    def test_replication_round_trip(self, store):
        replica = ObjectStore("replica")
        region = store.create(Region, name="r1")
        store.update(region, name="r2")
        for record in store.journal:
            replica.apply_record(record)
        copy = replica.get(Region, region.id)
        assert copy.name == "r2"

    def test_ids_preserved_and_counter_advanced(self, store):
        replica = ObjectStore("replica")
        region = store.create(Region, name="r1")
        for record in store.journal:
            replica.apply_record(record)
        fresh = replica.create(Region, name="r2")
        assert fresh.id > region.id

    def test_delete_replicates(self, store):
        replica = ObjectStore("replica")
        region = store.create(Region, name="r1")
        store.delete(region)
        for record in store.journal:
            replica.apply_record(record)
        assert replica.count(Region) == 0


class TestIntrospection:
    def test_table_sizes(self, store):
        store.create(Region, name="r1")
        store.create(Region, name="r2")
        assert store.table_sizes() == {"Region": 2}

    def test_total_objects(self, store, env):
        assert store.total_objects() > 10  # the seeded catalog
