"""Tests for multi-region replication and failover (paper section 4.3.3)."""

import pytest

from repro.common.errors import ReplicationError
from repro.fbnet.query import Expr, Op
from repro.fbnet.replication import ReplicatedFBNet
from repro.simulation.clock import EventScheduler

REGIONS = ["na-east", "na-west", "eu-central"]


@pytest.fixture
def cluster():
    return ReplicatedFBNet(REGIONS, "na-east", EventScheduler(), replication_lag=0.5)


class TestBasics:
    def test_master_region_must_exist(self):
        with pytest.raises(ValueError):
            ReplicatedFBNet(REGIONS, "mars")

    def test_duplicate_regions_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedFBNet(["a", "a"], "a")

    def test_writes_forwarded_to_master(self, cluster):
        client = cluster.client("eu-central")
        client.create_objects([("Region", {"name": "rx"})])
        assert cluster.master.store.count.__self__.total_objects() == 1

    def test_unknown_client_region(self, cluster):
        with pytest.raises(ValueError):
            cluster.client("mars")


class TestAsyncReplication:
    def test_lag_before_visibility(self, cluster):
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rx"})])
        assert client.count("Region") == 0  # local replica hasn't caught up
        cluster.scheduler.run_for(1.0)
        assert client.count("Region") == 1

    def test_read_after_write_consistency(self, cluster):
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rx"})])
        # Master-region read replicas serve read-after-write clients.
        assert client.count("Region", consistency="read-after-write") == 1

    def test_measured_lag(self, cluster):
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.scheduler.clock.advance(0.3)
        assert cluster.measured_lag("na-west") == pytest.approx(0.3)
        cluster.scheduler.run_for(0.3)
        assert cluster.measured_lag("na-west") == 0.0

    def test_updates_and_deletes_replicate(self, cluster):
        client = cluster.client("na-east")
        (rid,) = client.create_objects([("Region", {"name": "rx"})])
        client.update_objects([("Region", rid, {"name": "ry"})])
        cluster.scheduler.run_for(1.0)
        west = cluster.client("na-west")
        rows = west.get("Region", fields=["name"])
        assert rows[0]["name"] == "ry"
        client.delete_objects([("Region", rid)])
        cluster.scheduler.run_for(1.0)
        assert west.count("Region") == 0


class TestReplicaFailure:
    def test_disabled_replica_reads_from_master(self, cluster):
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.disable_database("na-west")
        # Without waiting for replication, reads see master data.
        assert client.count("Region") == 1

    def test_recovery_resyncs_and_reattaches(self, cluster):
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.disable_database("na-west")
        client.create_objects([("Region", {"name": "ry"})])
        cluster.scheduler.run_for(1.0)  # batches arrive into the backlog
        cluster.recover_database("na-west")
        assert cluster.regions["na-west"].store.total_objects() == 2
        assert client.count("Region") == 2

    def test_high_lag_disables_replica(self):
        cluster = ReplicatedFBNet(
            REGIONS, "na-east", EventScheduler(), replication_lag=100.0, max_lag=30.0
        )
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.scheduler.clock.advance(31.0)
        disabled = cluster.check_health()
        assert set(disabled) == {"na-west", "eu-central"}
        assert not cluster.regions["na-west"].db_healthy


class TestServiceReplicaFailure:
    def test_redirect_within_region(self, cluster):
        client = cluster.client("na-west")
        cluster.regions["na-west"].read_replicas[0].crash()
        assert client.count("Region") == 0  # second local replica serves

    def test_redirect_to_neighbor_region(self, cluster):
        client = cluster.client("na-west")
        for replica in cluster.regions["na-west"].read_replicas:
            replica.crash()
        assert client.count("Region") == 0  # nearest live region serves

    def test_all_read_replicas_down(self, cluster):
        client = cluster.client("na-west")
        for region in cluster.regions.values():
            for replica in region.read_replicas:
                replica.crash()
        with pytest.raises(ReplicationError, match="no live"):
            client.count("Region")


class TestMasterFailover:
    def test_writes_fail_while_master_down(self, cluster):
        cluster.fail_master()
        client = cluster.client("na-west")
        with pytest.raises(ReplicationError):
            client.create_objects([("Region", {"name": "rx"})])

    def test_promote_nearest(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.scheduler.run_for(1.0)
        cluster.fail_master()
        new_master = cluster.promote_nearest()
        assert new_master == "na-west"  # nearest by region order
        assert cluster.promotions[-1][1:] == ("na-east", "na-west")

    def test_writes_resume_after_promotion(self, cluster):
        client = cluster.client("eu-central")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.scheduler.run_for(1.0)
        cluster.fail_master()
        cluster.promote_nearest()
        client.create_objects([("Region", {"name": "ry"})])
        cluster.scheduler.run_for(1.0)
        assert client.count("Region") == 2

    def test_new_master_ships_to_replicas(self, cluster):
        cluster.fail_master()
        cluster.promote_nearest()
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rz"})])
        cluster.scheduler.run_for(1.0)
        eu = cluster.regions["eu-central"].store
        assert eu.total_objects() == 1

    def test_old_master_rejoins_as_replica(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.scheduler.run_for(1.0)
        cluster.fail_master()
        cluster.promote_nearest()
        client2 = cluster.client("na-west")
        client2.create_objects([("Region", {"name": "ry"})])
        cluster.rejoin_old_master("na-east")
        assert cluster.regions["na-east"].store.total_objects() == 2
        assert cluster.regions["na-east"].db_healthy

    def test_promotion_requires_healthy_replica(self, cluster):
        cluster.fail_master()
        cluster.regions["na-west"].db_healthy = False
        cluster.regions["eu-central"].db_healthy = False
        with pytest.raises(ReplicationError, match="no healthy replica"):
            cluster.promote_nearest()

    def test_in_flight_to_promoted_region_tail_loss(self, cluster):
        """Asynchronous replication can lose the in-flight tail on failover."""
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "rx"})])
        # Master dies before the batch's lag elapses anywhere.
        cluster.fail_master()
        cluster.promote_nearest()
        cluster.scheduler.run_for(1.0)
        assert cluster.regions["na-west"].store.total_objects() == 0
