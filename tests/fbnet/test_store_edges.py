"""Edge-case tests for the store: replication records, index fast paths."""

import pytest

from repro.common.errors import TransactionError
from repro.fbnet.models import (
    NetworkSwitch,
    PhysicalInterface,
    Pop,
    Region,
)
from repro.fbnet.query import And, Expr, Op
from repro.fbnet.store import ChangeOp, ChangeRecord, ObjectStore


class TestApplyRecordEdges:
    def test_update_for_missing_object_raises(self, store):
        record = ChangeRecord(
            txn_id=1, op=ChangeOp.UPDATE, model="Region", obj_id=99,
            values={"name": "ghost"},
        )
        with pytest.raises(TransactionError, match="missing"):
            store.apply_record(record)

    def test_delete_for_missing_object_raises(self, store):
        # Symmetric with UPDATE: a delete for a row this store never had
        # means it diverged from the journal source — surfaced, not masked.
        from repro import obs

        record = ChangeRecord(
            txn_id=1, op=ChangeOp.DELETE, model="Region", obj_id=99,
        )
        with pytest.raises(TransactionError, match="missing"):
            store.apply_record(record)
        assert (
            obs.counter(
                "store.replication.divergence", store=store.name, op="delete"
            ).value
            == 1
        )

    def test_replicated_unique_index_works(self, store):
        replica = ObjectStore("replica")
        store.create(Region, name="r1")
        for record in store.journal:
            replica.apply_record(record)
        # The replica's unique index was built by apply_record: a clashing
        # local write is rejected, and indexed lookups work.
        with pytest.raises(Exception):
            replica.create(Region, name="r1")
        assert replica.first(Region, Expr("name", Op.EQUAL, "r1")) is not None


class TestIndexedFilterFastPath:
    """The fast path must agree with brute-force matching exactly."""

    @pytest.fixture
    def rig(self, store, env):
        devices = [
            store.create(
                NetworkSwitch, name=f"psw{i}",
                hardware_profile=env.profiles["Switch_Vendor2"],
            )
            for i in range(3)
        ]
        return devices

    def test_unique_field_lookup(self, store, env, rig):
        found = store.filter(NetworkSwitch, Expr("name", Op.EQUAL, "psw1"))
        assert [d.name for d in found] == ["psw1"]
        assert store.filter(NetworkSwitch, Expr("name", Op.EQUAL, "nope")) == []

    def test_unique_lookup_respects_subtree(self, store, env, rig):
        from repro.fbnet.models import PeeringRouter

        # psw1 exists in the Device family, but not as a PeeringRouter.
        assert store.first(PeeringRouter, Expr("name", Op.EQUAL, "psw1")) is None

    def test_unique_lookup_list_rvalue(self, store, env, rig):
        found = store.filter(
            NetworkSwitch, Expr("name", Op.EQUAL, ["psw0", "psw2", "ghost"])
        )
        assert [d.name for d in found] == ["psw0", "psw2"]

    def test_fk_lookup_with_list(self, store, env, rig):
        lcm = env.profiles["Switch_Vendor2"].related("linecard_model")
        from repro.fbnet.models import Linecard

        lcs = [
            store.create(Linecard, device=d, slot=1, linecard_model=lcm)
            for d in rig
        ]
        found = store.filter(
            Linecard, Expr("device", Op.EQUAL, [rig[0].id, rig[2].id])
        )
        assert {lc.device_id for lc in found} == {rig[0].id, rig[2].id}

    def test_non_equal_ops_fall_back_to_scan(self, store, env, rig):
        found = store.filter(NetworkSwitch, Expr("name", Op.REGEXP, r"psw[02]"))
        assert len(found) == 2

    def test_composed_query_falls_back(self, store, env, rig):
        query = And(
            Expr("name", Op.EQUAL, "psw1"),
            Expr("name", Op.STARTSWITH, "psw"),
        )
        assert len(store.filter(NetworkSwitch, query)) == 1

    def test_plain_value_field_falls_back(self, store, env, rig):
        lcm = env.profiles["Switch_Vendor2"].related("linecard_model")
        from repro.fbnet.models import Linecard

        store.create(Linecard, device=rig[0], slot=4, linecard_model=lcm)
        found = store.filter(Linecard, Expr("slot", Op.EQUAL, 4))
        assert len(found) == 1

    def test_fast_path_after_update(self, store, env, rig):
        store.update(rig[0], name="renamed")
        assert store.first(NetworkSwitch, Expr("name", Op.EQUAL, "psw0")) is None
        assert store.first(
            NetworkSwitch, Expr("name", Op.EQUAL, "renamed")
        ) is rig[0]

    def test_fast_path_after_rollback(self, store, env, rig):
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.update(rig[0], name="doomed")
                raise RuntimeError("abort")
        assert store.first(NetworkSwitch, Expr("name", Op.EQUAL, "psw0")) is rig[0]
        assert store.first(NetworkSwitch, Expr("name", Op.EQUAL, "doomed")) is None

    def test_fast_path_after_delete(self, store, env, rig):
        store.delete(rig[1])
        assert store.first(NetworkSwitch, Expr("name", Op.EQUAL, "psw1")) is None
        # The freed name is reusable.
        store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
