"""Journal-position semantics: rollback, replica promotion, staleness.

The incremental pipeline anchors everything at journal positions, so the
corner cases matter: rolled-back transactions must leave no trace in the
journal, and a config "generated at position P" must read as stale on a
store whose journal is *shorter* than P (a replica promoted after losing
the asynchronous tail).
"""

import pytest

from repro.configgen.generator import ConfigGenerator, DeviceConfig
from repro.fbnet.models import Region
from repro.fbnet.replication import ReplicatedFBNet
from repro.simulation.clock import EventScheduler

pytestmark = pytest.mark.incremental

REGIONS = ["na-east", "na-west", "eu-central"]


class TestJournalAfterRollback:
    def test_rolled_back_transaction_journals_nothing(self, store):
        region = store.create(Region, name="r1")
        position = store.journal_position
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.update(region, name="r1-doomed")
                store.create(Region, name="r2-doomed")
                raise RuntimeError("abort")
        assert store.journal_position == position
        assert store.journal_since(position) == []
        # The store state matches the journal's story.
        assert store.get(Region, region.id).name == "r1"
        assert store.count(Region) == 1

    def test_positions_continue_after_rollback(self, store):
        region = store.create(Region, name="r1")
        position = store.journal_position
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.update(region, name="doomed")
                raise RuntimeError("abort")
        store.update(region, name="r1-committed")
        records = store.journal_since(position)
        assert len(records) == 1
        assert records[0].values["name"] == "r1-committed"
        assert store.journal_position == position + 1

    def test_read_set_unaffected_by_rolled_back_records(self, store):
        """A reader anchored before a rollback sees an empty delta."""
        region = store.create(Region, name="r1")
        with store.track_reads() as reads:
            store.get(Region, region.id)
        position = store.journal_position
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.update(region, name="doomed")
                raise RuntimeError("abort")
        assert reads.first_match(store.journal_since(position)) is None


class TestStalenessAcrossPromotion:
    @pytest.fixture
    def cluster(self):
        return ReplicatedFBNet(
            REGIONS, "na-east", EventScheduler(), replication_lag=0.5
        )

    def test_promotion_loses_tail_and_configs_read_stale(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": f"r{i}"}) for i in range(5)])
        master_store = cluster.master.store
        generated_at = master_store.journal_position
        assert generated_at == 5
        config = DeviceConfig(
            device_name="d1", vendor="vendor1", text="x\n",
            design_position=generated_at,
        )
        assert not ConfigGenerator(master_store).is_stale(config)

        # Master dies before the async tail ships (scheduler never ran).
        cluster.fail_master()
        promoted = cluster.promote_nearest()
        new_store = cluster.master.store
        assert promoted != "na-east"
        assert new_store.journal_position < generated_at

        # The config claims a design position the new master never saw —
        # it must read as stale, not as "from the future, trust it".
        assert ConfigGenerator(new_store).is_stale(config)

    def test_behind_is_still_stale(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "r1"})])
        store = cluster.master.store
        config = DeviceConfig(
            device_name="d1", vendor="vendor1", text="x\n",
            design_position=store.journal_position,
        )
        client.create_objects([("Region", {"name": "r2"})])
        assert ConfigGenerator(store).is_stale(config)

    def test_caught_up_tail_is_not_lost(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": f"r{i}"}) for i in range(5)])
        position = cluster.master.store.journal_position
        cluster.scheduler.run_for(1.0)  # replication catches up fully
        cluster.fail_master()
        cluster.promote_nearest()
        assert cluster.master.store.journal_position == position
        config = DeviceConfig(
            device_name="d1", vendor="vendor1", text="x\n",
            design_position=position,
        )
        assert not ConfigGenerator(cluster.master.store).is_stale(config)
