"""Regressions for query wire round-trips and transaction rollback.

Three bugs pinned down here:

* ``Expr(..., Op.IS_NULL, False)`` lost its polarity over the wire —
  ``rvalues`` arrives as ``[False]`` and ``bool([False])`` is ``True``;
* ``Query.from_wire({"kind": "not", "child": None})`` built ``Not(None)``
  which exploded with ``AttributeError`` only when first matched;
* rolling back a DELETE resurrected a *fresh* instance, stranding the
  caller's reference with ``id=None`` (a later ``save()`` would insert a
  duplicate row).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.fbnet.models import NetworkDomain, Pop, Region
from repro.fbnet.query import And, Expr, Not, Op, Or, Query
from repro.fbnet.store import ObjectStore


class TestIsNullWireRoundTrip:
    def test_isnull_false_survives_the_wire(self):
        expr = Expr("name", Op.IS_NULL, False)
        back = Query.from_wire(json.loads(json.dumps(expr.to_wire())))
        assert isinstance(back, Expr)
        assert back.rvalues == (False,)

    def test_isnull_true_survives_the_wire(self):
        expr = Expr("name", Op.IS_NULL, True)
        back = Query.from_wire(json.loads(json.dumps(expr.to_wire())))
        assert back.rvalues == (True,)

    def test_round_tripped_isnull_false_matches_like_the_original(self):
        store = ObjectStore()
        region = store.create(Region, name="na-west")
        expr = Expr("name", Op.IS_NULL, False)  # "name is NOT null"
        assert expr.matches(region)
        back = Query.from_wire(expr.to_wire())
        # Before the fix this flipped to isnull=True and matched nothing.
        assert back.matches(region)


class TestMalformedWireTrees:
    def test_not_with_null_child_is_a_query_error(self):
        with pytest.raises(QueryError):
            Query.from_wire({"kind": "not", "child": None})

    def test_not_constructor_rejects_non_query(self):
        with pytest.raises(QueryError):
            Not(None)  # type: ignore[arg-type]

    def test_and_or_reject_non_query_children(self):
        good = Expr("name", Op.EQUAL, "x")
        for factory in (And, Or):
            with pytest.raises(QueryError):
                factory(good, "not a query")  # type: ignore[arg-type]

    def test_unknown_wire_operator_is_a_query_error(self):
        with pytest.raises(QueryError):
            Query.from_wire(
                {"kind": "expr", "field": "name", "op": "===", "rvalues": ["x"]}
            )


# ---------------------------------------------------------------------------
# Property: every operator and tree shape round-trips through the wire
# ---------------------------------------------------------------------------

_WORDS = st.text(alphabet="abcxyz0123", min_size=1, max_size=6)
_WORD_LISTS = st.lists(_WORDS, min_size=1, max_size=3)

_LEAVES = st.one_of(
    st.builds(lambda vs: Expr("name", Op.EQUAL, vs), _WORD_LISTS),
    st.builds(lambda vs: Expr("name", Op.NOT_EQUAL, vs), _WORD_LISTS),
    st.builds(lambda vs: Expr("name", Op.REGEXP, vs), _WORD_LISTS),
    st.builds(lambda vs: Expr("name", Op.CONTAINS, vs), _WORD_LISTS),
    st.builds(lambda vs: Expr("name", Op.STARTSWITH, vs), _WORD_LISTS),
    st.builds(lambda v: Expr("id", Op.GT, v), st.integers(-5, 5)),
    st.builds(lambda v: Expr("id", Op.GTE, v), st.integers(-5, 5)),
    st.builds(lambda v: Expr("id", Op.LT, v), st.integers(-5, 5)),
    st.builds(lambda v: Expr("id", Op.LTE, v), st.integers(-5, 5)),
    st.builds(lambda b: Expr("name", Op.IS_NULL, b), st.booleans()),
)

_TREES = st.recursive(
    _LEAVES,
    lambda children: st.one_of(
        st.builds(lambda cs: And(*cs), st.lists(children, min_size=1, max_size=3)),
        st.builds(lambda cs: Or(*cs), st.lists(children, min_size=1, max_size=3)),
        st.builds(Not, children),
    ),
    max_leaves=12,
)


class TestQueryWireProperty:
    @settings(max_examples=80, deadline=None)
    @given(query=_TREES)
    def test_wire_round_trip_is_identity(self, query):
        wire = query.to_wire()
        # The RPC layer JSON-encodes the tree; simulate the transport.
        back = Query.from_wire(json.loads(json.dumps(wire)))
        assert back.to_wire() == wire

    @settings(max_examples=80, deadline=None)
    @given(query=_TREES)
    def test_round_tripped_query_matches_identically(self, query):
        store = ObjectStore()
        objects = [
            store.create(Region, name=name)
            for name in ("abc", "xyz0", "c3", "zzz")
        ]
        back = Query.from_wire(json.loads(json.dumps(query.to_wire())))
        for obj in objects:
            assert back.matches(obj) == query.matches(obj)


# ---------------------------------------------------------------------------
# Rollback: a failed transaction must restore the exact pre-txn world
# ---------------------------------------------------------------------------


class TestRollbackIdentity:
    def test_failed_txn_restores_identity_and_indexes(self):
        store = ObjectStore()
        kept = store.create(Region, name="kept")
        renamed = store.create(Region, name="old-name")
        kept_id, renamed_id = kept.id, renamed.id

        with pytest.raises(RuntimeError):
            with store.transaction():
                store.create(Region, name="phantom")
                store.update(renamed, name="new-name")
                store.delete(kept)
                raise RuntimeError("abort")

        # DELETE rollback revives the *same* instance the caller holds —
        # not a fresh copy that leaves `kept` stranded with id=None.
        assert kept.id == kept_id
        assert kept._store is store
        assert store.get(Region, kept_id) is kept

        # UPDATE rolled back in place; CREATE is fully gone.
        assert renamed.name == "old-name"
        assert renamed.id == renamed_id
        assert not store.exists(Region, Expr("name", Op.EQUAL, "phantom"))
        assert not store.exists(Region, Expr("name", Op.EQUAL, "new-name"))

        # The unique index agrees with the objects (indexed lookups resolve
        # to the identical instances).
        assert store.first(Region, Expr("name", Op.EQUAL, "kept")) is kept
        assert store.first(Region, Expr("name", Op.EQUAL, "old-name")) is renamed

    def test_revived_instance_stays_writable(self):
        """A post-rollback save() on the caller's reference must update,
        not insert a duplicate row (the old id=None failure mode)."""
        store = ObjectStore()
        region = store.create(Region, name="r1")
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete(region)
                raise RuntimeError("abort")
        store.update(region, name="r1-renamed")
        assert store.count(Region) == 1
        assert store.first(Region, Expr("name", Op.EQUAL, "r1-renamed")) is region

    def test_rollback_restores_deleted_objects_relations(self):
        """Related deletes roll back too, with FKs and reverse index intact."""
        store = ObjectStore()
        region = store.create(Region, name="na")
        pop = store.create(
            Pop, name="pop01", region=region, domain=NetworkDomain.POP
        )
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.delete(pop)
                store.delete(region)
                raise RuntimeError("abort")
        assert store.get(Region, region.id) is region
        assert store.get(Pop, pop.id) is pop
        assert pop.related("region") is region
        assert store.referrers(region, Pop, "region") == [pop]
