"""Unit tests for FBNet value and relationship fields."""

import pytest

from repro.common.errors import ValidationError
from repro.fbnet.fields import (
    ASNField,
    BoolField,
    CharField,
    DateTimeField,
    EnumField,
    Field,
    FloatField,
    ForeignKey,
    IntField,
    JSONField,
    MACAddressField,
    OnDelete,
    V4AddressField,
    V4PrefixField,
    V6AddressField,
    V6PrefixField,
)
from repro.fbnet.models import DeviceStatus, Region


def clean(field, value):
    field.name = "test_field"
    return field.clean(value)


class TestCharField:
    def test_accepts_string(self):
        assert clean(CharField(), "hello") == "hello"

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            clean(CharField(), 42)

    def test_enforces_max_length(self):
        with pytest.raises(ValidationError, match="max_length"):
            clean(CharField(max_length=3), "toolong")

    def test_exact_max_length_ok(self):
        assert clean(CharField(max_length=3), "abc") == "abc"


class TestIntField:
    def test_accepts_int(self):
        assert clean(IntField(), 5) == 5

    def test_rejects_bool(self):
        # bool is an int subclass; a strict field must not accept it.
        with pytest.raises(ValidationError):
            clean(IntField(), True)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            clean(IntField(), 1.5)

    def test_bounds(self):
        field = IntField(min_value=0, max_value=10)
        assert clean(field, 0) == 0
        assert clean(field, 10) == 10
        with pytest.raises(ValidationError):
            clean(field, -1)
        with pytest.raises(ValidationError):
            clean(field, 11)


class TestFloatAndDateTime:
    def test_float_coerces_int(self):
        assert clean(FloatField(), 3) == 3.0

    def test_float_rejects_bool(self):
        with pytest.raises(ValidationError):
            clean(FloatField(), False)

    def test_datetime_rejects_negative(self):
        with pytest.raises(ValidationError):
            clean(DateTimeField(), -1.0)

    def test_datetime_accepts_zero(self):
        assert clean(DateTimeField(), 0.0) == 0.0


class TestBoolField:
    def test_strict(self):
        assert clean(BoolField(), True) is True
        with pytest.raises(ValidationError):
            clean(BoolField(), 1)


class TestEnumField:
    def test_accepts_member(self):
        field = EnumField(DeviceStatus)
        assert clean(field, DeviceStatus.PLANNED) is DeviceStatus.PLANNED

    def test_accepts_value(self):
        field = EnumField(DeviceStatus)
        assert clean(field, "production") is DeviceStatus.PRODUCTION

    def test_accepts_name(self):
        field = EnumField(DeviceStatus)
        assert clean(field, "PLANNED") is DeviceStatus.PLANNED

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            clean(EnumField(DeviceStatus), "nope")


class TestMACAddressField:
    def test_normalizes_case_and_separator(self):
        field = MACAddressField()
        assert clean(field, "AA-BB-CC-DD-EE-FF") == "aa:bb:cc:dd:ee:ff"

    def test_accepts_bare_hex(self):
        assert clean(MACAddressField(), "aabbccddeeff") == "aa:bb:cc:dd:ee:ff"

    def test_rejects_short(self):
        with pytest.raises(ValidationError):
            clean(MACAddressField(), "aa:bb:cc")


class TestPrefixFields:
    def test_v6_prefix_valid(self):
        assert clean(V6PrefixField(), "2401:db00::1/127") == "2401:db00::1/127"

    def test_v6_prefix_preserves_host_bits(self):
        # The paper's ipaddr.IPNetwork kept the given address; so do we —
        # the two /127 endpoints must stay distinct.
        assert clean(V6PrefixField(), "2401:db00::1/127") != clean(
            V6PrefixField(), "2401:db00::/127"
        )

    def test_v6_prefix_rejects_v4(self):
        with pytest.raises(ValidationError, match="IPv4"):
            clean(V6PrefixField(), "10.0.0.0/31")

    def test_v6_prefix_rejects_garbage(self):
        with pytest.raises(ValidationError):
            clean(V6PrefixField(), "not-an-ip")

    def test_v4_prefix_valid(self):
        assert clean(V4PrefixField(), "10.0.0.1/31") == "10.0.0.1/31"

    def test_v4_prefix_rejects_v6(self):
        with pytest.raises(ValidationError, match="IPv6"):
            clean(V4PrefixField(), "2401:db00::/127")


class TestAddressFields:
    def test_v4_address(self):
        assert clean(V4AddressField(), "10.1.2.3") == "10.1.2.3"

    def test_v4_address_rejects_prefix(self):
        with pytest.raises(ValidationError):
            clean(V4AddressField(), "10.1.2.0/24")

    def test_v6_address_normalizes(self):
        assert clean(V6AddressField(), "2401:DB00::1") == "2401:db00::1"


class TestASNField:
    def test_range(self):
        assert clean(ASNField(), 65000) == 65000
        assert clean(ASNField(), 2**32 - 1) == 2**32 - 1
        with pytest.raises(ValidationError):
            clean(ASNField(), 2**32)
        with pytest.raises(ValidationError):
            clean(ASNField(), -1)


class TestJSONField:
    def test_accepts_nested(self):
        value = {"a": [1, 2, {"b": None}], "c": "x"}
        assert clean(JSONField(), value) == value

    def test_rejects_non_string_keys(self):
        with pytest.raises(ValidationError):
            clean(JSONField(), {1: "x"})

    def test_rejects_objects(self):
        with pytest.raises(ValidationError):
            clean(JSONField(), {"x": object()})


class TestFieldBasics:
    def test_null_handling(self):
        assert clean(CharField(null=True), None) is None
        with pytest.raises(ValidationError, match="null"):
            clean(CharField(), None)

    def test_choices(self):
        field = CharField(choices=["a", "b"])
        assert clean(field, "a") == "a"
        with pytest.raises(ValidationError, match="not one of"):
            clean(field, "c")

    def test_callable_default(self):
        field = JSONField(default=dict)
        first, second = field.get_default(), field.get_default()
        assert first == {} and first is not second

    def test_describe(self):
        record = CharField(unique=True, help_text="hi").describe()
        assert record["type"] == "CharField"
        assert record["unique"] is True
        assert record["help_text"] == "hi"


class TestForeignKey:
    def test_set_null_requires_null(self):
        with pytest.raises(ValueError):
            ForeignKey(Region, on_delete=OnDelete.SET_NULL)

    def test_accepts_saved_object(self, store):
        region = store.create(Region, name="r1")
        fk = ForeignKey(Region)
        fk.name = "region"
        assert fk.clean(region) == region.id

    def test_rejects_unsaved_object(self):
        fk = ForeignKey(Region)
        fk.name = "region"
        with pytest.raises(ValidationError, match="unsaved"):
            fk.clean(Region(name="r2"))

    def test_rejects_wrong_type(self, store):
        from repro.fbnet.models import RackProfile

        profile = store.create(RackProfile, name="p", downlinks_per_rack=1)
        fk = ForeignKey(Region)
        fk.name = "region"
        with pytest.raises(ValidationError, match="expected Region"):
            fk.clean(profile)

    def test_describe_includes_target(self):
        fk = ForeignKey(Region, related_name="things")
        fk.name = "region"
        record = fk.describe()
        assert record["to"] == "Region"
        assert record["related_name"] == "things"
        assert record["on_delete"] == "protect"
