"""Tests for read tracking and the ChangeLog journal facade."""

import pytest

from repro.fbnet.changelog import ChangeLog, ReadSet, equality_dependencies
from repro.fbnet.models import (
    Device,
    NetworkDomain,
    PeeringRouter,
    Pop,
    Region,
)
from repro.fbnet.query import And, Expr, Not, Op, Or
from repro.fbnet.store import ChangeOp

pytestmark = pytest.mark.incremental


@pytest.fixture
def pr(store, env):
    return store.create(
        PeeringRouter,
        name="pr1",
        hardware_profile=env.profiles["Router_Vendor1"],
        pop=env.pops["pop01"],
    )


class TestTrackReads:
    def test_get_records_object_dep(self, store):
        region = store.create(Region, name="r1")
        with store.track_reads() as reads:
            store.get(Region, region.id)
        assert ("Region", region.id) in reads.objects

    def test_all_records_model_dep(self, store):
        with store.track_reads() as reads:
            store.all(Region)
        assert "Region" in reads.models

    def test_indexed_filter_records_field_dep(self, store, env, pr):
        with store.track_reads() as reads:
            store.filter(PeeringRouter, Expr("name", Op.EQUAL, "pr1"))
        assert "pr1" in reads.fields["PeeringRouter"]["name"]
        assert not reads.models  # no conservative fallback needed

    def test_unanalyzable_query_falls_back_to_model(self, store):
        store.create(Region, name="r1")
        with store.track_reads() as reads:
            store.filter(Region, Expr("name", Op.STARTSWITH, "r"))
        assert "Region" in reads.models

    def test_related_records_object_dep(self, store, env, pr):
        with store.track_reads() as reads:
            pr.related("pop")
        assert ("Pop", env.pops["pop01"].id) in reads.objects

    def test_reverse_relation_records_fk_dep(self, store, env, pr):
        pop = env.pops["pop01"]
        with store.track_reads() as reads:
            list(pop.peering_routers)
        assert pop.id in reads.fields["PeeringRouter"]["pop"]

    def test_nested_trackers_both_record(self, store):
        region = store.create(Region, name="r1")
        with store.track_reads() as outer:
            with store.track_reads() as inner:
                store.get(Region, region.id)
        assert ("Region", region.id) in inner.objects
        assert ("Region", region.id) in outer.objects

    def test_no_tracking_outside_block(self, store):
        region = store.create(Region, name="r1")
        with store.track_reads() as reads:
            pass
        store.get(Region, region.id)
        assert not reads


class TestEqualityDependencies:
    def test_plain_equality(self):
        deps = equality_dependencies(Expr("name", Op.EQUAL, "x"))
        assert deps == [("name", ("x",))]

    def test_or_unions_children(self):
        deps = equality_dependencies(
            Or(Expr("device", Op.EQUAL, 1), Expr("peer_device", Op.EQUAL, 1))
        )
        assert deps == [("device", (1,)), ("peer_device", (1,))]

    def test_or_with_unanalyzable_child_bails(self):
        assert (
            equality_dependencies(
                Or(Expr("a", Op.EQUAL, 1), Expr("b", Op.GT, 2))
            )
            is None
        )

    def test_and_uses_first_analyzable_child(self):
        deps = equality_dependencies(
            And(Expr("a", Op.GT, 0), Expr("b", Op.EQUAL, 2))
        )
        assert deps == [("b", (2,))]

    def test_dotted_path_not_analyzable(self):
        assert equality_dependencies(Expr("pop.name", Op.EQUAL, "x")) is None

    def test_not_never_analyzable(self):
        assert equality_dependencies(Not(Expr("a", Op.EQUAL, 1))) is None


class TestReadSetMatching:
    def test_object_dep_matches_update(self, store, env, pr):
        reads = ReadSet()
        reads.add_object("PeeringRouter", pr.id)
        position = store.journal_position
        store.update(pr, name="pr1-renamed")
        (record,) = store.journal_since(position)
        assert reads.matches(record)

    def test_object_dep_via_abstract_base(self, store, env, pr):
        # generate_device records the device as its concrete class; a dep
        # recorded against the abstract base must still match.
        reads = ReadSet()
        reads.add_object("Device", pr.id)
        position = store.journal_position
        store.update(pr, name="pr1-renamed")
        (record,) = store.journal_since(position)
        assert reads.matches(record)

    def test_field_dep_matches_create(self, store, env):
        reads = ReadSet()
        reads.add_field("Pop", "region", (env.regions["na-east"].id,))
        position = store.journal_position
        store.create(
            Pop,
            name="pop-new",
            region=env.regions["na-east"],
            domain=NetworkDomain.POP,
        )
        (record,) = store.journal_since(position)
        assert record.op is ChangeOp.CREATE
        assert reads.matches(record)

    def test_field_dep_matches_changed_field_even_without_value(
        self, store, env, pr
    ):
        # pr moves from pop01 to pop02: a computation keyed on pop01 no
        # longer sees it, so the update must match via changed_fields even
        # though the *new* value is pop02.
        reads = ReadSet()
        reads.add_field("PeeringRouter", "pop", (env.pops["pop01"].id,))
        position = store.journal_position
        store.update(pr, pop=env.pops["pop02"])
        (record,) = store.journal_since(position)
        assert reads.matches(record)

    def test_unrelated_record_does_not_match(self, store, env, pr):
        reads = ReadSet()
        reads.add_object("PeeringRouter", pr.id)
        reads.add_field("PeeringRouter", "pop", (env.pops["pop01"].id,))
        position = store.journal_position
        store.create(Region, name="elsewhere")
        (record,) = store.journal_since(position)
        assert not reads.matches(record)

    def test_model_dep_matches_any_family_record(self, store, env, pr):
        reads = ReadSet()
        reads.add_model("Device")
        position = store.journal_position
        store.update(pr, name="pr1-renamed")
        (record,) = store.journal_since(position)
        assert reads.matches(record)

    def test_merge_combines_dependencies(self):
        left, right = ReadSet(), ReadSet()
        left.add_object("Region", 1)
        right.add_model("Pop")
        right.add_field("Device", "name", ("x",))
        left.merge(right)
        assert ("Region", 1) in left.objects
        assert "Pop" in left.models
        assert "x" in left.fields["Device"]["name"]
        assert len(left) == 3


class TestChangeLog:
    def test_position_tracks_store(self, store):
        log = ChangeLog(store)
        before = log.position
        store.create(Region, name="r1")
        assert log.position == before + 1
        assert log.position == store.journal_position

    def test_since_returns_delta(self, store):
        log = ChangeLog(store)
        store.create(Region, name="r1")
        position = log.position
        r2 = store.create(Region, name="r2")
        records = log.since(position)
        assert [r.obj_id for r in records] == [r2.id]

    def test_for_model_includes_subclasses(self, store, env, pr):
        log = ChangeLog(store)
        store.create(Region, name="rx")
        records = log.for_model(Device)
        assert {r.model for r in records} == {"PeeringRouter"}
        assert log.for_model("PeeringRouter")  # by name too

    def test_for_object(self, store, env, pr):
        log = ChangeLog(store)
        position = log.position
        store.update(pr, name="pr1-renamed")
        store.create(Region, name="rx")
        records = log.for_object(Device, pr.id, since=position)
        assert len(records) == 1
        assert records[0].op is ChangeOp.UPDATE

    def test_models_changed(self, store, env, pr):
        log = ChangeLog(store)
        position = log.position
        store.update(pr, name="pr1-renamed")
        store.create(Region, name="rx")
        assert log.models_changed(since=position) == {"PeeringRouter", "Region"}
