"""Tests for the Model metaclass, registry, and reverse relations."""

import pytest

from repro.common.errors import ValidationError
from repro.fbnet.base import Model, ModelGroup, model_registry
from repro.fbnet.models import (
    AggregatedInterface,
    BgpV6Session,
    Circuit,
    DerivedInterface,
    Device,
    Linecard,
    PeeringRouter,
    PhysicalInterface,
    Region,
    V6Prefix,
)


class TestRegistry:
    def test_concrete_models_registered(self):
        for name in ("Circuit", "PhysicalInterface", "BgpV6Session", "Region"):
            assert name in model_registry

    def test_abstract_models_not_registered(self):
        assert "Device" not in model_registry
        assert "Interface" not in model_registry
        assert "Prefix" not in model_registry

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown FBNet model"):
            model_registry.get("NoSuchModel")

    def test_group_partition(self):
        desired = model_registry.by_group(ModelGroup.DESIRED)
        derived = model_registry.by_group(ModelGroup.DERIVED)
        assert Circuit in desired
        assert DerivedInterface in derived
        assert not set(desired) & set(derived)

    def test_model_count_is_substantial(self):
        # The paper reports 250+ models; the reproduction ships the core
        # set — enough for a meaningful Figure 13 distribution.
        assert len(model_registry.all()) >= 30


class TestMeta:
    def test_inherited_fields_collected(self):
        meta = PeeringRouter._meta
        assert "name" in meta.fields  # from Device
        assert "pop" in meta.fields  # own

    def test_value_vs_fk_partition(self):
        meta = PhysicalInterface._meta
        assert "linecard" in meta.fk_fields
        assert "name" in meta.value_fields
        assert "linecard" not in meta.value_fields

    def test_group_inherited_from_abstract_base(self):
        assert PeeringRouter._meta.group is ModelGroup.DESIRED

    def test_describe_lists_fields(self):
        record = Circuit._meta.describe()
        names = {f["name"] for f in record["fields"]}
        assert {"name", "a_interface", "z_interface", "status"} <= names

    def test_concrete_without_group_rejected(self):
        with pytest.raises(TypeError, match="Meta.group"):

            class Nameless(Model):  # noqa: F811
                pass


class TestInstances:
    def test_required_field_enforced(self):
        with pytest.raises(ValidationError, match="missing required"):
            Region()

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ValidationError, match="unknown field"):
            Region(name="x", bogus=1)

    def test_defaults_applied(self):
        agg = AggregatedInterface(name="ae0", device=1, number=0)
        assert agg.mtu == 9192
        assert agg.lacp_fast is True

    def test_null_fields_default_none(self):
        circuit = Circuit(name="c1")
        assert circuit.a_interface is None

    def test_to_dict_unwraps_enums(self):
        circuit = Circuit(name="c1")
        assert Circuit(name="c2").to_dict()["status"] == "planned"
        assert circuit.to_dict()["id"] is None

    def test_repr_contains_name(self):
        assert "c1" in repr(Circuit(name="c1"))

    def test_equality_by_identity_when_unsaved(self):
        a, b = Region(name="x"), Region(name="x")
        assert a != b
        assert a == a

    def test_equality_by_id_when_saved(self, store):
        region = store.create(Region, name="x")
        same = store.get(Region, region.id)
        assert region == same
        assert hash(region) == hash(same)


class TestReverseRelations:
    def test_default_related_name(self, store, env):
        device = store.create(
            PeeringRouter,
            name="pr1",
            hardware_profile=env.profiles["Router_Vendor1"],
            pop=env.pops["pop01"],
        )
        lc = store.create(
            Linecard, device=device, slot=1,
            linecard_model=env.profiles["Router_Vendor1"].related("linecard_model"),
        )
        assert device.linecards == [lc]

    def test_templated_related_name_per_subclass(self):
        reverse = model_registry.reverse_relations(PeeringRouter)
        # The abstract BgpSession's "{model}s" template expands per
        # concrete subclass — no clash, distinct names.
        assert "bgp_v6_sessions" in reverse
        assert "bgp_v4_sessions" in reverse
        assert "peer_bgp_v6_sessions" in reverse

    def test_reverse_on_abstract_target(self):
        # V6Prefix.interface points at abstract Interface; both concrete
        # interface models inherit the reverse connection.
        assert "v6_prefixes" in model_registry.reverse_relations(AggregatedInterface)
        assert "v6_prefixes" in model_registry.reverse_relations(PhysicalInterface)

    def test_reverse_requires_saved_object(self):
        region = Region(name="x")
        with pytest.raises(AttributeError, match="saved"):
            region.pops  # noqa: B018

    def test_fk_id_attribute(self, store):
        region = store.create(Region, name="x")
        from repro.fbnet.models import NetworkDomain, Pop

        pop = store.create(Pop, name="p", region=region, domain=NetworkDomain.POP)
        assert pop.region_id == region.id
        assert pop.region == region  # descriptor resolves via the store


class TestFigure13Introspection:
    def test_related_model_counts(self):
        # Circuit relates at least to PhysicalInterface and LinkGroup.
        assert model_registry.related_model_count(Circuit) >= 2

    def test_majority_have_multiple_relations(self):
        counts = [
            model_registry.related_model_count(model)
            for model in model_registry.all()
        ]
        with_relations = sum(1 for count in counts if count >= 1)
        assert with_relations / len(counts) > 0.5
