"""Content-hash deployment skipping: unchanged devices are never touched.

Steady-state rollouts driven by incremental generation mostly carry
configs the fleet already runs; the deployer compares the candidate's
SHA-256 against the on-box running config and skips the match — no
commit, no version bump, no gate membership.
"""

import pytest

from repro import obs
from repro.configgen.generator import DeviceConfig
from repro.deploy.deployer import Deployer
from repro.deploy.guard import DeploymentGuard
from repro.deploy.phases import PhaseSpec
from repro.devices.fleet import DeviceFleet
from repro.fbnet.store import ObjectStore
from repro.simulation.clock import EventScheduler

pytestmark = pytest.mark.incremental


def config(name, mtu=9192):
    return f"hostname {name}\ninterface ae0\n mtu {mtu}\n no shutdown\n!\n"


@pytest.fixture
def rig():
    sched = EventScheduler()
    fleet = DeviceFleet(sched)
    for index in range(4):
        fleet.add_device(f"pop01.d{index}", "vendor1", role="psw")
    deployer = Deployer(fleet)
    for name in fleet.devices:
        fleet.get(name).commit(config(name))
    return fleet, deployer, sched


class TestRunningSha:
    def test_tracks_commits_and_erase(self, rig):
        import hashlib

        fleet, _, _ = rig
        device = fleet.get("pop01.d0")
        text = config("pop01.d0")
        assert device.running_sha == hashlib.sha256(text.encode()).hexdigest()
        device.commit(config("pop01.d0", mtu=1500))
        assert (
            device.running_sha
            == hashlib.sha256(device.running_config.encode()).hexdigest()
        )
        device.erase()
        assert device.running_sha == hashlib.sha256(b"").hexdigest()


class TestDeployerSkip:
    def test_unchanged_devices_are_skipped(self, rig):
        fleet, deployer, _ = rig
        versions = fleet.config_versions()
        configs = {name: config(name) for name in fleet.devices}
        report = deployer.deploy(configs, skip_unchanged=True)
        assert report.ok
        assert sorted(report.skipped) == sorted(fleet.devices)
        assert not report.succeeded
        # Skipping really is a no-op: no new config versions committed.
        assert fleet.config_versions() == versions
        assert obs.counter("deploy.skip_unchanged", op="deploy").value == 4

    def test_changed_devices_still_pushed(self, rig):
        fleet, deployer, _ = rig
        configs = {name: config(name) for name in fleet.devices}
        configs["pop01.d2"] = config("pop01.d2", mtu=9000)
        report = deployer.deploy(configs, skip_unchanged=True)
        assert report.succeeded == ["pop01.d2"]
        assert sorted(report.skipped) == ["pop01.d0", "pop01.d1", "pop01.d3"]
        assert fleet.get("pop01.d2").parsed.interfaces["ae0"].mtu == 9000

    def test_default_deploy_pushes_everything(self, rig):
        fleet, deployer, _ = rig
        versions = fleet.config_versions()
        report = deployer.deploy({name: config(name) for name in fleet.devices})
        assert sorted(report.succeeded) == sorted(fleet.devices)
        assert not report.skipped
        # Identical text still commits a new version without the flag.
        assert all(
            fleet.config_versions()[name] > versions[name]
            for name in fleet.devices
        )

    def test_device_config_objects_compare_by_sha(self, rig):
        fleet, deployer, _ = rig
        golden = DeviceConfig(
            device_name="pop01.d0", vendor="vendor1", text=config("pop01.d0")
        )
        assert deployer.unchanged("pop01.d0", golden)
        report = deployer.deploy({"pop01.d0": golden}, skip_unchanged=True)
        assert report.skipped == ["pop01.d0"]


class TestGuardedRolloutSkip:
    PHASES = [
        PhaseSpec(name="canary", percentage=25, bake_seconds=0.0),
        PhaseSpec(name="rest", percentage=100, bake_seconds=0.0),
    ]

    @pytest.fixture
    def record_store(self):
        return ObjectStore()

    @pytest.fixture
    def guard(self, rig, record_store):
        fleet, deployer, _ = rig
        return DeploymentGuard(deployer, fleet, store=record_store)

    def test_all_unchanged_rollout_is_trivial(self, rig, guard):
        fleet, _, _ = rig
        versions = fleet.config_versions()
        configs = {name: config(name) for name in fleet.devices}
        result = guard.rollout(
            configs, self.PHASES, bake_seconds=0.0, skip_unchanged=True
        )
        assert result.ok
        assert sorted(result.report.skipped) == sorted(fleet.devices)
        assert not result.report.succeeded
        assert fleet.config_versions() == versions
        counter = obs.counter("deploy.skip_unchanged", op="guarded_rollout")
        assert counter.value == 4

    def test_only_changed_subset_is_rolled_out(self, rig, guard):
        fleet, _, _ = rig
        versions = fleet.config_versions()
        configs = {name: config(name) for name in fleet.devices}
        configs["pop01.d1"] = config("pop01.d1", mtu=9000)
        result = guard.rollout(
            configs, self.PHASES, bake_seconds=0.0, skip_unchanged=True
        )
        assert result.ok
        assert result.report.succeeded == ["pop01.d1"]
        assert sorted(result.report.skipped) == [
            "pop01.d0", "pop01.d2", "pop01.d3",
        ]
        # LKG pins only cover the active subset.
        assert set(guard.lkg) == {"pop01.d1"}
        untouched = {n: v for n, v in fleet.config_versions().items()
                     if n != "pop01.d1"}
        assert untouched == {n: v for n, v in versions.items()
                            if n != "pop01.d1"}

    def test_intent_hash_covers_the_full_intent(self, rig, guard, record_store):
        """The same intent hashes identically whatever the fleet runs."""
        from repro.deploy.guard import intent_hash
        from repro.fbnet.models import DeploymentRecord

        fleet, _, _ = rig
        configs = {name: config(name) for name in fleet.devices}
        configs["pop01.d1"] = config("pop01.d1", mtu=9000)
        guard.rollout(
            configs, self.PHASES, bake_seconds=0.0, skip_unchanged=True
        )
        [record] = record_store.all(DeploymentRecord)
        assert record.intent_hash == intent_hash(configs)
