"""Regression: a failed drain push must not leave Desired state lying.

Draining is intent-first — ``drain_state`` is written to FBNet *before*
the drained config is pushed.  Before the fix, a push failure raised but
left the store claiming DRAINED for a device still carrying production
traffic (and the regenerated golden, with its BGP shutdowns, standing —
so ConfMon would forever flag the healthy device as drifted).  The
compensating transaction reverts the drain state, records a failed
``DrainEvent``, restores the golden, and counts ``deploy.drain_rollback``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.common.errors import DeploymentError
from repro.faults.plan import FaultPlan
from repro.fbnet.models import Device, DrainEvent, DrainState
from repro.fbnet.query import Expr, Op

pytestmark = pytest.mark.remediation

TARGET = "pop01.c01.psw1"


def fbnet_device(robotron, name=TARGET):
    return robotron.store.first(Device, Expr("name", Op.EQUAL, name))


def drain_events(robotron, name=TARGET):
    device = fbnet_device(robotron, name)
    return [e for e in robotron.store.all(DrainEvent) if e.device.id == device.id]


def counter_total(name):
    return sum(
        series.value
        for series in obs.registry().series()
        if series.name == name and series.kind == "counter"
    )


class TestDrainRollback:
    def test_failed_drain_push_reverts_store_state(self, pop_network):
        robotron = pop_network
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET)  # persistent failure
        with plan.installed():
            with pytest.raises(DeploymentError, match="drain-state deployment"):
                robotron.drain(TARGET)
        device = fbnet_device(robotron)
        # Desired never diverged from Actual: the write was compensated.
        assert device.drain_state is DrainState.UNDRAINED
        events = drain_events(robotron)
        assert events[-1].succeeded is False
        assert events[-1].state is DrainState.UNDRAINED
        assert "push failed" in events[-1].reason
        assert counter_total("deploy.drain_rollback") == 1

    def test_failed_drain_restores_golden_config(self, pop_network):
        robotron = pop_network
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET)
        with plan.installed():
            with pytest.raises(DeploymentError):
                robotron.drain(TARGET)
        # The regenerated golden reflects the *restored* intent — no BGP
        # shutdowns — so ConfMon does not chase a config that never landed.
        golden = robotron.generator.golden[TARGET]
        assert "shutdown" not in golden.text
        assert not robotron.confmon.check_device(TARGET)

    def test_failed_undrain_push_reverts_to_drained(self, pop_network):
        robotron = pop_network
        robotron.drain(TARGET)
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET)
        with plan.installed():
            with pytest.raises(DeploymentError):
                robotron.undrain(TARGET)
        assert fbnet_device(robotron).drain_state is DrainState.DRAINED
        assert drain_events(robotron)[-1].succeeded is False

    def test_transient_failure_retried_then_succeeds(self, pop_network):
        # One injected failure + the facade's default single attempt per
        # push is fatal; but a failure followed by manual retry converges
        # with a clean second drain (the rollback left no debris behind).
        robotron = pop_network
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET, times=1)
        with plan.installed():
            with pytest.raises(DeploymentError):
                robotron.drain(TARGET)
            result = robotron.drain(TARGET)
        assert result.state is DrainState.DRAINED
        assert fbnet_device(robotron).drain_state is DrainState.DRAINED
        assert drain_events(robotron)[-1].succeeded is True

    def test_rollback_recorded_in_flight_log(self, pop_network):
        from repro.obs import flight

        robotron = pop_network
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET)
        with plan.installed():
            with pytest.raises(DeploymentError):
                robotron.drain(TARGET)
        kinds = [e.kind for e in flight.for_device(TARGET)]
        assert "deploy.drain_rollback" in kinds


class TestDrainVerifyFailure:
    def _pin_sessions_up(self, robotron, monkeypatch):
        """Deploy lands but sessions refuse to go down (far-end hang)."""
        emulated = robotron.fleet.get(TARGET)
        real = emulated.bgp_summary

        def stuck():
            return [dict(entry, state="established") for entry in real()]

        monkeypatch.setattr(emulated, "bgp_summary", stuck)

    def test_half_drained_device_recorded(self, pop_network, monkeypatch):
        robotron = pop_network
        self._pin_sessions_up(robotron, monkeypatch)
        with pytest.raises(DeploymentError, match="still established"):
            robotron.drain(TARGET)
        # The config landed, so Desired stands — but the failure is a
        # store record and a flight event, not just a raised exception.
        assert fbnet_device(robotron).drain_state is DrainState.DRAINED
        events = drain_events(robotron)
        assert events[-1].succeeded is False
        assert "verification failed" in events[-1].reason
        assert counter_total("deploy.drain_verify_fail") == 1

    def test_verify_failure_surfaced_in_flight_log(
        self, pop_network, monkeypatch
    ):
        from repro.obs import flight

        robotron = pop_network
        self._pin_sessions_up(robotron, monkeypatch)
        with pytest.raises(DeploymentError):
            robotron.drain(TARGET)
        verdicts = [
            (e.kind, e.verdict) for e in flight.for_device(TARGET)
        ]
        assert ("deploy.drain", "verify-failed") in verdicts

    def test_no_verify_skips_session_check(self, pop_network, monkeypatch):
        robotron = pop_network
        self._pin_sessions_up(robotron, monkeypatch)
        from repro.deploy.maintenance import drain_device

        result = drain_device(
            robotron.store, robotron.fleet, robotron.generator,
            robotron.deployer, TARGET, verify=False,
        )
        assert result.state is DrainState.DRAINED
        assert counter_total("deploy.drain_verify_fail") == 0
