"""Tests for config diffing and the Figure 16 changed-line metric."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deploy.diff import count_changed_lines, is_comment, unified_diff


class TestUnifiedDiff:
    def test_shows_changes(self):
        diff = unified_diff("a\nb\n", "a\nc\n", "dev")
        assert "-b" in diff and "+c" in diff
        assert "dev.running" in diff and "dev.new" in diff

    def test_empty_for_identical(self):
        assert unified_diff("a\nb\n", "a\nb\n") == ""


class TestCountChangedLines:
    def test_identical_is_zero(self):
        assert count_changed_lines("a\nb\n", "a\nb\n") == 0

    def test_pure_addition(self):
        assert count_changed_lines("a\n", "a\nb\nc\n") == 2

    def test_pure_removal(self):
        assert count_changed_lines("a\nb\nc\n", "a\n") == 2

    def test_replacement_counts_once(self):
        # A changed line is one update, not one removal + one addition.
        assert count_changed_lines("a\nb\nc\n", "a\nB\nc\n") == 1

    def test_uneven_replacement_counts_max(self):
        assert count_changed_lines("a\nx\n", "a\ny\nz\n") == 2

    def test_comments_excluded(self):
        old = "# generated header v1\nreal line\n"
        new = "# generated header v2\nreal line\n"
        assert count_changed_lines(old, new) == 0
        assert count_changed_lines(old, new, exclude_comments=False) == 1

    def test_indented_comments_excluded(self):
        assert count_changed_lines("    # a\nx\n", "    # b\nx\n") == 0

    def test_initial_provision_counts_all_lines(self):
        config = "line1\nline2\n# comment\nline3\n"
        assert count_changed_lines("", config) == 3

    def test_is_comment(self):
        assert is_comment("# x")
        assert is_comment("   # x")
        assert not is_comment("interface ae0")


class TestDiffProperties:
    lines = st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
            min_size=1,
            max_size=8,
        ),
        max_size=30,
    )

    @settings(max_examples=60, deadline=None)
    @given(a=lines)
    def test_from_empty_counts_every_line(self, a):
        text = "\n".join(a)
        assert count_changed_lines("", text, exclude_comments=False) == len(
            text.splitlines()
        )

    @settings(max_examples=60, deadline=None)
    @given(a=lines)
    def test_self_diff_zero(self, a):
        text = "\n".join(a)
        assert count_changed_lines(text, text) == 0

    @settings(max_examples=60, deadline=None)
    @given(a=lines, b=lines)
    def test_bounded_by_total_lines(self, a, b):
        old, new = "\n".join(a), "\n".join(b)
        changed = count_changed_lines(old, new, exclude_comments=False)
        assert changed <= len(old.splitlines()) + len(new.splitlines())

    @settings(max_examples=60, deadline=None)
    @given(a=lines, b=lines)
    def test_zero_iff_equal_modulo_comments(self, a, b):
        old, new = "\n".join(a), "\n".join(b)
        changed = count_changed_lines(old, new, exclude_comments=False)
        assert (changed == 0) == (old.splitlines() == new.splitlines())
