"""Tests for the deployment engine: provisioning and the four safety modes."""

import pytest

from repro import obs
from repro.common.errors import DeploymentError
from repro.deploy.deployer import Deployer
from repro.deploy.phases import PhaseSpec
from repro.devices.fleet import DeviceFleet
from repro.simulation.clock import EventScheduler


def v1_config(name, mtu=9192):
    return f"hostname {name}\ninterface ae0\n mtu {mtu}\n no shutdown\n!\n"


@pytest.fixture
def rig():
    scheduler = EventScheduler()
    fleet = DeviceFleet(scheduler)
    for index in range(4):
        fleet.add_device(f"pop01.d{index}", "vendor1", role="psw")
    fleet.add_device("bbs01.bb1", "vendor2", role="bb")
    notifications = []
    deployer = Deployer(fleet, notifier=notifications.append)
    return fleet, deployer, notifications, scheduler


def all_v1_configs(fleet, mtu=9192):
    return {
        name: v1_config(name, mtu)
        for name, device in fleet.devices.items()
        if device.vendor == "vendor1"
    }


class TestInitialProvisioning:
    def test_erase_copy_validate(self, rig):
        fleet, deployer, _, _ = rig
        report = deployer.initial_provision(all_v1_configs(fleet))
        assert report.ok
        assert len(report.succeeded) == 4
        assert fleet.get("pop01.d0").parsed.hostname == "pop01.d0"

    def test_replaces_existing_config(self, rig):
        fleet, deployer, _, _ = rig
        fleet.get("pop01.d0").commit(v1_config("pop01.d0", mtu=1500))
        deployer.initial_provision({"pop01.d0": v1_config("pop01.d0")})
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192

    def test_hostname_mismatch_fails_validation(self, rig):
        fleet, deployer, _, _ = rig
        report = deployer.initial_provision({"pop01.d0": v1_config("wrong-name")})
        assert "pop01.d0" in report.failed

    def test_drain_check_against_fbnet(self, rig, store, env):
        from repro.fbnet.models import DrainState, NetworkSwitch

        fleet, deployer, _, _ = rig
        store.create(
            NetworkSwitch, name="pop01.d0",
            hardware_profile=env.profiles["Switch_Vendor1"],
            drain_state=DrainState.UNDRAINED,
        )
        with pytest.raises(DeploymentError, match="not drained"):
            deployer.initial_provision(
                {"pop01.d0": v1_config("pop01.d0")}, store=store
            )

    def test_counts_provisioned_lines(self, rig):
        fleet, deployer, _, _ = rig
        report = deployer.initial_provision({"pop01.d0": v1_config("pop01.d0")})
        assert report.changed_lines["pop01.d0"] == 5


class TestDryrun:
    def test_native_and_computed_diffs(self, rig):
        fleet, deployer, _, _ = rig
        fleet.get("pop01.d0").commit(v1_config("pop01.d0"))
        fleet.get("bbs01.bb1").commit("system {\n    host-name bbs01.bb1;\n}\n")
        report = deployer.dryrun(
            {
                "pop01.d0": v1_config("pop01.d0", mtu=9000),  # computed diff
                "bbs01.bb1": (
                    "system {\n    host-name bbs01.bb1;\n"
                    "    domain-name x.net;\n}\n"
                ),  # native dryrun
            }
        )
        assert report.ok
        assert "-" in report.diffs["pop01.d0"]
        assert "+    domain-name x.net;" in report.diffs["bbs01.bb1"]
        # Nothing was applied either way.
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192

    def test_native_dryrun_catches_bad_config(self, rig):
        fleet, deployer, _, _ = rig
        report = deployer.dryrun({"bbs01.bb1": "complete garbage\n"})
        assert "bbs01.bb1" in report.failed

    def test_changed_line_counts(self, rig):
        fleet, deployer, _, _ = rig
        fleet.get("pop01.d0").commit(v1_config("pop01.d0"))
        report = deployer.dryrun({"pop01.d0": v1_config("pop01.d0", mtu=9000)})
        assert report.changed_lines["pop01.d0"] == 1


class TestAtomicMode:
    def test_all_devices_updated(self, rig):
        fleet, deployer, _, _ = rig
        report = deployer.atomic_deploy(all_v1_configs(fleet, mtu=9000))
        assert report.ok
        for name in report.succeeded:
            assert fleet.get(name).parsed.interfaces["ae0"].mtu == 9000

    def test_failure_rolls_back_everything(self, rig):
        fleet, deployer, notifications, _ = rig
        deployer.deploy(all_v1_configs(fleet, mtu=9192))
        fleet.get("pop01.d2").fail_next_commits = 1
        report = deployer.atomic_deploy(all_v1_configs(fleet, mtu=9000))
        assert not report.ok
        assert "pop01.d2" in report.failed
        # Devices committed before the failure were restored.
        for name in ("pop01.d0", "pop01.d1"):
            assert fleet.get(name).parsed.interfaces["ae0"].mtu == 9192
        assert set(report.rolled_back) == {"pop01.d0", "pop01.d1"}
        assert notifications  # engineers were told

    def test_time_window_enforced(self, rig):
        fleet, deployer, _, _ = rig
        deployer.deploy(all_v1_configs(fleet))
        fleet.get("pop01.d1").commit_delay = 120.0
        report = deployer.atomic_deploy(
            all_v1_configs(fleet, mtu=9000), time_window=60.0
        )
        assert not report.ok
        assert "exceeding" in str(report.failed.get("pop01.d1", ""))
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192


class TestPhasedMode:
    def test_percentage_phases(self, rig):
        fleet, deployer, _, _ = rig
        calls = []

        def health(batch):
            calls.append(list(batch))
            return True

        report = deployer.phased_deploy(
            all_v1_configs(fleet),
            [PhaseSpec(name="canary", percentage=25),
             PhaseSpec(name="rest", percentage=100)],
            health_check=health,
        )
        assert report.ok
        assert len(calls[0]) == 1  # 25% of 4
        assert len(calls[1]) == 3

    def test_health_failure_halts_and_notifies(self, rig):
        fleet, deployer, notifications, _ = rig

        report = deployer.phased_deploy(
            all_v1_configs(fleet, mtu=9000),
            [PhaseSpec(name="canary", percentage=25),
             PhaseSpec(name="rest", percentage=100)],
            health_check=lambda batch: False,
        )
        assert len(report.succeeded) == 1
        assert len(report.skipped) == 3
        assert any("health check failed" in n for n in notifications)
        # Undeployed devices untouched.
        assert fleet.get(report.skipped[0]).running_config == ""

    def test_role_and_region_selectors(self, rig):
        fleet, deployer, _, _ = rig
        configs = all_v1_configs(fleet)
        report = deployer.phased_deploy(
            configs,
            [PhaseSpec(name="psws", role="psw"), PhaseSpec(name="all", percentage=100)],
        )
        assert report.ok

    def test_commit_failure_mid_phase(self, rig):
        fleet, deployer, notifications, _ = rig
        fleet.get("pop01.d0").fail_next_commits = 1
        report = deployer.phased_deploy(
            all_v1_configs(fleet), [PhaseSpec(name="all", percentage=100)]
        )
        assert "pop01.d0" in report.failed
        assert notifications

    def test_phase_spec_validation(self):
        with pytest.raises(DeploymentError):
            PhaseSpec(name="bad")  # no selector
        with pytest.raises(DeploymentError):
            PhaseSpec(name="bad", percentage=25, role="psw")  # two selectors
        with pytest.raises(DeploymentError):
            PhaseSpec(name="bad", percentage=0)


class TestHumanConfirmation:
    def test_verified_deploy_confirms(self, rig):
        fleet, deployer, _, scheduler = rig
        deployer.deploy(all_v1_configs(fleet))
        report = deployer.deploy_with_confirmation(
            all_v1_configs(fleet, mtu=9000),
            grace_seconds=600,
            verify=lambda: True,
        )
        assert report.ok and report.succeeded
        scheduler.run_for(1200)
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9000

    def test_unverified_deploy_reverts_immediately(self, rig):
        fleet, deployer, notifications, scheduler = rig
        deployer.deploy(all_v1_configs(fleet))
        report = deployer.deploy_with_confirmation(
            all_v1_configs(fleet, mtu=9000),
            grace_seconds=600,
            verify=lambda: False,
        )
        assert report.rolled_back
        # Actively reverted right away — no waiting for grace timers.
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192
        assert obs.counter(
            "deploy.rollback", op="deploy_with_confirmation"
        ).value == len(report.rolled_back)
        # The cancelled timers must not fire a second rollback later.
        history_len = len(fleet.get("pop01.d0").config_history)
        scheduler.run_for(601)
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192
        assert len(fleet.get("pop01.d0").config_history) == history_len
        assert notifications

    def test_crashing_verifier_reverts_immediately(self, rig):
        fleet, deployer, _, scheduler = rig
        deployer.deploy(all_v1_configs(fleet))

        def verify():
            raise RuntimeError("verification tooling broke")

        report = deployer.deploy_with_confirmation(
            all_v1_configs(fleet, mtu=9000), grace_seconds=600, verify=verify
        )
        assert report.rolled_back
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192
        scheduler.run_for(601)
        assert fleet.get("pop01.d0").parsed.interfaces["ae0"].mtu == 9192
