"""FaultPlan mechanics: triggers, determinism, global install."""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.common.errors import FaultInjectedError
from repro.faults import FaultPlan, FaultSpec
from repro.simulation.clock import Clock

pytestmark = pytest.mark.faults


class TestTriggers:
    def test_always_fires_at_probability_one(self):
        plan = FaultPlan(seed=1)
        plan.inject("rpc.call")
        assert all(plan.should_inject("rpc.call") for _ in range(5))

    def test_never_fires_at_probability_zero(self):
        plan = FaultPlan(seed=1)
        plan.inject("rpc.call", probability=0.0)
        assert not any(plan.should_inject("rpc.call") for _ in range(20))

    def test_times_caps_injections(self):
        plan = FaultPlan(seed=1)
        plan.inject("deploy.push", times=3)
        results = [plan.should_inject("deploy.push") for _ in range(10)]
        assert results == [True] * 3 + [False] * 7

    def test_after_skips_leading_calls(self):
        plan = FaultPlan(seed=1)
        plan.inject("deploy.push", after=2, times=1)
        results = [plan.should_inject("deploy.push") for _ in range(4)]
        assert results == [False, False, True, False]

    def test_label_match_filters(self):
        plan = FaultPlan(seed=1)
        plan.inject("rpc.call", service="write")
        assert not plan.should_inject("rpc.call", service="read")
        assert plan.should_inject("rpc.call", service="write")

    def test_unknown_point_never_fires(self):
        plan = FaultPlan(seed=1)
        plan.inject("rpc.call")
        assert not plan.should_inject("monitoring.collect")

    def test_time_window_requires_clock(self):
        plan = FaultPlan(seed=1)
        plan.inject("rpc.call", start=10.0, stop=20.0)
        # Unbound clock: windowed specs cannot fire.
        assert not plan.should_inject("rpc.call")
        clock = Clock()
        plan.bind_clock(clock)
        assert not plan.should_inject("rpc.call")  # before the window
        clock.advance(15.0)
        assert plan.should_inject("rpc.call")
        clock.advance(10.0)
        assert not plan.should_inject("rpc.call")  # past the window

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("x.y", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("x.y", times=0)
        with pytest.raises(ValueError):
            FaultSpec("x.y", after=-1)


class TestDeterminism:
    def run_sequence(self, seed: int) -> list[bool]:
        plan = FaultPlan(seed=seed)
        plan.inject("rpc.call", probability=0.4)
        return [plan.should_inject("rpc.call") for _ in range(50)]

    def test_same_seed_same_decisions(self, chaos_seed):
        assert self.run_sequence(chaos_seed) == self.run_sequence(chaos_seed)

    def test_different_seed_different_decisions(self):
        assert self.run_sequence(1) != self.run_sequence(2)

    def test_injections_are_recorded_with_labels(self):
        plan = FaultPlan(seed=0)
        plan.inject("deploy.push")
        plan.should_inject("deploy.push", device="psw1")
        assert plan.injections == [(None, "deploy.push", {"device": "psw1"})]
        assert plan.injected_count() == 1
        assert plan.injected_count("deploy.push") == 1
        assert plan.injected_count("rpc.call") == 0


class TestGlobalInstall:
    def test_no_plan_means_no_faults(self):
        assert not faults.should_inject("rpc.call")

    def test_installed_context_scopes_the_plan(self):
        plan = FaultPlan(seed=0)
        plan.inject("rpc.call")
        with plan.installed():
            assert faults.active_plan() is plan
            assert faults.should_inject("rpc.call")
        assert faults.active_plan() is None
        assert not faults.should_inject("rpc.call")

    def test_check_raises_fault_injected_error(self):
        plan = FaultPlan(seed=0)
        plan.inject("store.commit_listener")
        with plan.installed():
            with pytest.raises(FaultInjectedError):
                faults.check("store.commit_listener")

    def test_injection_bumps_obs_counter(self):
        plan = FaultPlan(seed=0)
        plan.inject("rpc.call", times=2)
        with plan.installed():
            for _ in range(5):
                faults.should_inject("rpc.call")
        series = obs.registry().get("faults.injected", point="rpc.call")
        assert series is not None and series.value == 2
