"""The full life cycle under a seeded fault plan (chaos acceptance).

One run takes the paper's running example — design a POP cluster,
generate configs, provision the fleet, attach monitoring — through a
multi-region FBNet deployment while the fault plan injects failures at
three distinct points (``rpc.call``, ``deploy.push``,
``monitoring.collect``).  Retry policies absorb the transient faults;
the phased-deploy circuit breaker contains the persistent ones; and the
whole run is reproducible bit-for-bit from the seed.
"""

from __future__ import annotations

import pytest

from repro import Robotron, faults, obs, seed_environment
from repro.common.errors import ReplicationError
from repro.deploy.phases import PhaseSpec
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.models import ClusterGeneration, Device
from repro.fbnet.replication import ReplicatedFBNet

pytestmark = pytest.mark.faults

COUNTERS = (
    "faults.injected",
    "rpc.retry",
    "deploy.retry",
    "deploy.circuit_open",
    "monitoring.retry",
)


def counter_total(name: str) -> float:
    return sum(
        series.value
        for series in obs.registry().series()
        if series.name == name and series.kind == "counter"
    )


def build_plan(seed: int) -> FaultPlan:
    """Three active injection points; a mix of deterministic and seeded specs."""
    plan = FaultPlan(seed=seed)
    # Two transient push failures on one ToR during turn-up: the deployer's
    # retry policy (3 attempts) must absorb them.
    plan.inject("deploy.push", device="pop01.c01.tor1", times=2)
    # Burn every read replica once so the first client sweep fails outright
    # and the RPC retry path (rpc.retry) has to recover.
    plan.inject("rpc.call", service="read", times=6)
    # After that, each read poll fails with seeded probability — this is
    # where different seeds make different runs.
    plan.inject("rpc.call", service="read", probability=0.25)
    # Two transient collection faults inside one periodic monitoring job.
    plan.inject("monitoring.collect", job="snmp-system", times=2)
    # From t=300s on, every psw push fails persistently: the later phased
    # rollout must trip its circuit breaker instead of burning the fleet.
    plan.inject("deploy.push", role="psw", start=300.0)
    return plan


def run_cycle(seed: int) -> dict:
    """One full chaos run; returns a comparable fingerprint of everything."""
    obs.reset()
    faults.uninstall()
    repl = ReplicatedFBNet(
        ["na-west", "na-east", "eu-west"],
        "na-west",
        replication_lag=0.5,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5),
    )
    robotron = Robotron(
        store=repl.master.store,
        scheduler=repl.scheduler,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0),
    )
    env = seed_environment(robotron.store)
    plan = build_plan(seed)
    robotron.install_fault_plan(plan)
    try:
        # Stage 1-3: design, generate, provision (deploy.push faults fire
        # during the undrain push and are retried away).
        cluster = robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        robotron.boot_fleet()
        provision = robotron.provision_cluster(cluster)
        robotron.run(5.0)  # let replication ship the design to the replicas

        # Remote-region clients read the design through faulty RPC.
        from repro.fbnet.models import Circuit

        expected_circuits = robotron.store.count(Circuit)
        client = repl.client("eu-west")
        reads: list[int] = []
        for _ in range(10):
            try:
                reads.append(client.count("Circuit"))
            except ReplicationError:
                reads.append(-1)

        # Stage 4: monitoring under injected collection faults.
        robotron.attach_monitoring()
        robotron.run_minutes(10)

        # A later phased rollout hits the persistent psw failures; the
        # circuit breaker must abort the phase, not the whole fleet.
        psw = [d for d in robotron.store.all(Device) if ".psw" in d.name]
        configs = robotron.generator.generate_devices(psw)
        phased = robotron.deployer.phased_deploy(
            configs,
            [PhaseSpec(name="canary", percentage=100)],
            max_failure_ratio=0.25,
        )
    finally:
        faults.uninstall()
    return {
        "injections": list(plan.injections),
        "counters": {name: counter_total(name) for name in COUNTERS},
        "provision_ok": provision.ok,
        "provision_succeeded": sorted(provision.succeeded),
        "reads": reads,
        "expected_circuits": expected_circuits,
        "phased_failed": sorted(phased.failed),
        "phased_skipped": sorted(phased.skipped),
        "phased_notifications": list(phased.notifications),
        "journal": {
            name: region.store.journal_position
            for name, region in repl.regions.items()
        },
        "clock": repl.scheduler.clock.now,
    }


class TestChaosCycle:
    def test_same_seed_reproduces_bit_for_bit(self, chaos_seed):
        assert run_cycle(chaos_seed) == run_cycle(chaos_seed)

    def test_faults_are_recovered_or_contained(self, chaos_seed):
        result = run_cycle(chaos_seed)
        # At least three distinct injection points actually fired.
        points = {point for _, point, _ in result["injections"]}
        assert {"rpc.call", "deploy.push", "monitoring.collect"} <= points
        # Transient faults were absorbed: provisioning finished despite the
        # ToR push failures, and reads succeeded despite the dead sweep.
        assert result["provision_ok"]
        assert len(result["provision_succeeded"]) == 14
        assert result["expected_circuits"] in result["reads"]
        # Persistent faults were contained: the breaker opened mid-phase
        # instead of pushing to every psw.
        assert result["counters"]["deploy.circuit_open"] == 1
        assert len(result["phased_failed"]) == 2
        assert len(result["phased_skipped"]) == 2
        assert any(
            "exceeds 25%" in message
            for message in result["phased_notifications"]
        )
        # And the telemetry shows all of it.
        assert result["counters"]["faults.injected"] >= 10
        assert result["counters"]["rpc.retry"] >= 1
        assert result["counters"]["deploy.retry"] >= 2
        assert result["counters"]["monitoring.retry"] >= 1

    def test_different_seeds_diverge(self):
        assert run_cycle(11)["injections"] != run_cycle(12)["injections"]
