"""Chaos runs are bit-for-bit identical at any pool size (tentpole gate).

The acceptance bar for deterministic parallelism: the full chaos life
cycle — the same scenario ``test_chaos_cycle`` runs — must produce the
identical fault record, fingerprint, and deterministic metric dump
whether the management plane runs serial or on a pool of four.  CI runs
this file inside the chaos matrix, once per seed per worker count.
"""

from __future__ import annotations

import json

import pytest

from repro import obs, parallel

from tests.faults.test_chaos_cycle import run_cycle

pytestmark = [pytest.mark.faults, pytest.mark.parallel]


def cycle_at(worker_count: int, seed: int) -> tuple[dict, str]:
    """One chaos cycle at a fixed pool size, plus its metric dump."""
    with parallel.workers(worker_count):
        fingerprint = run_cycle(seed)
    dump = json.dumps(obs.deterministic_dump(), sort_keys=True)
    return fingerprint, dump


class TestWorkerCountDeterminism:
    def test_serial_and_pool_of_four_identical(self, chaos_seed):
        serial_fp, serial_dump = cycle_at(1, chaos_seed)
        pooled_fp, pooled_dump = cycle_at(4, chaos_seed)
        assert pooled_fp == serial_fp
        assert pooled_dump == serial_dump

    def test_pool_size_sweep_converges_on_one_dump(self, chaos_seed):
        dumps = {cycle_at(count, chaos_seed)[1] for count in (1, 2, 8)}
        assert len(dumps) == 1

    def test_configured_pool_size_reproduces_itself(self, chaos_seed):
        # Whatever ROBOTRON_WORKERS the environment picked (the CI chaos
        # matrix sets 1 and 4), the run reproduces bit-for-bit.
        assert run_cycle(chaos_seed) == run_cycle(chaos_seed)
