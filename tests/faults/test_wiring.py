"""Injection points wired through rpc, replication, store, deploy, monitoring."""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.common.errors import ReplicationError
from repro.deploy.deployer import Deployer
from repro.deploy.phases import PhaseSpec
from repro.devices.fleet import DeviceFleet
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.replication import ReplicatedFBNet
from repro.fbnet.store import ObjectStore
from repro.monitoring.jobs import JobManager, JobSpec

pytestmark = pytest.mark.faults

REGIONS = ["na-west", "na-east", "eu-west"]


def counter_total(name: str) -> float:
    return sum(
        series.value
        for series in obs.registry().series()
        if series.name == name and series.kind == "counter"
    )


@pytest.fixture
def cluster() -> ReplicatedFBNet:
    return ReplicatedFBNet(
        REGIONS,
        "na-west",
        replication_lag=0.5,
        max_lag=5.0,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5),
    )


class TestRpcFaults:
    def test_injected_fault_redirects_to_next_replica(self, cluster):
        plan = FaultPlan(seed=3)
        plan.inject("rpc.call", service="read", times=1)
        client = cluster.client("na-west")
        with plan.installed():
            assert client.count("Region") == 0
        # One replica absorbed the fault, a sibling served the request.
        assert plan.injected_count("rpc.call") == 1
        assert counter_total("rpc.retry") == 0

    def test_sweep_failure_retries_and_recovers(self, cluster):
        total_read_replicas = sum(
            len(region.read_replicas) for region in cluster.regions.values()
        )
        plan = FaultPlan(seed=3)
        # Burn every read replica once: the first sweep fails entirely,
        # the retry sweep succeeds.
        plan.inject("rpc.call", service="read", times=total_read_replicas)
        client = cluster.client("na-west")
        with plan.installed():
            assert client.count("Region") == 0
        assert counter_total("rpc.retry") == 1
        assert plan.injected_count("rpc.call") == total_read_replicas

    def test_unrecoverable_faults_surface_replication_error(self, cluster):
        plan = FaultPlan(seed=3)
        plan.inject("rpc.call", service="write")  # forever
        client = cluster.client("na-west")
        with plan.installed():
            with pytest.raises(ReplicationError):
                client.create_objects([("Region", {"name": "rx"})])
        assert counter_total("rpc.retry") == 2  # max_attempts=3 -> 2 retries


class TestReplicationFaults:
    def test_apply_fault_is_a_lag_spike_not_data_loss(self, cluster):
        plan = FaultPlan(seed=3)
        plan.inject("replication.apply", region="eu-west", times=2)
        client = cluster.client("na-west")
        with plan.installed():
            client.create_objects([("Region", {"name": "rx"})])
            cluster.scheduler.run_for(1.0)
            # The batch is still in flight for eu-west; siblings applied it.
            assert cluster.regions["na-east"].store.journal_position == 1
            assert cluster.regions["eu-west"].store.journal_position == 0
            assert cluster.measured_lag("eu-west") > 0.5
            cluster.scheduler.run_for(10.0)
        # Redeliveries exhausted the spec; the batch finally applied.
        assert cluster.regions["eu-west"].store.journal_position == 1
        assert cluster.measured_lag("eu-west") == 0.0
        assert counter_total("replication.retry") == 2

    def test_sustained_lag_disables_db_and_recovery_resyncs(self, cluster):
        plan = FaultPlan(seed=3)
        plan.inject("replication.apply", region="eu-west", times=50)
        client = cluster.client("na-west")
        with plan.installed():
            client.create_objects([("Region", {"name": "rx"})])
            cluster.scheduler.run_for(6.0)
            assert cluster.check_health() == ["eu-west"]
            assert not cluster.regions["eu-west"].db_healthy
            # Reads from the disabled region now hit the master store.
            assert cluster.client("eu-west").count("Region") == 1
        cluster.recover_database("eu-west")
        assert cluster.regions["eu-west"].db_healthy
        assert (
            cluster.regions["eu-west"].store.journal_position
            == cluster.master.store.journal_position
        )

    def test_promotion_candidate_fault_falls_through_to_next(self, cluster):
        client = cluster.client("na-west")
        client.create_objects([("Region", {"name": "rx"})])
        cluster.scheduler.run_for(1.0)
        plan = FaultPlan(seed=3)
        plan.inject("replication.promote", region="na-east", times=1)
        cluster.fail_master()
        with plan.installed():
            # na-east is nearest but fails its promotion check.
            assert cluster.promote_nearest() == "eu-west"
        assert cluster.master_region == "eu-west"
        assert cluster.client("eu-west").count("Region") == 1


class TestStoreCommitListenerFaults:
    def test_deferred_delivery_flushes_on_next_commit(self):
        store = ObjectStore()
        batches: list[int] = []
        store.add_commit_listener(lambda records: batches.append(len(records)))
        from repro.fbnet.models import Region

        plan = FaultPlan(seed=3)
        plan.inject("store.commit_listener", times=1)
        with plan.installed():
            store.create(Region, name="r1")  # delivery deferred
            assert batches == []
            store.create(Region, name="r2")  # flushes both, in order
        assert batches == [1, 1]
        assert store.journal_position == 2  # the commits themselves held

    def test_explicit_flush_drains_backlog(self):
        store = ObjectStore()
        batches: list[int] = []
        store.add_commit_listener(lambda records: batches.append(len(records)))
        from repro.fbnet.models import Region

        plan = FaultPlan(seed=3)
        plan.inject("store.commit_listener")
        with plan.installed():
            store.create(Region, name="r1")
            assert batches == []
        store.flush_commit_listeners()
        assert batches == [1]


def build_fleet() -> DeviceFleet:
    fleet = DeviceFleet()
    for index in range(4):
        fleet.add_device(f"dev{index}", "vendor1", role="psw")
    return fleet


def configs_for(fleet: DeviceFleet) -> dict[str, str]:
    return {
        name: f"hostname {name}\ninterface ae0\n mtu 9192\n no shutdown\n!\n"
        for name in sorted(fleet.devices)
    }


class TestDeployFaults:
    def test_push_fault_without_policy_fails_device(self):
        fleet = build_fleet()
        deployer = Deployer(fleet)
        plan = FaultPlan(seed=3)
        plan.inject("deploy.push", device="dev1", times=1)
        with plan.installed():
            report = deployer.deploy(configs_for(fleet))
        assert "dev1" in report.failed
        assert "injected" in report.failed["dev1"]
        assert sorted(report.succeeded) == ["dev0", "dev2", "dev3"]

    def test_retry_policy_recovers_transient_push_faults(self):
        fleet = build_fleet()
        deployer = Deployer(
            fleet, retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0)
        )
        plan = FaultPlan(seed=3)
        plan.inject("deploy.push", device="dev1", times=2)
        with plan.installed():
            report = deployer.deploy(configs_for(fleet))
        assert report.ok
        assert counter_total("deploy.retry") == 2
        assert fleet.get("dev1").running_config.startswith("hostname dev1")

    def test_circuit_breaker_aborts_phase_past_threshold(self):
        fleet = build_fleet()
        notifications: list[str] = []
        deployer = Deployer(fleet, notifier=notifications.append)
        plan = FaultPlan(seed=3)
        plan.inject("deploy.push")  # every push fails
        with plan.installed():
            report = deployer.phased_deploy(
                configs_for(fleet),
                [PhaseSpec(name="canary", percentage=100)],
                max_failure_ratio=0.25,
            )
        # 2 of 4 failures crosses the 25% threshold; the rest is skipped.
        assert not report.ok
        assert len(report.failed) == 2
        assert len(report.skipped) == 2
        assert counter_total("deploy.circuit_open") == 1
        assert any("exceeds 25%" in message for message in notifications)

    def test_failures_below_threshold_do_not_trip_breaker(self):
        fleet = build_fleet()
        deployer = Deployer(fleet)
        plan = FaultPlan(seed=3)
        plan.inject("deploy.push", device="dev0", times=1)
        with plan.installed():
            report = deployer.phased_deploy(
                configs_for(fleet),
                [PhaseSpec(name="all", percentage=100)],
                max_failure_ratio=0.5,
            )
        assert list(report.failed) == ["dev0"]
        assert sorted(report.succeeded) == ["dev1", "dev2", "dev3"]
        assert report.skipped == []
        assert counter_total("deploy.circuit_open") == 0


class TestMonitoringFaults:
    def test_collect_fault_recovered_by_retries(self):
        fleet = build_fleet()
        deployer = Deployer(fleet)
        assert deployer.deploy(configs_for(fleet)).ok
        jobs = JobManager(
            fleet, retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0)
        )
        spec = JobSpec("sys", "snmp", "system", 60.0)
        plan = FaultPlan(seed=3)
        plan.inject("monitoring.collect", times=2)
        with plan.installed():
            records = jobs.run_job(spec)
        assert len(records) == 4  # every device eventually polled
        assert jobs.failures == []
        assert counter_total("monitoring.retry") == 2

    def test_collect_fault_without_policy_lands_in_failure_log(self):
        fleet = build_fleet()
        deployer = Deployer(fleet)
        assert deployer.deploy(configs_for(fleet)).ok
        jobs = JobManager(fleet)
        spec = JobSpec("sys", "snmp", "system", 60.0)
        plan = FaultPlan(seed=3)
        plan.inject("monitoring.collect", times=1)
        with plan.installed():
            records = jobs.run_job(spec)
        assert len(records) == 3
        assert len(jobs.failures) == 1
        assert "injected" in jobs.failures[0][2]
