"""RetryPolicy and CircuitBreaker semantics on the simulated clock."""

from __future__ import annotations

import pytest

from repro.faults import CircuitBreaker, GiveUp, RetryPolicy
from repro.simulation.clock import Clock

pytestmark = pytest.mark.faults


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, error: type[Exception] = RuntimeError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"boom {self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_first_try_success_needs_no_sleep(self):
        policy = RetryPolicy(max_attempts=3)
        slept: list[float] = []
        assert policy.execute(lambda: "ok", sleep=slept.append) == "ok"
        assert slept == []

    def test_recovers_transient_failures_with_backoff(self):
        clock = Clock()
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0)
        flaky = Flaky(2)
        result = policy.execute(flaky, sleep=clock.advance, clock=clock)
        assert result == "ok"
        assert flaky.calls == 3
        assert clock.now == pytest.approx(1.0 + 2.0)  # exponential schedule

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        flaky = Flaky(10)
        with pytest.raises(GiveUp) as excinfo:
            policy.execute(flaky)
        assert flaky.calls == 2
        assert isinstance(excinfo.value.last_error, RuntimeError)

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        flaky = Flaky(3, error=KeyError)
        with pytest.raises(KeyError):
            policy.execute(flaky, retryable=(ValueError,))
        assert flaky.calls == 1

    def test_timeout_bounds_total_simulated_elapsed(self):
        clock = Clock()
        policy = RetryPolicy(
            max_attempts=10, base_delay=4.0, multiplier=1.0, timeout=10.0
        )
        flaky = Flaky(100)
        with pytest.raises(GiveUp, match="timeout"):
            policy.execute(flaky, sleep=clock.advance, clock=clock)
        # 4s + 4s slept; a third retry would cross the 10s budget.
        assert flaky.calls == 3
        assert clock.now == pytest.approx(8.0)

    def test_backoff_capped_by_max_delay(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=5.0
        )
        assert list(policy.delays()) == [1.0, 5.0, 5.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, multiplier=1.0, jitter=0.5)
        first = list(policy.delays())
        assert first == list(policy.delays())  # same jitter_seed, same schedule
        assert all(0.5 <= d <= 1.5 for d in first)
        assert len(set(first)) > 1  # actually jittered
        shifted = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=1.0, jitter=0.5, jitter_seed=9
        )
        assert list(shifted.delays()) != first

    def test_on_retry_hook_sees_each_failure(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        seen: list[int] = []
        policy.execute(Flaky(2), on_retry=lambda i, exc: seen.append(i))
        assert seen == [0, 1]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match=r"jitter must be in \[0, 1\]"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_full_band_jitter_never_goes_negative(self):
        # jitter=1.0 is the widest legal band [0, 2*delay]; every delay
        # in the schedule must stay non-negative on the simulated clock.
        policy = RetryPolicy(max_attempts=8, base_delay=1.0, multiplier=1.0, jitter=1.0)
        delays = list(policy.delays())
        assert all(0.0 <= d <= 2.0 for d in delays)


class TestCircuitBreaker:
    def test_opens_past_threshold(self):
        breaker = CircuitBreaker(0.5)
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.open  # 1/2 is not > 0.5
        breaker.record_failure()
        assert breaker.open  # 2/3

    def test_planned_total_denominator(self):
        breaker = CircuitBreaker(0.25, total=8)
        breaker.record_failure()
        assert not breaker.open  # 1/8 of the plan
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.open  # 3/8 > 25%

    def test_min_calls_suppresses_early_open(self):
        breaker = CircuitBreaker(0.1, min_calls=5)
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.open
        breaker.record_failure()
        assert breaker.open

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(0.5, total=0)
        with pytest.raises(ValueError):
            CircuitBreaker(0.5, min_calls=0)
