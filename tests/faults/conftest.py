"""Chaos-suite fixtures: the seed comes from the environment so CI can
run the whole suite under several fixed seeds and failures reproduce
byte-for-byte (``CHAOS_SEED=20160816 pytest -m faults``)."""

from __future__ import annotations

import os

import pytest


@pytest.fixture
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "1337"))
