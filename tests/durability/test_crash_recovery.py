"""Crash-consistent recovery under seeded crash storms (the tentpole).

The acceptance bar: a seeded crash injected at any WAL crash point
during a 224-device full design build recovers to a store whose journal
and object tables are **bit-identical** to a crash-free run's state at
the last committed transaction — and the management plane (incremental
cycle, remediation) resumes on top of the recovered store.

Determinism: the workload is the seeded environment + cluster builder
(both deterministic), the crash position is drawn from
``random.Random(CHAOS_SEED)``, and "bit-identical" is asserted over the
canonical wire encoding (journal) and :func:`store_digest` (tables,
indexes, id allocator).
"""

from __future__ import annotations

import random

import pytest

from repro import Robotron, faults, obs, seed_environment
from repro.common.errors import ProcessCrash
from repro.design.cluster import build_cluster
from repro.faults.plan import FaultPlan
from repro.fbnet.durability import encode_record, store_digest
from repro.fbnet.models import (
    ClusterGeneration,
    DeploymentRecord,
    Device,
    DrainState,
    PhysicalInterface,
)
from repro.fbnet.store import ObjectStore

from tests.durability.conftest import crash_point_params

pytestmark = pytest.mark.durability

CLUSTERS = 8  # DC Gen3 clusters of 28 devices each: 224 devices total
# The builder commits whole clusters atomically (one design change = one
# WAL frame of ~1.7k records), so cadence is counted in commits.
SNAPSHOT_EVERY = 4


def build_fleet_design(store) -> None:
    """The deterministic 224-device workload (same as BENCH suites)."""
    env = seed_environment(store, datacenter_count=CLUSTERS)
    for index in range(1, CLUSTERS + 1):
        dc = f"dc{index:02d}"
        build_cluster(
            store, f"{dc}.c01", env.datacenters[dc], ClusterGeneration.DC_GEN3
        )


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """One crash-free run: its journal is the ground truth prefix."""
    obs.reset()
    faults.uninstall()
    root = tmp_path_factory.mktemp("oracle-wal")
    store = ObjectStore(name="main")
    store.attach_durability(root, snapshot_every=SNAPSHOT_EVERY)
    build_fleet_design(store)
    appends = int(obs.counter("store.wal.appends", store="main").value)
    snapshots = int(obs.counter("store.snapshot.writes", store="main").value)
    journal = [encode_record(r) for r in store.journal]
    obs.reset()
    return {
        "journal": journal,
        "records": store.journal,
        "appends": appends,
        "snapshots": snapshots,
        "digest": store_digest(store),
    }


def replay_prefix_digest(oracle, count: int) -> str:
    """Digest of a fresh store holding exactly the first ``count`` records."""
    fresh = ObjectStore(name="main")
    for record in oracle["records"][:count]:
        fresh.apply_record(record)
    last_txn = fresh._journal[-1].txn_id if fresh._journal else 0
    fresh._next_txn_id = max(fresh._next_txn_id, last_txn + 1)
    return store_digest(fresh)


@pytest.mark.parametrize("crash_point", crash_point_params())
def test_seeded_crash_recovers_bit_identical(
    tmp_path, chaos_seed, crash_point, oracle
):
    """Kill the build at a seeded instant; recovery matches the oracle."""
    rng = random.Random(chaos_seed)
    plan = FaultPlan(seed=chaos_seed)
    if crash_point == "wal.rotate_crash":
        assert oracle["snapshots"] >= 2, "workload must rotate at least twice"
        plan.inject(crash_point, after=rng.randint(0, oracle["snapshots"] - 1), times=1)
    else:
        plan.inject(
            crash_point,
            after=rng.randint(oracle["appends"] // 4, oracle["appends"] - 1),
            times=1,
        )

    store = ObjectStore(name="main")
    store.attach_durability(tmp_path, snapshot_every=SNAPSHOT_EVERY)
    faults.install(plan)
    with pytest.raises(ProcessCrash):
        build_fleet_design(store)
    faults.uninstall()

    recovered = ObjectStore.recover(tmp_path, attach=False)

    # The recovered journal is byte-for-byte a prefix of the crash-free
    # journal: nothing reordered, nothing corrupted, nothing invented.
    position = recovered.journal_position
    assert 0 < position <= len(oracle["journal"])
    assert [encode_record(r) for r in recovered.journal] == oracle["journal"][:position]

    # Tables + indexes + id allocator match a store that replayed exactly
    # that prefix — i.e. the crash-free state at the last durable commit.
    assert store_digest(recovered) == replay_prefix_digest(oracle, position)

    # Crash-point-specific positioning:
    if crash_point == "wal.append_torn":
        # The torn commit was lost entirely — the WAL and the dying
        # process's in-memory journal agree on the prefix before it.
        assert position == store.journal_position
        assert obs.counter("store.wal.torn_truncated", store="main").value == 1
    elif crash_point == "wal.append_crash":
        # The whole in-flight commit was durable but never applied in
        # memory: recovery surfaces exactly one extra transaction.
        extra = recovered.journal[store.journal_position :]
        assert extra and len({r.txn_id for r in extra}) == 1


def test_crash_free_run_recovers_to_full_oracle(tmp_path, oracle):
    """No crash at all: recovery reproduces the complete final state."""
    store = ObjectStore(name="main")
    store.attach_durability(tmp_path, snapshot_every=SNAPSHOT_EVERY)
    build_fleet_design(store)
    recovered = ObjectStore.recover(tmp_path, attach=False)
    assert [encode_record(r) for r in recovered.journal] == oracle["journal"]
    assert store_digest(recovered) == oracle["digest"]
    assert store_digest(recovered) == store_digest(store)


class TestManagementPlaneResumes:
    """After recovery the cycle engines pick up where the WAL left off."""

    def build_robotron(self, root):
        robotron = Robotron()
        robotron.attach_durability(root)
        env = seed_environment(robotron.store)
        cluster = robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        robotron.boot_fleet()
        report = robotron.provision_cluster(cluster)
        assert report.ok, report.failed
        robotron.attach_monitoring()
        return robotron

    def test_incremental_cycle_resumes_after_crash(self, tmp_path, chaos_seed):
        robotron = self.build_robotron(tmp_path)
        pif = robotron.store.all(PhysicalInterface)[0]
        owner = pif.related("agg_interface").related("device")

        # Crash on the very next commit: the mutation is durable on disk
        # but the dying process never saw it applied.
        plan = FaultPlan(seed=chaos_seed)
        plan.inject("wal.append_crash", times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            robotron.store.update(pif, description="recabled before crash")
        faults.uninstall()

        resumed = Robotron.recover(tmp_path)
        assert resumed.store.journal_position == robotron.store.journal_position + 1
        # The durable-but-unapplied mutation came back.
        recovered_pif = resumed.store.get(PhysicalInterface, pif.id)
        assert recovered_pif.description == "recabled before crash"

        resumed.boot_fleet()
        resumed.attach_monitoring()
        devices = resumed.store.all(Device)
        resumed.generator.generate_devices(devices)

        # Dirty tracking runs against the recovered journal: a clean cycle
        # is a no-op, a single mutation dirties exactly its owner device.
        clean = resumed.incremental_cycle(deploy=False, sweep=False)
        assert clean.generation.regenerated == {}
        resumed.store.update(
            resumed.store.get(PhysicalInterface, pif.id),
            description="recabled after recovery",
        )
        cycle = resumed.incremental_cycle(deploy=False, sweep=False)
        assert set(cycle.generation.regenerated) == {owner.name}

    def test_remediation_state_survives_and_reconverges(
        self, tmp_path, chaos_seed
    ):
        from repro.remediation import RemediationPolicy

        robotron = self.build_robotron(tmp_path)
        robotron.attach_remediation(
            RemediationPolicy(bake_seconds=0.0, cooldown_seconds=120.0)
        )
        names = sorted(robotron.fleet.devices)
        for name in names:
            device = robotron.fleet.get(name)
            if device.vendor == "vendor1":
                hacked = device.running_config + "interface et9/9\n no shutdown\n!\n"
            else:
                hacked = (
                    device.running_config
                    + "interfaces {\n    et9/9 {\n    }\n}\n"
                )
            device.commit(hacked)

        # Let the loop make some durable progress (five commits past plan
        # install), then die mid-loop.
        plan = FaultPlan(seed=chaos_seed)
        plan.inject("wal.append_crash", after=5, times=1)
        robotron.install_fault_plan(plan)
        with pytest.raises(ProcessCrash):
            robotron.remediation_loop(max_sweeps=30, period=60.0)
        faults.uninstall()

        crashed_journal = [encode_record(r) for r in robotron.store.journal]
        crashed_records = len(
            robotron.store.filter(DeploymentRecord, None)
        )

        resumed = Robotron.recover(tmp_path)
        recovered_journal = [encode_record(r) for r in resumed.store.journal]
        # Everything the crashed process saw committed survives (plus at
        # most the one durable-but-unapplied record).
        assert recovered_journal[: len(crashed_journal)] == crashed_journal
        assert len(recovered_journal) - len(crashed_journal) <= 1
        assert len(resumed.store.filter(DeploymentRecord, None)) >= crashed_records

        # Devices the crashed run already quarantined stay quarantined.
        drained_before = {
            d.name
            for d in resumed.store.all(Device)
            if d.drain_state is DrainState.DRAINED
        }

        resumed.boot_fleet()
        resumed.attach_monitoring()
        resumed.attach_remediation(
            RemediationPolicy(bake_seconds=0.0, cooldown_seconds=120.0)
        )
        # The fleet rebuilt from Desired state is clean; re-introduce the
        # drift on every still-active device and drive it to convergence.
        for name in sorted(resumed.fleet.devices):
            device = resumed.fleet.get(name)
            if device.vendor == "vendor1":
                hacked = device.running_config + "interface et9/9\n no shutdown\n!\n"
            else:
                hacked = (
                    device.running_config
                    + "interfaces {\n    et9/9 {\n    }\n}\n"
                )
            device.commit(hacked)
        report = resumed.remediation_loop(max_sweeps=30, period=60.0)
        assert report.converged, report.states
        assert set(report.states.values()) <= {"verified", "quarantined"}
        still_drained = {
            d.name
            for d in resumed.store.all(Device)
            if d.drain_state is DrainState.DRAINED
        }
        assert drained_before <= still_drained
