"""WAL and snapshot mechanics: append, rotate, recover, truncate."""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.common.errors import DurabilityError, ProcessCrash, TransactionError
from repro.faults.plan import FaultPlan
from repro.fbnet.durability import (
    WAL_MAGIC,
    encode_record,
    snapshot_files,
    store_digest,
    wal_segments,
)
from repro.fbnet.models import Region
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.durability


def make_writes(store, count=5, prefix="r"):
    created = []
    for i in range(count):
        created.append(store.create(Region, name=f"{prefix}{i}"))
    return created


class TestAppendAndRecover:
    def test_empty_store_recovers_empty(self, tmp_path):
        store = ObjectStore(name="main")
        store.attach_durability(tmp_path)
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert recovered.journal == []
        assert recovered.name == "main"
        assert store_digest(recovered) == store_digest(store)

    def test_journal_and_tables_round_trip(self, tmp_path, store):
        store.attach_durability(tmp_path)
        regions = make_writes(store)
        store.update(regions[1], name="renamed")
        store.delete(regions[2])

        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert [encode_record(r) for r in recovered.journal] == [
            encode_record(r) for r in store.journal
        ]
        assert store_digest(recovered) == store_digest(store)
        assert recovered.first(Region, None) is not None
        assert recovered.count(Region) == store.count(Region)

    def test_rolled_back_txns_leave_no_trace(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 2)
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.create(Region, name="doomed")
                raise RuntimeError("abort")
        make_writes(store, 1, prefix="post")
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == store_digest(store)
        assert recovered.first(Region, None) is not None
        # Committed txn ids are preserved exactly — including the gap the
        # aborted transaction left.
        assert [r.txn_id for r in recovered.journal] == [
            r.txn_id for r in store.journal
        ]

    def test_recovered_store_keeps_journaling(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 3)
        recovered = ObjectStore.recover(tmp_path)
        make_writes(recovered, 2, prefix="post")
        second = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(second) == store_digest(recovered)
        assert second.count(Region) == 5

    def test_txn_ids_never_collide_after_recovery(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 3)
        recovered = ObjectStore.recover(tmp_path)
        make_writes(recovered, 1, prefix="post")
        old_ids = {r.txn_id for r in store.journal}
        new_ids = {r.txn_id for r in recovered.journal} - old_ids
        assert new_ids and max(old_ids) < min(new_ids)


class TestAttachRules:
    def test_attach_twice_rejected(self, tmp_path, store):
        store.attach_durability(tmp_path / "a")
        with pytest.raises(TransactionError, match="already"):
            store.attach_durability(tmp_path / "b")

    def test_attach_to_populated_root_rejected(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 1)
        other = ObjectStore(name="other")
        with pytest.raises(DurabilityError, match="recover"):
            other.attach_durability(tmp_path)

    def test_attach_to_nonempty_store_snapshots_history(self, tmp_path, store):
        make_writes(store, 4)  # volatile history predates the WAL
        store.attach_durability(tmp_path)
        make_writes(store, 2, prefix="post")
        assert snapshot_files(tmp_path)
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == store_digest(store)

    def test_detach_then_recover(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 2)
        store.detach_durability()
        make_writes(store, 2, prefix="lost")  # volatile again
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert recovered.count(Region) == 2


class TestSnapshots:
    def test_auto_snapshot_cadence_rotates(self, tmp_path, store):
        store.attach_durability(tmp_path, snapshot_every=2)
        make_writes(store, 7)
        assert len(snapshot_files(tmp_path)) == 2  # older ones pruned
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == store_digest(store)

    def test_manual_snapshot_prunes_covered_segments(self, tmp_path, store):
        engine = store.attach_durability(tmp_path)
        make_writes(store, 3)
        engine.snapshot()
        make_writes(store, 3, prefix="b")
        engine.snapshot()
        make_writes(store, 3, prefix="c")
        engine.snapshot()
        # Two snapshots kept; segments below the older one pruned.
        assert len(snapshot_files(tmp_path)) == 2
        assert len(wal_segments(tmp_path)) <= 3
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == store_digest(store)

    def test_corrupt_latest_snapshot_falls_back(self, tmp_path, store):
        engine = store.attach_durability(tmp_path)
        make_writes(store, 3)
        engine.snapshot()
        make_writes(store, 3, prefix="b")
        engine.snapshot()
        latest = snapshot_files(tmp_path)[0]
        latest.write_bytes(latest.read_bytes()[:-7])  # corrupt the newest
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == store_digest(store)
        assert obs.counter("store.recovery.invalid_snapshots").value == 1


class TestTornTail:
    def test_torn_write_truncated_and_commit_lost(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 3)
        before = store_digest(store)
        plan = FaultPlan(seed=1)
        plan.inject("wal.append_torn", times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            store.create(Region, name="torn")
        faults.uninstall()

        recovered = ObjectStore.recover(tmp_path, attach=False)
        # The torn commit never happened; everything before it survives.
        assert store_digest(recovered) == before
        assert obs.counter("store.wal.torn_truncated", store="fbnet").value == 1

    def test_truncated_tail_reusable_for_appends(self, tmp_path, store):
        store.attach_durability(tmp_path)
        make_writes(store, 3)
        plan = FaultPlan(seed=1)
        plan.inject("wal.append_torn", times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            store.create(Region, name="torn")
        faults.uninstall()

        recovered = ObjectStore.recover(tmp_path)  # attaches + truncates
        make_writes(recovered, 2, prefix="post")
        second = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(second) == store_digest(recovered)
        assert second.count(Region) == 5

    def test_mid_history_corruption_raises(self, tmp_path, store):
        engine = store.attach_durability(tmp_path)
        make_writes(store, 3)
        engine.snapshot()  # rotate: first segment is no longer the tail
        make_writes(store, 3, prefix="b")
        first = wal_segments(tmp_path)[0]
        data = bytearray(first.read_bytes())
        data[len(WAL_MAGIC) + 20] ^= 0xFF
        first.write_bytes(bytes(data))
        # Corrupt non-tail segment: recovery must refuse, not guess —
        # unless a snapshot already covers the damaged range.
        for snap in snapshot_files(tmp_path):
            snap.unlink()
        with pytest.raises(DurabilityError):
            ObjectStore.recover(tmp_path, attach=False)

    def test_coverage_gap_raises(self, tmp_path, store):
        engine = store.attach_durability(tmp_path)
        make_writes(store, 3)
        engine.snapshot()
        make_writes(store, 3, prefix="b")
        # Deleting every snapshot leaves the rotated segment's base > 0
        # with nothing covering [0, base): a gap.
        for snap in snapshot_files(tmp_path):
            snap.unlink()
        wal_segments(tmp_path)[0].unlink()
        with pytest.raises(DurabilityError, match="gap"):
            ObjectStore.recover(tmp_path, attach=False)


class TestCrashPoints:
    def test_append_crash_preserves_commit(self, tmp_path, store):
        """Process dies after the WAL append: the commit IS durable."""
        store.attach_durability(tmp_path)
        make_writes(store, 3)
        plan = FaultPlan(seed=1)
        plan.inject("wal.append_crash", times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            store.create(Region, name="durable-but-not-applied")
        faults.uninstall()

        recovered = ObjectStore.recover(tmp_path, attach=False)
        # In-memory the crashed store never saw the row; on disk it exists.
        assert recovered.count(Region) == 4
        assert recovered.journal_position == store.journal_position + 1

    def test_rotate_crash_never_double_applies(self, tmp_path, store):
        """Crash between snapshot write and WAL rotation: records overlap."""
        engine = store.attach_durability(tmp_path)
        make_writes(store, 4)
        before = store_digest(store)
        plan = FaultPlan(seed=1)
        plan.inject("wal.rotate_crash", times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            engine.snapshot()
        faults.uninstall()

        # Snapshot covers [0, 4) AND the unrotated segment still holds the
        # same records; recovery must apply each exactly once.
        recovered = ObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == before
        assert recovered.count(Region) == 4
