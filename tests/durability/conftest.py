"""Durability-suite fixtures.

The chaos seed comes from the environment so CI can replay the whole
crash matrix under fixed seeds (``CHAOS_SEED=20160816 pytest -m
durability``); ``CRASH_POINT`` optionally narrows the parametrized
crash-point tests to a single WAL fault point.
"""

from __future__ import annotations

import os

import pytest

#: The three WAL crash points the chaos matrix sweeps.
CRASH_POINTS = ("wal.append_torn", "wal.append_crash", "wal.rotate_crash")


@pytest.fixture
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "1337"))


def crash_point_params() -> list[str]:
    chosen = os.environ.get("CRASH_POINT")
    if chosen:
        if chosen not in CRASH_POINTS:
            raise ValueError(f"unknown CRASH_POINT {chosen!r}")
        return [chosen]
    return list(CRASH_POINTS)
