"""Round-trip properties for the ChangeRecord wire encoding.

The WAL's correctness rests on ``decode(encode(record)) == record`` for
every value FBNet fields can hold — and on the encoding being
*deterministic* (identical records produce identical bytes), which is
what makes "byte-identical recovered journals" a meaningful assertion.
This encoding later becomes the sharding wire format, so the property
suite is deliberately broader than what today's models exercise.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fbnet.durability import (
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    frame,
    scan_frames,
)
from repro.fbnet.models import ClusterGeneration, DeviceRole
from repro.fbnet.store import ChangeOp, ChangeRecord

pytestmark = pytest.mark.durability

# Finite floats only: the store's JSONField admits no inf/nan either.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),  # full unicode, including surrogate-adjacent planes
    st.sampled_from(list(ChangeOp) + list(ClusterGeneration) + list(DeviceRole)),
)

#: Keys include ``$``-prefixed ones, which must not collide with the
#: encoder's own ``$enum`` / ``$dict`` tags.
keys = st.one_of(
    st.text(max_size=20),
    st.sampled_from(["$enum", "$value", "$dict", "$weird", "plain"]),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=12,
)

records = st.builds(
    ChangeRecord,
    txn_id=st.integers(min_value=1, max_value=10**9),
    op=st.sampled_from(list(ChangeOp)),
    model=st.text(min_size=1, max_size=30),
    obj_id=st.integers(min_value=1, max_value=10**9),
    values=st.dictionaries(st.text(max_size=20), values, max_size=5),
    changed_fields=st.lists(st.text(max_size=20), max_size=5).map(tuple),
    change_id=st.text(max_size=20),
)


@settings(max_examples=200, deadline=None)
@given(value=values)
def test_value_round_trip(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=200, deadline=None)
@given(record=records)
def test_record_round_trip(record):
    assert decode_record(encode_record(record)) == record


@settings(max_examples=100, deadline=None)
@given(record=records)
def test_encoding_is_deterministic(record):
    copy = ChangeRecord(
        txn_id=record.txn_id,
        op=record.op,
        model=record.model,
        obj_id=record.obj_id,
        values=dict(reversed(list(record.values.items()))),  # insertion order differs
        changed_fields=record.changed_fields,
        change_id=record.change_id,
    )
    assert encode_record(record) == encode_record(copy)


@settings(max_examples=100, deadline=None)
@given(record=records, cut=st.integers(min_value=0, max_value=200))
def test_torn_frame_is_detected_never_misread(record, cut):
    """Any prefix of a frame scans as torn; a whole frame scans clean."""
    data = frame(encode_record(record))
    bodies, end, torn = scan_frames(data)
    assert bodies == [encode_record(record)] and end == len(data) and not torn

    prefix = data[: min(cut, len(data) - 1)]
    bodies, end, torn = scan_frames(prefix)
    assert bodies == [] and end == 0
    # A non-empty prefix is a torn tail; an empty one is a clean end.
    assert torn == bool(prefix)


def test_enum_values_survive_nested(store):
    record = ChangeRecord(
        txn_id=1,
        op=ChangeOp.UPDATE,
        model="Cluster",
        obj_id=7,
        values={
            "generation": ClusterGeneration.DC_GEN3,
            "meta": {"$dict": "user data", "roles": [DeviceRole.RACK_SWITCH, None]},
            "note": "ünïcode ✓",
        },
        changed_fields=("generation",),
    )
    decoded = decode_record(encode_record(record))
    assert decoded == record
    assert decoded.values["generation"] is ClusterGeneration.DC_GEN3
    assert decoded.values["meta"]["roles"][0] is DeviceRole.RACK_SWITCH
