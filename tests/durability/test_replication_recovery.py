"""Replica resync modes and crash-consistent master recovery.

Covers the replication half of the tentpole: a master that dies at a
WAL crash point is recovered from disk, replicas resync *incrementally*
from their ``applied_position()`` (their journal is always a prefix of
what recovery restores, because shipping happens after the WAL append),
and the ``store.replication.resync`` counter distinguishes the modes.
"""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.common.errors import ProcessCrash
from repro.faults.plan import FaultPlan
from repro.fbnet.durability import encode_record, store_digest
from repro.fbnet.replication import ReplicatedFBNet
from repro.simulation.clock import EventScheduler

pytestmark = pytest.mark.durability

REGIONS = ["na-east", "na-west", "eu-central"]


@pytest.fixture
def cluster():
    return ReplicatedFBNet(REGIONS, "na-east", EventScheduler(), replication_lag=0.5)


def resync_count(region: str, mode: str) -> float:
    return obs.counter("store.replication.resync", region=region, mode=mode).value


class TestResyncModes:
    def test_lagging_replica_resyncs_incrementally(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "r1"})])
        cluster.scheduler.run_for(1.0)  # replicated everywhere
        cluster.disable_database("na-west")
        client.create_objects([("Region", {"name": "r2"})])
        client.create_objects([("Region", {"name": "r3"})])
        cluster.scheduler.run_for(1.0)  # arrives, lands in the backlog

        west = cluster.regions["na-west"]
        before = west.store  # prefix of the master: no rebuild needed
        cluster.recover_database("na-west")
        assert west.store is before, "incremental resync must keep the store"
        assert resync_count("na-west", "incremental") == 1
        assert resync_count("na-west", "full") == 0
        assert store_digest(west.store) == store_digest(cluster.master.store)

    def test_divergent_replica_falls_back_to_full(self, cluster):
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": "r1"})])
        cluster.scheduler.run_for(1.0)
        cluster.disable_database("na-west")
        west = cluster.regions["na-west"]
        # Poison the replica with a local write the master never saw.
        from repro.fbnet.models import Region

        west.store.create(Region, name="rogue")
        client.create_objects([("Region", {"name": "r2"})])
        cluster.scheduler.run_for(1.0)

        before = west.store
        cluster.recover_database("na-west")
        assert west.store is not before, "divergence must force a rebuild"
        assert resync_count("na-west", "full") == 1
        assert store_digest(west.store) == store_digest(cluster.master.store)

    def test_fresh_replica_resync_is_incremental_from_zero(self, cluster):
        client = cluster.client("na-east")
        cluster.disable_database("eu-central")
        client.create_objects([("Region", {"name": "r1"})])
        cluster.scheduler.run_for(1.0)
        cluster.recover_database("eu-central")
        # An empty journal is a (trivial) prefix: still incremental.
        assert resync_count("eu-central", "incremental") == 1


class TestMasterCrashRecovery:
    def seeded_writes(self, cluster, count=4):
        client = cluster.client("na-east")
        for i in range(count):
            client.create_objects([("Region", {"name": f"r{i}"})])
        cluster.scheduler.run_for(1.0)
        return client

    @pytest.mark.parametrize("crash_point", ["wal.append_torn", "wal.append_crash"])
    def test_replicas_resync_from_recovered_master(
        self, tmp_path, cluster, crash_point, chaos_seed
    ):
        cluster.attach_master_durability(tmp_path)
        client = self.seeded_writes(cluster)

        plan = FaultPlan(seed=chaos_seed)
        plan.inject(crash_point, times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            client.create_objects([("Region", {"name": "in-flight"})])
        faults.uninstall()

        recovered = cluster.recover_master(tmp_path)
        assert cluster.master.store is recovered

        # Replica journals were prefixes — every resync was incremental.
        for region in ("na-west", "eu-central"):
            assert resync_count(region, "incremental") == 1
            assert resync_count(region, "full") == 0
            replica = cluster.regions[region].store
            assert store_digest(replica) == store_digest(recovered)
            assert [encode_record(r) for r in replica.journal] == [
                encode_record(r) for r in recovered.journal
            ]

        if crash_point == "wal.append_torn":
            # The in-flight write died with the torn frame.
            assert recovered.journal_position == 4
        else:
            # The frame was durable: the write survives the crash.
            assert recovered.journal_position == 5

    def test_recovered_master_keeps_shipping(self, tmp_path, cluster, chaos_seed):
        cluster.attach_master_durability(tmp_path)
        client = self.seeded_writes(cluster)

        plan = FaultPlan(seed=chaos_seed)
        plan.inject("wal.append_crash", times=1)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            client.create_objects([("Region", {"name": "in-flight"})])
        faults.uninstall()

        cluster.recover_master(tmp_path)
        # New writes replicate from the recovered store at the right
        # positions — no double-apply, no gap.
        client.create_objects([("Region", {"name": "post-recovery"})])
        cluster.scheduler.run_for(1.0)
        for region in ("na-west", "eu-central"):
            replica = cluster.regions[region].store
            assert store_digest(replica) == store_digest(cluster.master.store)
        assert cluster.client("na-west").count("Region") == 6

    def test_recovery_journal_bit_identical_across_seeds(self, tmp_path, chaos_seed):
        """Same seed, same crash, same recovered bytes — twice."""

        def run(root):
            obs.reset()
            faults.uninstall()
            cl = ReplicatedFBNet(
                REGIONS, "na-east", EventScheduler(), replication_lag=0.5
            )
            cl.attach_master_durability(root)
            client = self.seeded_writes(cl)
            plan = FaultPlan(seed=chaos_seed)
            plan.inject("wal.append_torn", times=1)
            faults.install(plan)
            with pytest.raises(ProcessCrash):
                client.create_objects([("Region", {"name": "in-flight"})])
            faults.uninstall()
            recovered = cl.recover_master(root)
            return b"".join(encode_record(r) for r in recovered.journal)

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second
