"""End-to-end life-cycle tests: the paper's running example in full.

Design → FBNet objects → config generation → initial provisioning →
BGP convergence → monitoring → Derived models → audit (sections 2-5).
"""

import pytest

from repro import Robotron, seed_environment
from repro.fbnet.models import (
    ClusterGeneration,
    DerivedCircuit,
    DerivedDevice,
    DerivedInterface,
    OperStatus,
)


class TestPopTurnup:
    def test_the_whole_story(self):
        robotron = Robotron()
        env = seed_environment(robotron.store)

        # 1. Network design: one templated design change creates ~130
        #    interlinked objects (Figure 7's materialization).
        cluster = robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2,
            employee_id="e123", ticket_id="NET-1001",
        )
        assert len(cluster.all_devices()) == 14

        # 2-3. Config generation + initial provisioning.
        robotron.boot_fleet()
        report = robotron.provision_cluster(cluster)
        assert report.ok
        assert report.total_changed_lines() > 500  # full configs, 6 devices

        # The network actually converges: every eBGP session in Figure 2
        # reaches established because both endpoint configs agree.
        assert robotron.fleet.all_bgp_established()

        # 4. Monitoring: Derived models converge to the Desired design.
        robotron.attach_monitoring()
        robotron.run_minutes(10)
        store = robotron.store
        assert store.count(DerivedDevice) == 14
        assert store.count(DerivedCircuit) == 80
        up = [
            d for d in store.all(DerivedInterface)
            if d.oper_status is OperStatus.UP
        ]
        assert len(up) == store.count(DerivedInterface)
        assert robotron.audit().clean

    def test_two_clusters_share_pools_without_conflict(self):
        robotron = Robotron()
        env = seed_environment(robotron.store)
        robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        robotron.build_cluster(
            "pop02.c01", env.pops["pop02"], ClusterGeneration.POP_GEN2
        )
        robotron.boot_fleet()
        from repro.design.validation import validate

        assert validate(robotron.store) == []
        from repro.fbnet.models import V6Prefix

        prefixes = [p.prefix for p in robotron.store.all(V6Prefix)]
        assert len(set(prefixes)) == len(prefixes)

    def test_incremental_update_after_turnup(self, pop_network):
        """Grow one bundle by a circuit; deploy incrementally; re-converge."""
        from repro.design.portmap import PortmapChangePlan, PortmapSpec
        from repro.fbnet.api import WriteApi
        from repro.fbnet.models import Device
        from repro.fbnet.query import Expr, Op

        robotron = pop_network
        spec_args = dict(
            a_device="pop01.c01.psw1", z_device="pop01.c01.pr1",
            v6_pool="pop-p2p-v6", v4_pool="pop-p2p-v4",
        )
        api = WriteApi(robotron.store)
        api.apply_portmap_change_plan(
            PortmapChangePlan(
                old=PortmapSpec(circuits=2, **spec_args),
                new=PortmapSpec(circuits=3, **spec_args),
            )
        )
        robotron.fleet.sync_wiring(robotron.store)
        targets = [
            robotron.store.first(Device, Expr("name", Op.EQUAL, name))
            for name in ("pop01.c01.psw1", "pop01.c01.pr1")
        ]
        configs = robotron.generator.generate_devices(targets)
        report = robotron.deployer.dryrun(configs)
        assert report.ok
        # The new member interface appears in both endpoint diffs.
        assert all("et" in diff for diff in report.diffs.values())
        deploy = robotron.deployer.atomic_deploy(configs)
        assert deploy.ok
        assert robotron.fleet.all_bgp_established()
        robotron.run_minutes(10)
        assert robotron.audit().clean
