"""Growing a live network: a second cluster joins a monitored deployment."""

import pytest

from repro.fbnet.models import ClusterGeneration, DerivedDevice, Device


class TestSecondCluster:
    def test_expansion_without_cross_talk(self, pop_network):
        """Build pop02 while pop01 runs; both converge, neither disturbs
        the other, and monitoring sweeps the union."""
        robotron = pop_network
        env = robotron.env
        pop01_configs = {
            name: robotron.fleet.get(name).running_config
            for name in sorted(robotron.fleet.devices)
        }

        cluster2 = robotron.build_cluster(
            "pop02.c01", env.pops["pop02"], ClusterGeneration.POP_GEN2,
            employee_id="e2", ticket_id="NET-2",
        )
        # The new devices join the existing emulated fleet.
        for device in cluster2.all_devices():
            robotron.fleet.add_device(
                device.name, device.vendor().value, role=device.role.value
            )
        robotron.fleet.sync_wiring(robotron.store)
        report = robotron.provision_cluster(cluster2)
        assert report.ok

        # pop01's running configs were untouched by pop02's turn-up.
        for name, before in pop01_configs.items():
            assert robotron.fleet.get(name).running_config == before

        assert robotron.fleet.all_bgp_established()
        robotron.run_minutes(10)
        assert robotron.store.count(DerivedDevice) == 28  # 14 + 14
        assert robotron.audit().clean

    def test_sync_wiring_preserves_live_links(self, pop_network):
        robotron = pop_network
        assert robotron.fleet.all_bgp_established()
        robotron.fleet.sync_wiring(robotron.store)  # idempotent re-derivation
        assert robotron.fleet.all_bgp_established()

    def test_address_pools_shared_without_conflict(self, pop_network):
        from repro.design.validation import validate

        robotron = pop_network
        env = robotron.env
        robotron.build_cluster(
            "pop02.c01", env.pops["pop02"], ClusterGeneration.POP_GEN1,
        )
        assert validate(robotron.store) == []
