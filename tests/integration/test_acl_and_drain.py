"""End-to-end tests for firewall policies and drain/undrain procedures."""

import pytest

from repro.deploy.maintenance import drain_device, undrain_device
from repro.deploy.phases import PhaseSpec
from repro.devices.parsers import parse_config
from repro.fbnet.models import (
    AclAction,
    AclRule,
    Device,
    DeviceRole,
    DrainEvent,
    DrainState,
    FirewallPolicy,
)
from repro.fbnet.query import Expr, Op


@pytest.fixture
def edge_policy(pop_network):
    store = pop_network.store
    policy = store.create(
        FirewallPolicy,
        name="edge-in",
        applies_to_role=DeviceRole.PEERING_ROUTER,
        description="inbound edge filter",
    )
    store.create(
        AclRule, policy=policy, sequence=10, action=AclAction.DENY,
        protocol="tcp", source="any", destination="any", port=23,
        description="no telnet",
    )
    store.create(
        AclRule, policy=policy, sequence=20, action=AclAction.PERMIT,
        protocol="any",
    )
    return policy


class TestAclGeneration:
    def test_policy_lands_only_on_matching_role(self, pop_network, edge_policy):
        robotron = pop_network
        pr = robotron.store.first(Device, Expr("name", Op.EQUAL, "pop01.c01.pr1"))
        psw = robotron.store.first(Device, Expr("name", Op.EQUAL, "pop01.c01.psw1"))
        pr_config = robotron.generator.generate_device(pr)
        psw_config = robotron.generator.generate_device(psw)
        assert "ip access-list edge-in" in pr_config.text
        assert "edge-in" not in psw_config.text

    def test_acl_round_trips_through_vendor1_parser(self, pop_network, edge_policy):
        robotron = pop_network
        pr = robotron.store.first(Device, Expr("name", Op.EQUAL, "pop01.c01.pr1"))
        config = robotron.generator.generate_device(pr)
        parsed = parse_config(config.vendor, config.text)
        rules = parsed.acls["edge-in"]
        assert rules[0]["sequence"] == 10
        assert rules[0]["action"] == "deny"
        assert rules[0]["port"] == 23
        assert rules[1]["action"] == "permit"

    def test_acl_round_trips_through_vendor2_parser(self, pop_network):
        robotron = pop_network
        store = robotron.store
        policy = store.create(
            FirewallPolicy, name="fabric-in",
            applies_to_role=DeviceRole.AGGREGATION_SWITCH,
        )
        store.create(
            AclRule, policy=policy, sequence=5, action=AclAction.DENY,
            protocol="udp", destination="2401:db00::/32", port=161,
        )
        psw = store.first(Device, Expr("name", Op.EQUAL, "pop01.c01.psw1"))
        config = robotron.generator.generate_device(psw)
        assert "firewall {" in config.text
        parsed = parse_config(config.vendor, config.text)
        assert parsed.acls["fabric-in"][0]["port"] == 161

    def test_acl_change_deploys_in_phases(self, pop_network, edge_policy):
        """The paper's phased-mode example: firewall rule changes."""
        robotron = pop_network
        prs = [
            robotron.store.first(Device, Expr("name", Op.EQUAL, name))
            for name in ("pop01.c01.pr1", "pop01.c01.pr2")
        ]
        configs = robotron.generator.generate_devices(prs)
        report = robotron.deployer.phased_deploy(
            configs,
            [PhaseSpec(name="canary", percentage=50),
             PhaseSpec(name="rest", percentage=100)],
            health_check=lambda batch: True,
        )
        assert report.ok
        running = robotron.fleet.get("pop01.c01.pr1").running_config
        assert "seq 10 deny tcp any any eq 23" in running


class TestDrainUndrain:
    def test_drain_shuts_sessions_and_undrain_restores(self, pop_network):
        robotron = pop_network
        args = (
            robotron.store, robotron.fleet, robotron.generator, robotron.deployer,
        )
        result = drain_device(*args, "pop01.c01.pr1", reason="circuit migration")
        assert result.state is DrainState.DRAINED
        assert result.sessions_affected == 8  # v4 + v6 per PSW bundle
        # The device's sessions are down; the rest of the fabric is fine.
        pr1 = robotron.fleet.get("pop01.c01.pr1")
        assert all(e["state"] == "idle" for e in pr1.bgp_summary())
        psw1 = robotron.fleet.get("pop01.c01.psw1")
        states = {e["peer_ip"]: e["state"] for e in psw1.bgp_summary()}
        assert "active" in states.values()  # its session toward pr1
        assert "established" in states.values()  # its session toward pr2

        result = undrain_device(*args, "pop01.c01.pr1")
        assert result.state is DrainState.UNDRAINED
        assert robotron.fleet.all_bgp_established()

    def test_drain_events_audited(self, pop_network):
        robotron = pop_network
        args = (
            robotron.store, robotron.fleet, robotron.generator, robotron.deployer,
        )
        drain_device(*args, "pop01.c01.pr2", reason="linecard swap")
        events = robotron.store.all(DrainEvent)
        assert events[-1].reason == "linecard swap"
        assert events[-1].state is DrainState.DRAINED

    def test_drained_device_passes_initial_provision_gate(self, pop_network):
        """Draining is what legalizes re-provisioning (section 5.3.1)."""
        robotron = pop_network
        args = (
            robotron.store, robotron.fleet, robotron.generator, robotron.deployer,
        )
        drain_device(*args, "pop01.c01.pr1")
        device = robotron.store.first(
            Device, Expr("name", Op.EQUAL, "pop01.c01.pr1")
        )
        config = robotron.generator.generate_device(device)
        report = robotron.deployer.initial_provision(
            {"pop01.c01.pr1": config}, store=robotron.store
        )
        assert report.ok

    def test_drain_config_is_incremental(self, pop_network):
        """Draining only touches the BGP stanzas, not the whole config."""
        robotron = pop_network
        args = (
            robotron.store, robotron.fleet, robotron.generator, robotron.deployer,
        )
        result = drain_device(*args, "pop01.c01.pr1")
        assert 0 < result.config_lines_changed <= 10

    def test_unknown_device_rejected(self, pop_network):
        from repro.common.errors import DeploymentError

        robotron = pop_network
        with pytest.raises(DeploymentError, match="no device"):
            drain_device(
                robotron.store, robotron.fleet, robotron.generator,
                robotron.deployer, "ghost",
            )
