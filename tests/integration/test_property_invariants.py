"""Cross-module property-based invariants (hypothesis).

These pin down the contracts the subsystems rely on from each other:
store index consistency under arbitrary op sequences, portmap plan
reversibility, template-engine identity on literal text, and config
schema round-trips for generated devices.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configgen.engine import Template
from repro.core.seeds import seed_environment
from repro.design.portmap import PortmapChangePlan, PortmapSpec, execute_change_plan
from repro.fbnet.models import NetworkSwitch, Region
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore


class TestStoreIndexConsistency:
    """The reverse/unique indexes must agree with brute-force scans after
    any sequence of create/update/delete/rollback operations."""

    ops = st.lists(
        st.tuples(
            st.sampled_from(["create", "rename", "delete", "rollback"]),
            st.integers(0, 9),
        ),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=40, deadline=None)
    @given(ops=ops)
    def test_name_index_matches_scan(self, ops):
        store = ObjectStore()
        alive: dict[int, object] = {}
        for op, slot in ops:
            name = f"region-{slot}"
            if op == "create":
                if slot not in alive and not store.exists(
                    Region, Expr("name", Op.EQUAL, name)
                ):
                    alive[slot] = store.create(Region, name=name)
            elif op == "rename" and slot in alive:
                target = f"renamed-{slot}"
                if not store.exists(Region, Expr("name", Op.EQUAL, target)):
                    store.update(alive[slot], name=target)
            elif op == "delete" and slot in alive:
                store.delete(alive.pop(slot))
            elif op == "rollback":
                try:
                    with store.transaction():
                        tmp_name = f"tmp-{slot}"
                        if not store.exists(
                            Region, Expr("name", Op.EQUAL, tmp_name)
                        ):
                            store.create(Region, name=tmp_name)
                        raise RuntimeError("abort")
                except RuntimeError:
                    pass
        # Index-served uniqueness agrees with reality: re-creating any
        # live name fails, re-creating any dead name succeeds.
        names = {obj.name for obj in store.all(Region)}
        assert len(names) == store.count(Region)
        for obj in store.all(Region):
            with pytest.raises(Exception):
                store.create(Region, name=obj.name)
        assert store.count(Region) == len(names)  # failed creates left nothing


class TestPortmapReversibility:
    @settings(max_examples=15, deadline=None)
    @given(
        circuits=st.integers(1, 4),
        grow_to=st.integers(1, 6),
    )
    def test_create_update_delete_returns_to_baseline(self, circuits, grow_to):
        store = ObjectStore()
        env = seed_environment(store)
        for i in (1, 2):
            store.create(
                NetworkSwitch, name=f"psw{i}",
                hardware_profile=env.profiles["Switch_Vendor2"],
            )
        baseline = store.table_sizes()

        def spec(n):
            return PortmapSpec(
                a_device="psw1", z_device="psw2", circuits=n,
                v6_pool="dc-p2p-v6",
            )

        execute_change_plan(store, PortmapChangePlan(new=spec(circuits)))
        execute_change_plan(
            store, PortmapChangePlan(old=spec(circuits), new=spec(grow_to))
        )
        execute_change_plan(store, PortmapChangePlan(old=spec(grow_to)))
        # Linecards created for ports legitimately persist; everything
        # else returns exactly to baseline.
        after = {k: v for k, v in store.table_sizes().items() if k != "Linecard"}
        baseline.pop("Linecard", None)
        assert after == baseline


class TestTemplateEngineProperties:
    literal_text = st.text(
        alphabet=st.characters(blacklist_characters="{}%#", max_codepoint=1000),
        max_size=200,
    )

    @settings(max_examples=80, deadline=None)
    @given(text=literal_text)
    def test_literal_text_is_identity(self, text):
        assert Template(text).render({}) == text

    @settings(max_examples=80, deadline=None)
    @given(value=st.text(max_size=50))
    def test_variable_substitution_inserts_value_verbatim(self, value):
        rendered = Template("[{{ v }}]").render({"v": value})
        assert rendered == f"[{value}]"

    @settings(max_examples=40, deadline=None)
    @given(items=st.lists(st.integers(0, 999), max_size=20))
    def test_for_loop_emits_once_per_item(self, items):
        rendered = Template("{% for x in xs %}<{{ x }}>{% endfor %}").render(
            {"xs": items}
        )
        assert rendered == "".join(f"<{x}>" for x in items)


class TestGeneratedConfigsAlwaysParse:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_any_built_cluster_generates_parseable_configs(self, seed):
        """Fuzz over template variants: configs always parse back clean."""
        import random

        from repro.configgen.generator import ConfigGenerator
        from repro.design.cluster import build_cluster
        from repro.devices.parsers import parse_config
        from repro.fbnet.models import ClusterGeneration

        rng = random.Random(seed)
        generation = rng.choice(list(ClusterGeneration))
        store = ObjectStore()
        env = seed_environment(store)
        location = (
            env.pops["pop01"]
            if generation.value.startswith("pop")
            else env.datacenters["dc01"]
        )
        cluster = build_cluster(store, "site.c01", location, generation)
        generator = ConfigGenerator(store)
        for device in cluster.all_devices():
            config = generator.generate_device(device)
            parsed = parse_config(config.vendor, config.text)
            assert parsed.hostname == device.name
