"""End-to-end: one Robotron life cycle leaves a coherent telemetry trail.

The acceptance bar from the paper's own methodology (section 6 evaluates
Robotron from its ODS counters): a full design → generate → deploy →
monitor cycle must emit a non-empty span tree and at least ten distinct
metric series spanning all five subsystems — store, rpc, configgen,
deploy, and monitoring — all renderable via ``obs.report()`` and
serializable via ``obs.dump_json()``.
"""

import json

from repro import Robotron, obs, seed_environment
from repro.fbnet.models import ClusterGeneration
from repro.fbnet.replication import ReplicatedFBNet
from repro.fbnet.rpc import RpcRequest

SUBSYSTEMS = ("store.", "rpc.", "configgen.", "deploy.", "monitoring.")


def _run_full_cycle() -> Robotron:
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    assert report.ok, report.failed
    robotron.attach_monitoring()
    robotron.run_minutes(5)
    robotron.audit()
    # The FBNet service layer: clients in a remote region read through the
    # replicated RPC tier (and one crashed replica forces a redirect).
    fbnet = ReplicatedFBNet(["r1", "r2"], "r1", scheduler=robotron.scheduler)
    client = fbnet.client("r2")
    assert client.count("Region") == 0
    client.get("Region")
    # A replica that dies after routing selected it forces a mid-call
    # redirect to the next candidate (the paper's failover path).
    crashed, healthy = fbnet.regions["r2"].read_replicas[:2]
    crashed.crash()
    client._call(RpcRequest(service="read", method="schema"), [crashed, healthy])
    return robotron


class TestFullCycleTelemetry:
    def test_ten_distinct_series_across_all_five_subsystems(self):
        _run_full_cycle()
        names = obs.registry().names()
        assert len(names) >= 10, sorted(names)
        for prefix in SUBSYSTEMS:
            matching = {n for n in names if n.startswith(prefix)}
            assert matching, f"no {prefix}* metrics emitted: {sorted(names)}"

    def test_expected_metric_names_present(self):
        _run_full_cycle()
        names = obs.registry().names()
        expected = {
            "store.txn", "store.txn.latency", "store.txn.rows",
            "store.query", "store.query.latency", "store.rows",
            "rpc.call", "rpc.latency", "rpc.redirect", "rpc.refused",
            "configgen.render", "configgen.render.latency",
            "configgen.template_cache",
            "deploy.operation", "deploy.device",
            "monitoring.job.run", "monitoring.records",
        }
        assert expected <= names, sorted(expected - names)

    def test_counter_values_are_coherent(self):
        robotron = _run_full_cycle()
        registry = obs.registry()
        devices = len(robotron.fleet.devices)
        provisioned = registry.get(
            "deploy.device", op="initial_provision", outcome="success"
        )
        assert provisioned.value == devices
        # Every device renders at least twice: provision + undrain configs.
        renders = sum(
            s.value for s in registry.series() if s.name == "configgen.render"
        )
        assert renders >= 2 * devices
        assert registry.get("rpc.call", service="read", method="count").value == 1
        assert registry.get("rpc.redirect", service="read", region="r2").value >= 1

    def test_span_tree_is_coherent(self):
        _run_full_cycle()
        sink = obs.tracer().sink
        assert len(sink) > 0
        root_names = [span.name for span in sink.roots()]
        for name in (
            "design.build_cluster", "robotron.boot_fleet",
            "robotron.provision", "monitoring.attach", "monitoring.audit",
        ):
            assert name in root_names, root_names
        (provision,) = sink.find("robotron.provision")
        child_names = {span.name for span in sink.children(provision)}
        assert "configgen.generate" in child_names
        assert "deploy.initial_provision" in child_names
        assert all(span.status == "ok" for span in sink.spans)

    def test_spans_carry_sim_time(self):
        robotron = _run_full_cycle()
        jobs = obs.tracer().sink.find("monitoring.job")
        assert jobs, "monitoring jobs produced no spans"
        # Jobs fired across 5 simulated minutes of run time.
        starts = {span.started_sim for span in jobs}
        assert len(starts) > 1
        assert max(starts) <= robotron.scheduler.clock.now

    def test_report_and_json_render_the_cycle(self):
        _run_full_cycle()
        report = obs.report()
        for fragment in ("store.txn", "rpc.call", "configgen.render",
                         "deploy.device", "monitoring.job.run",
                         "== trace", "robotron.provision"):
            assert fragment in report
        data = json.loads(obs.dump_json())
        assert data["spans"]
        assert {c["name"] for c in data["metrics"]["counters"]} >= {
            "store.txn", "rpc.call",
        }

    def test_disabled_cycle_is_silent_but_functional(self):
        obs.disable()
        robotron = _run_full_cycle()
        assert robotron.audit() is not None
        assert obs.registry().series() == []
        assert len(obs.tracer().sink) == 0
