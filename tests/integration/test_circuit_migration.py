"""End-to-end backbone operations: circuit migration, mesh maintenance.

The paper's section 2.3/5.1.2 workflow: incremental design changes on a
live backbone, dependency cascades, config regeneration, and atomic
deployment of multi-device updates (the iBGP mesh case for atomic mode).
"""

import pytest

from repro import Robotron, seed_environment
from repro.design.backbone import BackboneDesignTool
from repro.fbnet.models import (
    BgpSessionType,
    BgpV6Session,
    Circuit,
    Device,
    LoopbackInterface,
)
from repro.fbnet.query import Expr, Op


@pytest.fixture
def backbone():
    """Three provisioned backbone routers with a 2-circuit bundle."""
    robotron = Robotron()
    env = seed_environment(robotron.store)
    tool = robotron.backbone
    with robotron.design_change(
        employee_id="e1", ticket_id="BB-1", domain="backbone"
    ):
        for index in (1, 2, 3):
            tool.add_router(
                f"bb{index}.bbs01", env.backbone_sites["bbs01"], "Router_Vendor1"
            )
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
    robotron.boot_fleet()
    devices = robotron.store.all(Device)
    report = robotron.deployer.initial_provision(
        robotron.generator.generate_devices(devices)
    )
    assert report.ok
    robotron.env = env
    return robotron


class TestCircuitMigration:
    def test_migration_end_to_end(self, backbone):
        robotron = backbone
        circuit = robotron.store.all(Circuit)[0]
        with robotron.design_change(
            employee_id="e1", ticket_id="BB-2", domain="backbone",
        ) as change:
            robotron.backbone.migrate_circuit(circuit.name, "bb3.bbs01")
        # Dependency fan-out: the change touched interfaces, prefixes,
        # a new bundle, and the circuit itself (section 5.1.2).
        assert change.summary.total >= 5

        # Re-generate and deploy to the three affected routers atomically.
        robotron.fleet.sync_wiring(robotron.store)
        targets = robotron.store.all(Device)
        configs = robotron.generator.generate_devices(targets)
        report = robotron.deployer.atomic_deploy(configs)
        assert report.ok
        # The migrated circuit's new endpoint carries traffic: its new
        # bundle interface is oper-up on both ends.
        bb3 = robotron.fleet.get("bb3.bbs01")
        agg_status = [
            bb3.interface_oper_status(name)
            for name in bb3.interface_names()
            if name.startswith("ae")
        ]
        assert agg_status and all(s == "up" for s in agg_status)

    def test_migration_diff_is_small(self, backbone):
        """Backbone changes are small (Fig 16: ~157 lines/change avg)."""
        robotron = backbone
        baseline = {
            device.name: robotron.generator.generate_device(device)
            for device in robotron.store.all(Device)
        }
        circuit = robotron.store.all(Circuit)[0]
        robotron.backbone.migrate_circuit(circuit.name, "bb3.bbs01")
        from repro.deploy.diff import count_changed_lines

        total = 0
        for device in robotron.store.all(Device):
            new = robotron.generator.generate_device(device)
            total += count_changed_lines(baseline[device.name].text, new.text)
        assert 0 < total < 200  # incremental, not a rebuild


class TestMeshMaintenance:
    def test_adding_edge_node_touches_all_others(self, backbone):
        """Adding a node to the iBGP mesh changes every other edge node's
        config — the atomic-deployment motivating case (section 5.3.2)."""
        robotron = backbone
        env = robotron.env
        tool = robotron.backbone

        def make_edge(name):
            from repro.fbnet.models import PeeringRouter

            device = robotron.store.create(
                PeeringRouter, name=name,
                hardware_profile=env.profiles["Router_Vendor1"],
                pop=env.pops["pop01"],
            )
            loopback = robotron.store.create(
                LoopbackInterface, name="lo0", device=device, unit=0
            )
            prefix = tool._loopback_allocator().assign_host(loopback)
            robotron.store.update(
                device, loopback_v6=prefix.prefix.split("/")[0]
            )
            return device

        edges = [make_edge(f"pr{i}.pop01") for i in range(3)]
        for edge in edges:
            tool.join_mesh(edge)
        baseline = {
            e.name: robotron.generator.generate_device(e).text for e in edges
        }

        newcomer = make_edge("pr3.pop01")
        tool.join_mesh(newcomer)
        # Every existing edge node's config gained a neighbor statement.
        for edge in edges:
            new_text = robotron.generator.generate_device(edge).text
            assert new_text != baseline[edge.name]
            assert newcomer.loopback_v6 in new_text

    def test_atomic_mesh_update_rolls_back_together(self, backbone):
        robotron = backbone
        env = robotron.env
        tool = robotron.backbone
        # Give the three BBs loopbacks and an iBGP mesh via session objects
        # directly (BBs as edge for this test's purposes).
        devices = robotron.store.all(Device)
        for a in devices:
            for z in devices:
                if a.id < z.id:
                    robotron.store.create(
                        BgpV6Session,
                        device=a, peer_device=z,
                        session_type=BgpSessionType.IBGP,
                        local_asn=32934, peer_asn=32934,
                        local_ip=a.loopback_v6, peer_ip=z.loopback_v6,
                    )
        configs = robotron.generator.generate_devices(devices)
        robotron.fleet.get("bb3.bbs01").fail_next_commits = 1
        before = {
            name: robotron.fleet.get(name).running_config
            for name in ("bb1.bbs01", "bb2.bbs01")
        }
        report = robotron.deployer.atomic_deploy(configs)
        assert not report.ok
        for name, text in before.items():
            assert robotron.fleet.get(name).running_config == text
