"""End-to-end change propagation: FBNet edit → regenerate → deploy → sweep.

``Robotron.incremental_cycle`` is the steady-state loop: after a design
mutation it must touch exactly the affected devices — regenerate their
configs, push them (content-hash skipping byte-identical ones), and point
the drift sweep at them — while the rest of the fleet is left alone.
"""

import pytest

from repro import obs
from repro.fbnet.models import (
    AggregatedInterface,
    Device,
    DrainState,
    PhysicalInterface,
    Region,
)

pytestmark = pytest.mark.incremental


def fleet_versions(robotron):
    return dict(robotron.fleet.config_versions())


class TestIncrementalCycle:
    def test_noop_cycle_changes_nothing(self, pop_network):
        robotron = pop_network
        versions = fleet_versions(robotron)
        report = robotron.incremental_cycle()
        assert report.ok
        assert not report.generation.regenerated
        assert report.deploy is None
        assert not report.discrepancies
        assert fleet_versions(robotron) == versions

    def test_single_change_propagates_to_one_device(self, pop_network):
        robotron = pop_network
        store = robotron.store
        pif = store.all(PhysicalInterface)[0]
        owner = store.get(AggregatedInterface, pif.agg_interface_id).related(
            "device"
        )
        versions = fleet_versions(robotron)
        store.update(pif, description="recabled to rack 7")

        report = robotron.incremental_cycle()
        assert report.ok
        assert set(report.generation.regenerated) == {owner.name}
        # Deployment saw only that device; the push either committed the
        # new text or content-hash-skipped a byte-identical one.
        assert report.deploy is not None
        assert set(report.deploy.succeeded) | set(report.deploy.skipped) == {
            owner.name
        }
        # The rest of the fleet was never touched.
        for name, version in fleet_versions(robotron).items():
            if name != owner.name:
                assert version == versions[name]
        # Running config converged to the fresh golden.
        golden = robotron.generator.golden[owner.name]
        assert robotron.fleet.get(owner.name).running_config == golden.text
        assert not report.discrepancies

    def test_drain_change_converges_and_second_cycle_is_noop(self, pop_network):
        robotron = pop_network
        device = robotron.cluster.devices["PR"][0]
        robotron.store.update(device, drain_state=DrainState.DRAINING)

        first = robotron.incremental_cycle()
        assert first.ok
        assert set(first.generation.regenerated) == {device.name}
        assert first.deploy is not None and first.deploy.ok

        second = robotron.incremental_cycle()
        assert second.ok
        assert not second.generation.regenerated
        assert second.deploy is None

    def test_unrelated_change_is_a_cheap_noop(self, pop_network):
        robotron = pop_network
        robotron.store.create(Region, name="antarctica")
        report = robotron.incremental_cycle()
        assert not report.generation.regenerated
        assert report.deploy is None
        assert obs.counter("configgen.regenerated").value == 0

    def test_sweep_catches_drift_on_the_changed_device(self, pop_network):
        robotron = pop_network
        device_obj = robotron.cluster.devices["PSW"][0]
        robotron.store.update(device_obj, drain_state=DrainState.DRAINING)
        # An out-of-band edit lands between generation and the sweep: the
        # deploy overwrites it, so sabotage the device to reject commits
        # and leave it drifted.
        emulated = robotron.fleet.get(device_obj.name)
        emulated.fail_next_commits = 1
        report = robotron.incremental_cycle()
        assert not report.ok
        assert device_obj.name in report.deploy.failed
        assert [d.device for d in report.discrepancies] == [device_obj.name]

    def test_full_cycle_equivalence_with_generate_devices(self, pop_network):
        """After a cycle, golden matches a from-scratch full generation."""
        from repro.configgen.generator import ConfigGenerator

        robotron = pop_network
        store = robotron.store
        agg = store.all(AggregatedInterface)[0]
        store.update(agg, mtu=4200)
        robotron.incremental_cycle()
        fresh = ConfigGenerator(store, robotron.generator.configerator)
        fresh.generate_devices(store.all(Device))
        assert {
            name: config.text for name, config in fresh.golden.items()
        } == {
            name: config.text
            for name, config in robotron.generator.golden.items()
        }
