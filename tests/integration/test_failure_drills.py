"""Failure drills: the war stories of the paper's section 8.

* Stale configs — a config generated before a later design change gets
  deployed and breaks the design; Robotron's staleness check catches it.
* Automation fallbacks — an engineer bypasses Robotron; config monitoring
  detects the drift and restores the golden config.
* Database failover during operation.
"""

import pytest

from repro import Robotron, seed_environment
from repro.fbnet.models import ClusterGeneration, Rack, RackProfile
from repro.fbnet.query import Expr, Op


class TestStaleConfigs:
    def test_stale_config_detected_before_deploy(self, pop_network):
        """Engineer A generates, Engineer B changes the design, A deploys.

        The paper's rack-profile story: the deployment of A's stale config
        dropped racks.  Our generator stamps the design position so the
        deployer can warn.
        """
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        fbnet_device = robotron.store.first(
            __import__("repro.fbnet.models", fromlist=["Device"]).Device,
            Expr("name", Op.EQUAL, device.name),
        )
        # Engineer A generates but does not deploy.
        config_a = robotron.generator.generate_device(fbnet_device)
        assert not robotron.generator.is_stale(config_a)

        # Engineer B makes a design change days later.
        profile = robotron.store.create(
            RackProfile, name="new-web-rack", downlinks_per_rack=2
        )
        cluster = fbnet_device.related("cluster")
        robotron.store.create(Rack, name="rack-9", cluster=cluster, rack_profile=profile)

        # A's config is now stale — the check the paper wished for.
        assert robotron.generator.is_stale(config_a)

        # Regenerating clears the staleness.
        config_fresh = robotron.generator.generate_device(fbnet_device)
        assert not robotron.generator.is_stale(config_fresh)


class TestAutomationFallbacks:
    def test_manual_emergency_change_detected_and_curtailed(self, pop_network):
        """Manual changes are not blocked, but config monitoring curtails
        them: detect within the next collection, then restore golden."""
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.pr1")
        emergency = device.running_config + "interface et7/7\n shutdown\n!\n"
        device.commit(emergency)  # engineer logs in directly

        # Detection was immediate (config-change syslog -> ad-hoc collect).
        assert robotron.confmon.discrepancies
        latest = robotron.confmon.discrepancies[-1]
        assert latest.device == "pop01.c01.pr1"

        # The emergency config was backed up before restoration, so the
        # engineer's change is recoverable.
        assert "et7/7" in robotron.confmon.backup.latest("pop01.c01.pr1")

        robotron.confmon.restore_golden("pop01.c01.pr1")
        assert device.running_config == robotron.generator.golden[
            "pop01.c01.pr1"
        ].text


class TestCrashRecovery:
    def test_device_crash_and_reboot_reconverges(self, pop_network):
        robotron = pop_network
        device = robotron.fleet.get("pop01.c01.psw1")
        device.crash()
        assert not robotron.fleet.all_bgp_established()
        robotron.run_minutes(5)
        device.boot()
        # Configs persist across reboot; sessions re-establish.
        assert robotron.fleet.all_bgp_established()

    def test_monitoring_survives_crashed_device(self, pop_network):
        robotron = pop_network
        robotron.fleet.get("pop01.c01.psw1").crash()
        robotron.run_minutes(10)  # jobs keep polling the rest
        assert robotron.jobs.engines["snmp"].events > 0
        assert any(
            device == "pop01.c01.psw1"
            for _job, device, _err in robotron.jobs.failures
        )


class TestDatabaseFailover:
    def test_design_work_continues_after_promotion(self):
        """FBNet keeps serving design reads/writes through a master loss."""
        from repro.fbnet.replication import ReplicatedFBNet
        from repro.simulation.clock import EventScheduler

        scheduler = EventScheduler()
        cluster = ReplicatedFBNet(
            ["na-east", "na-west", "eu-central"], "na-east", scheduler
        )
        client = cluster.client("eu-central")
        client.create_objects([("Region", {"name": "r1"})])
        scheduler.run_for(1.0)
        cluster.fail_master()
        cluster.promote_nearest()
        client.create_objects([("Region", {"name": "r2"})])
        scheduler.run_for(1.0)
        assert client.count("Region") == 2
        # Reads never stopped being served locally.
        assert client.count("Region", consistency="read-after-write") == 2
