"""Tests for the shared utility helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.util import (
    camel_to_snake,
    chunked,
    format_table,
    full_mesh,
    mean,
    median,
    pairwise_circular,
    percentile,
)


class TestCamelToSnake:
    @pytest.mark.parametrize(
        ("camel", "snake"),
        [
            ("PhysicalInterface", "physical_interface"),
            ("BgpV6Session", "bgp_v6_session"),
            ("Pop", "pop"),
            ("LinkGroup", "link_group"),
            ("HTTPServer", "http_server"),
        ],
    )
    def test_cases(self, camel, snake):
        assert camel_to_snake(camel) == snake


class TestChunked:
    def test_even_and_remainder(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @settings(max_examples=30, deadline=None)
    @given(items=st.lists(st.integers(), max_size=50), size=st.integers(1, 10))
    def test_concat_is_identity(self, items, size):
        flattened = [x for chunk in chunked(items, size) for x in chunk]
        assert flattened == items


class TestMeshHelpers:
    def test_full_mesh_pair_count(self):
        assert len(list(full_mesh([1, 2, 3, 4]))) == 6

    def test_pairwise_circular(self):
        assert list(pairwise_circular([1, 2, 3])) == [(1, 2), (2, 3), (3, 1)]
        assert list(pairwise_circular([])) == []


class TestStats:
    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_percentile_histogram_edge_cases(self):
        # The repro.obs.Histogram reservoir leans on these exact edges:
        # a single sample must answer every percentile, and pct=100 must
        # be the maximum even for tiny reservoirs.
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 50) == 42.0
        assert percentile([42.0], 100) == 42.0
        assert percentile([1.0, 2.0], 100) == 2.0
        assert percentile([1.0, 2.0], 99.999) == 2.0

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(), min_size=1, max_size=80))
    def test_percentile_within_range(self, values):
        ordered = sorted(values)
        for pct in (0, 25, 50, 75, 100):
            assert ordered[0] <= percentile(ordered, pct) <= ordered[-1]


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("a", "bb"), [(1, "xx"), (100, "y")])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert lines[2].startswith("1 ")
        assert lines[3].startswith("100")
