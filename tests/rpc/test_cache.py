"""ReadCache unit behavior: keying, hit/miss, precise invalidation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.common.errors import RpcError
from repro.fbnet.api import ReadApi
from repro.fbnet.models import NetworkSwitch, Region
from repro.fbnet.models.enums import DrainState
from repro.fbnet.query import Expr, Op
from repro.fbnet.rpc import (
    CachingReadService,
    ReadCache,
    RpcRequest,
    RpcResponse,
    ServiceReplica,
)
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.rpc


@pytest.fixture
def regions(store):
    return [store.create(Region, name=f"r{i}") for i in range(3)]


class TestHitMiss:
    def test_second_read_is_a_hit_with_identical_payload(self, store, regions):
        cache = ReadCache(store)
        query = Expr("name", Op.EQUAL, "r1")
        first = cache.get("Region", ["name"], query)
        second = cache.get("Region", ["name"], query)
        assert first == second == [{"id": regions[1].id, "name": "r1"}]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_wire_and_live_query_share_one_entry(self, store, regions):
        cache = ReadCache(store)
        query = Expr("name", Op.EQUAL, "r1")
        cache.get("Region", ["name"], query)
        cache.get("Region", ["name"], query.to_wire())
        assert cache.stats() == {
            "hits": 1.0, "misses": 1.0, "invalidations": 0.0,
            "stale_evictions": 0.0, "entries": 1.0,
        }

    def test_distinct_projections_are_distinct_entries(self, store, regions):
        cache = ReadCache(store)
        cache.get("Region", ["name"], None)
        cache.get("Region", None, None)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_count_is_cached_too(self, store, regions):
        cache = ReadCache(store)
        assert cache.count("Region") == 3
        assert cache.count("Region") == 3
        assert cache.stats()["hits"] == 1
        store.create(Region, name="r9")
        assert cache.count("Region") == 4

    def test_counters_surface_in_obs_report(self, store, regions):
        cache = ReadCache(store, name="front")
        cache.get("Region", ["name"], None)
        cache.get("Region", ["name"], None)
        report = obs.report()
        assert "rpc.cache.hits" in report
        assert "rpc.cache.misses" in report
        assert "cache=front" in report


class TestInvalidation:
    def test_mutated_dependency_evicts_exactly_that_entry(self, store, env):
        profile = env.profiles["Switch_Vendor2"]
        psw1 = store.create(NetworkSwitch, name="psw1", hardware_profile=profile)
        store.create(NetworkSwitch, name="psw2", hardware_profile=profile)
        cache = ReadCache(store)
        hot = Expr("name", Op.EQUAL, "psw1")
        cold = Expr("name", Op.EQUAL, "psw2")
        first = cache.get("NetworkSwitch", ["name", "drain_state"], hot)
        cache.get("NetworkSwitch", ["name", "drain_state"], cold)
        store.update(psw1, drain_state=DrainState.UNDRAINED)
        refreshed = cache.get("NetworkSwitch", ["name", "drain_state"], hot)
        assert first[0]["drain_state"] == DrainState.DRAINED.value
        assert refreshed[0]["drain_state"] == DrainState.UNDRAINED.value
        # The psw2 entry survived: this read is a hit, not a refill.
        cache.get("NetworkSwitch", ["name", "drain_state"], cold)
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 3

    def test_changed_key_field_evicts_conservatively(self, store, regions):
        # Renaming r1 changes the `name` field itself, so *every* entry
        # keyed on a name equality may have matched the old value and is
        # evicted — the PR 4 superset guarantee.
        cache = ReadCache(store)
        cache.get("Region", ["name"], Expr("name", Op.EQUAL, "r1"))
        cache.get("Region", ["name"], Expr("name", Op.EQUAL, "r2"))
        store.update(regions[1], name="r1-renamed")
        assert cache.get("Region", ["name"], Expr("name", Op.EQUAL, "r1")) == []
        assert cache.stats()["invalidations"] == 2

    def test_unrelated_model_does_not_evict(self, store, env, regions):
        cache = ReadCache(store)
        query = Expr("name", Op.EQUAL, "r1")
        cache.get("Region", ["name"], query)
        store.create(
            NetworkSwitch, name="psw9", hardware_profile=env.profiles["Switch_Vendor2"]
        )
        cache.get("Region", ["name"], query)
        assert cache.stats()["invalidations"] == 0
        assert cache.stats()["hits"] == 1

    def test_scan_entry_evicted_by_matching_create(self, store, regions):
        cache = ReadCache(store)
        assert len(cache.get("Region", ["name"], None)) == 3
        store.create(Region, name="r3")
        assert len(cache.get("Region", ["name"], None)) == 4
        assert cache.stats()["invalidations"] == 1

    def test_family_dependency_concrete_mutation_evicts_abstract_scan(
        self, store, env
    ):
        device = store.create(
            NetworkSwitch,
            name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        cache = ReadCache(store)
        scan = Expr("drain_state", Op.EQUAL, DrainState.DRAINED.value)
        assert len(cache.get("Device", ["name"], scan)) == 1
        store.update(device, drain_state=DrainState.UNDRAINED)
        assert cache.get("Device", ["name"], scan) == []
        assert cache.stats()["invalidations"] == 1

    def test_clear_drops_everything(self, store, regions):
        cache = ReadCache(store)
        cache.get("Region", ["name"], None)
        cache.clear()
        assert len(cache) == 0
        cache.get("Region", ["name"], None)
        assert cache.stats()["misses"] == 2


class TestStaleOnArrival:
    def test_fill_racing_a_commit_is_not_admitted(self, store, regions):
        cache = ReadCache(store)
        positions = dict(cache.positions())
        payload, read_set = cache._compute(
            "get", "Region", ("name",), Expr("name", Op.EQUAL, "r1").to_wire()
        )
        # A commit lands between the fill's position snapshot and its
        # admission — the payload may predate the mutation.
        store.update(regions[1], name="r1-racing")
        assert cache._admit("some-key", payload, read_set, positions) is False
        assert cache.stats()["stale_evictions"] == 1
        assert len(cache) == 0

    def test_serve_retries_and_returns_fresh_payload(self, store, regions):
        cache = ReadCache(store)
        query = Expr("name", Op.EQUAL, "r1")
        fresh = cache.get("Region", ["name"], query)
        assert fresh == ReadApi(store).get(
            "Region", ("name",), Expr("name", Op.EQUAL, "r1")
        )


class TestMultiGet:
    def test_duplicates_share_one_fill(self, store, regions):
        cache = ReadCache(store)
        spec = ("Region", ("name",), Expr("name", Op.EQUAL, "r1"))
        results = cache.multi_get([spec, spec, spec])
        assert results[0] == results[1] == results[2]
        stats = cache.stats()
        # Each occurrence counts a miss, but only one entry was filled.
        assert stats["misses"] == 3
        assert stats["entries"] == 1

    def test_mixed_hits_and_misses(self, store, regions):
        cache = ReadCache(store)
        warm = ("Region", ("name",), Expr("name", Op.EQUAL, "r0"))
        cache.get(*warm)
        results = cache.multi_get(
            [warm, ("Region", ("name",), Expr("name", Op.EQUAL, "r2"))]
        )
        assert results[0] == [{"id": regions[0].id, "name": "r0"}]
        assert results[1] == [{"id": regions[2].id, "name": "r2"}]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 2

    def test_large_batch_fans_out_identically_to_serial(self, store, regions):
        from repro import parallel

        specs = [
            ("Region", ("name",), Expr("name", Op.EQUAL, f"r{i}").to_wire())
            for i in range(8)
        ]
        with parallel.workers(1):
            serial_cache = ReadCache(store, name="serial")
            serial = serial_cache.multi_get(specs)
            serial_stats = serial_cache.stats()
        with parallel.workers(4):
            pooled_cache = ReadCache(store, name="pooled")
            pooled = pooled_cache.multi_get(specs)
            pooled_stats = pooled_cache.stats()
        assert pooled == serial
        assert pooled_stats == serial_stats

    def test_results_come_back_in_request_order(self, store, regions):
        cache = ReadCache(store)
        specs = [
            ("Region", ("name",), Expr("name", Op.EQUAL, name).to_wire())
            for name in ("r2", "r0", "r1")
        ]
        results = cache.multi_get(specs)
        assert [rows[0]["name"] for rows in results] == ["r2", "r0", "r1"]


class TestServiceIntegration:
    def _request(self, method: str, args: dict) -> bytes:
        return RpcRequest(service="read", method=method, args=args).to_wire()

    def test_cached_replica_serves_wire_requests(self, store, regions):
        cache = ReadCache(store)
        replica = ServiceReplica("r-read-0", "na-east", "read", store, cache=cache)
        wire = self._request(
            "get",
            {"model": "Region", "fields": ["name"],
             "query": Expr("name", Op.EQUAL, "r1").to_wire()},
        )
        first = RpcResponse.from_wire(replica.handle(wire)).result()
        second = RpcResponse.from_wire(replica.handle(wire)).result()
        assert first == second == [{"id": regions[1].id, "name": "r1"}]
        assert cache.stats()["hits"] == 1

    def test_multi_get_over_the_wire_cached_and_uncached(self, store, regions):
        specs = [
            {"model": "Region", "fields": ["name"],
             "query": Expr("name", Op.EQUAL, "r0").to_wire()},
            {"model": "Region", "fields": ["name"], "query": None},
        ]
        plain = ServiceReplica("p", "na-east", "read", store)
        cached = ServiceReplica(
            "c", "na-east", "read", store, cache=ReadCache(store)
        )
        wire = self._request("multi_get", {"specs": specs})
        uncached = RpcResponse.from_wire(plain.handle(wire)).result()
        through_cache = RpcResponse.from_wire(cached.handle(wire)).result()
        assert through_cache == uncached

    def test_schema_passes_through_the_cache_service(self, store):
        service = CachingReadService(store)
        assert service.dispatch("schema", {}) == ReadApi(store).schema()

    def test_cache_must_match_store(self, store):
        other = ObjectStore(name="other")
        with pytest.raises(RpcError):
            CachingReadService(store, ReadCache(other))

    def test_write_replica_rejects_cache(self, store):
        with pytest.raises(ValueError):
            ServiceReplica("w", "na-east", "write", store, cache=ReadCache(store))

    def test_retarget_rebuilds_the_cache_over_the_new_store(self, store, regions):
        cache = ReadCache(store, name="front")
        replica = ServiceReplica("r", "na-east", "read", store, cache=cache)
        other = ObjectStore(name="other")
        other.create(Region, name="elsewhere")
        replica.retarget(other)
        assert replica.cache is not cache
        assert replica.cache.store is other
        assert replica.cache.name == "front"
        wire = self._request("get", {"model": "Region", "fields": ["name"],
                                     "query": None})
        rows = RpcResponse.from_wire(replica.handle(wire)).result()
        assert [row["name"] for row in rows] == ["elsewhere"]
