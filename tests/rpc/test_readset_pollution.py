"""Regression: cache fills must not pollute the caller's read-set.

A cache fill that runs while the caller is inside ``track_reads()``
must not drag the fill's dependencies into the *ambient* read-set: the
caller did not semantically perform those reads, the cache did.  Before
the fix, a configgen derivation that consulted the cache would inherit
the cache's scan dependencies and go dirty on every mutation.
"""

from __future__ import annotations

import pytest

from repro.fbnet.changelog import ReadSet
from repro.fbnet.models import Region
from repro.fbnet.query import Expr, Op
from repro.fbnet.rpc import ReadCache

pytestmark = pytest.mark.rpc


@pytest.fixture
def regions(store):
    return [store.create(Region, name=f"r{i}") for i in range(3)]


class TestReadSetPollution:
    def test_fill_inside_track_reads_leaves_ambient_set_empty(
        self, store, regions
    ):
        cache = ReadCache(store)
        ambient = ReadSet()
        with store.track_reads(ambient):
            cache.get("Region", ["name"], Expr("name", Op.EQUAL, "r1"))
        assert len(ambient) == 0
        # The fill still captured its own dependencies (it invalidates).
        store.update(regions[1], name="r1-renamed")
        assert cache.get("Region", ["name"], Expr("name", Op.EQUAL, "r1")) == []
        assert cache.stats()["invalidations"] >= 1

    def test_batched_fill_inside_track_reads_leaves_ambient_set_empty(
        self, store, regions
    ):
        cache = ReadCache(store)
        ambient = ReadSet()
        specs = [
            ("Region", ("name",), Expr("name", Op.EQUAL, f"r{i}").to_wire())
            for i in range(3)
        ] + [("Region", None, None), ("Region", ("name",), None)]
        with store.track_reads(ambient):
            cache.multi_get(specs)
        assert len(ambient) == 0
        assert cache.stats()["entries"] == len(specs)

    def test_callers_own_reads_are_still_tracked(self, store, regions):
        cache = ReadCache(store)
        ambient = ReadSet()
        with store.track_reads(ambient):
            store.filter(Region, Expr("name", Op.EQUAL, "r0"))
            cache.get("Region", ["name"], Expr("name", Op.EQUAL, "r1"))
        # The direct filter's dependency is there; the fill's are not.
        assert len(ambient) > 0
        assert ("name" in ambient.fields.get("Region", {}))
        tracked = ambient.fields["Region"]["name"]
        assert "r0" in tracked
        assert "r1" not in tracked

    def test_hit_inside_track_reads_adds_nothing(self, store, regions):
        cache = ReadCache(store)
        cache.get("Region", ["name"], None)
        ambient = ReadSet()
        with store.track_reads(ambient):
            cache.get("Region", ["name"], None)
        assert cache.stats()["hits"] == 1
        assert len(ambient) == 0
