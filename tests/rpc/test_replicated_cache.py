"""Region-shared read caches over replicated stores (``cache_reads=True``).

Each region's read replicas share one :class:`ReadCache` bound to the
region's replica store; replicated applies append to that store's
journal, so the cache invalidates on arrival with no extra plumbing,
and every failover path leaves replicas bound to a cache whose journal
cursors belong to their live store.
"""

from __future__ import annotations

import pytest

from repro.fbnet.query import Expr, Op
from repro.fbnet.replication import ReplicatedFBNet
from repro.simulation.clock import EventScheduler

pytestmark = pytest.mark.rpc

REGIONS = ["na-east", "eu-west"]


@pytest.fixture
def fbnet():
    return ReplicatedFBNet(
        REGIONS, "na-east", EventScheduler(),
        replication_lag=0.5, cache_reads=True,
    )


class TestReplicatedCache:
    def test_region_replicas_share_one_cache(self, fbnet):
        region = fbnet.regions["eu-west"]
        assert region.cache is not None
        assert region.cache.name == "rpc-eu-west"
        assert all(r.cache is region.cache for r in region.read_replicas)
        # Write replicas never cache.
        assert all(r.cache is None for r in fbnet.master.write_replicas)

    def test_replicated_apply_invalidates_the_region_cache(self, fbnet):
        client = fbnet.client("eu-west")
        (rid,) = client.create_objects([("Region", {"name": "rx"})])
        fbnet.scheduler.run_for(1.0)
        query = Expr("name", Op.EQUAL, "rx")
        assert client.get("Region", fields=["name"], query=query) == [
            {"id": rid, "name": "rx"}
        ]
        assert client.get("Region", fields=["name"], query=query) == [
            {"id": rid, "name": "rx"}
        ]
        cache = fbnet.regions["eu-west"].cache
        assert cache.stats()["hits"] == 1
        client.update_objects([("Region", rid, {"name": "ry"})])
        fbnet.scheduler.run_for(1.0)
        # The shipped record landed in the replica journal: the stale
        # entry is gone and the fresh answer is served.
        assert client.get("Region", fields=["name"], query=query) == []
        assert cache.stats()["invalidations"] >= 1

    def test_failover_rebinds_to_the_master_cache_and_back(self, fbnet):
        client = fbnet.client("eu-west")
        (rid,) = client.create_objects([("Region", {"name": "rx"})])
        fbnet.disable_database("eu-west")
        # Redirected reads go through the master's cache (bound to the
        # master store), so the un-replicated write is already visible.
        region = fbnet.regions["eu-west"]
        assert all(r.cache is fbnet.master.cache for r in region.read_replicas)
        assert client.count("Region") == 1
        fbnet.recover_database("eu-west")
        assert all(r.cache is region.cache for r in region.read_replicas)
        assert region.cache.store is region.store
        assert client.get("Region", fields=["name"]) == [{"id": rid, "name": "rx"}]

    def test_promotion_leaves_no_replica_on_a_dead_cache(self, fbnet):
        client = fbnet.client("eu-west")
        client.create_objects([("Region", {"name": "rx"})])
        fbnet.scheduler.run_for(1.0)
        client.get("Region", fields=["name"])  # warm the region cache
        fbnet.promote_nearest()
        assert fbnet.master_region == "eu-west"
        for region in fbnet.regions.values():
            for replica in region.read_replicas:
                assert replica.cache is not None
                assert replica.cache.store is replica._store
        assert client.count("Region") == 1
