"""Cached reads are byte-identical to uncached store reads (CI matrix gate).

The ``cache-consistency`` matrix reruns this file per (FBNET_SHARDS,
ROBOTRON_WORKERS, CHAOS_SEED) cell: a seeded Zipf mutation storm
interleaved with reads — single gets, multi-get batches, counts —
through a caching read replica must produce exactly the answers a fresh
uncached replica over the same store produces, with zero stale serves,
at any shard count and pool size.
"""

from __future__ import annotations

import json

import pytest

from repro import obs, parallel
from repro.design.workload import ZipfReadWorkload
from repro.fbnet.query import Expr, Op
from repro.fbnet.rpc import ReadCache, RpcRequest, RpcResponse, ServiceReplica

from tests.rpc.conftest import build_pop_store

pytestmark = [pytest.mark.rpc, pytest.mark.parallel]

#: Interleaving schedule: after every read round of this many requests,
#: one seeded mutation lands.
ROUND_READS = 4
ROUNDS = 30


def run_storm(seed: int, shards: int) -> tuple[list, dict, str]:
    """One read/mutate storm; returns (answers, cache stats, metric dump).

    Every cached answer is checked against a fresh uncached replica on
    the spot — a single stale serve fails the run, which is the matrix's
    zero-stale-serves acceptance bar.
    """
    obs.reset()
    store = build_pop_store(shards)
    workload = ZipfReadWorkload.over_store(store, seed=seed)
    cache = ReadCache(store, name="storm")
    cached = ServiceReplica("cached-0", "na-east", "read", store, cache=cache)
    uncached = ServiceReplica("plain-0", "na-east", "read", store)

    def ask(replica: ServiceReplica, method: str, args: dict):
        wire = RpcRequest(service="read", method=method, args=args).to_wire()
        return RpcResponse.from_wire(replica.handle(wire)).result()

    answers = []
    for round_index in range(ROUNDS):
        specs = [spec.to_wire() for spec in workload.requests(ROUND_READS)]
        if round_index % 3 == 2:
            # Every third round reads as one multi-get batch.
            got = ask(cached, "multi_get", {"specs": specs})
            want = ask(uncached, "multi_get", {"specs": specs})
        else:
            got = [ask(cached, "get", spec) for spec in specs]
            want = [ask(uncached, "get", spec) for spec in specs]
        assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True)
        count_args = {
            "model": "Device",
            "query": Expr(
                "drain_state", Op.EQUAL,
                ("drained", "draining", "undrained")[round_index % 3],
            ).to_wire(),
        }
        assert ask(cached, "count", count_args) == ask(uncached, "count", count_args)
        answers.append(got)
        workload.mutation(store)
    stats = cache.stats()
    dump = json.dumps(obs.deterministic_dump(), sort_keys=True)
    return answers, stats, dump


class TestCacheConsistency:
    def test_storm_serves_fresh_answers_only(self, chaos_seed, shard_count):
        answers, stats, _ = run_storm(chaos_seed, shard_count)
        assert len(answers) == ROUNDS
        # The storm must actually exercise the cache, not bypass it.
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["invalidations"] > 0

    def test_serial_and_pool_of_four_identical(self, chaos_seed, shard_count):
        with parallel.workers(1):
            serial = run_storm(chaos_seed, shard_count)
        with parallel.workers(4):
            pooled = run_storm(chaos_seed, shard_count)
        assert pooled[0] == serial[0]
        assert pooled[1] == serial[1]
        assert pooled[2] == serial[2]

    def test_answers_are_shard_count_oblivious(self, chaos_seed, shard_count):
        single = run_storm(chaos_seed, 0)
        sharded = run_storm(chaos_seed, shard_count)
        # Answers and cache behavior match; the metric dump legitimately
        # differs (per-shard store labels).
        assert sharded[0] == single[0]
        assert sharded[1] == single[1]

    def test_configured_cell_reproduces_itself(self, chaos_seed, shard_count):
        assert run_storm(chaos_seed, shard_count) == run_storm(
            chaos_seed, shard_count
        )
