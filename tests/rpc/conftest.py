"""Read-front-door suite fixtures.

The ``cache-consistency`` CI matrix pins ``FBNET_SHARDS``,
``ROBOTRON_WORKERS``, and ``CHAOS_SEED`` and reruns this suite per
cell; locally the fixtures default to 4 shards and seed 1337.
"""

from __future__ import annotations

import os

import pytest

from repro import seed_environment
from repro.design.cluster import build_cluster
from repro.fbnet.models import ClusterGeneration
from repro.fbnet.sharding import ShardedObjectStore
from repro.fbnet.store import ObjectStore


@pytest.fixture
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "1337"))


@pytest.fixture
def shard_count() -> int:
    return int(os.environ.get("FBNET_SHARDS", "4"))


def build_pop_store(shards: int = 0) -> ObjectStore:
    """A store holding one built POP cluster (14 devices + catalog).

    ``shards`` > 0 builds it on a :class:`ShardedObjectStore`; 0 on a
    plain one.  Identical content either way — the shard matrix leans
    on that.
    """
    store: ObjectStore = (
        ShardedObjectStore(shards=shards) if shards else ObjectStore()
    )
    env = seed_environment(store)
    build_cluster(store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2)
    return store


@pytest.fixture
def pop_store() -> ObjectStore:
    return build_pop_store()
