"""Property: under any read/mutation interleaving, cache == fresh store.

Hypothesis drives randomized interleavings of reads (point lookups,
scans, counts, multi-get batches) and mutations (create / update /
delete) against one store; every cache-served answer must equal a fresh
uncached read taken at the same instant, and unrelated entries must
survive (asserted via the hit counter, not just payloads).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.fbnet.api import ReadApi
from repro.fbnet.models import Region
from repro.fbnet.query import Expr, Op, Query
from repro.fbnet.rpc import ReadCache
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.rpc

#: The object universe: a handful of names so reads and mutations collide.
NAMES = ["r0", "r1", "r2", "r3"]

read_op = st.tuples(
    st.just("read"),
    st.sampled_from(NAMES + [None]),  # None = full scan
)
count_op = st.tuples(st.just("count"), st.sampled_from(NAMES))
batch_op = st.tuples(
    st.just("batch"),
    st.lists(st.sampled_from(NAMES), min_size=1, max_size=6),
)
create_op = st.tuples(st.just("create"), st.sampled_from(NAMES))
rename_op = st.tuples(st.just("rename"), st.sampled_from(NAMES), st.sampled_from(NAMES))
delete_op = st.tuples(st.just("delete"), st.sampled_from(NAMES))

ops = st.lists(
    st.one_of(read_op, count_op, batch_op, create_op, rename_op, delete_op),
    min_size=1,
    max_size=40,
)


def _query(name: str | None) -> dict | None:
    return Expr("name", Op.EQUAL, name).to_wire() if name is not None else None


class TestCacheEquivalenceProperty:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(script=ops)
    def test_cache_always_equals_fresh_store(self, script):
        obs.reset()
        store = ObjectStore()
        api = ReadApi(store)
        cache = ReadCache(store)
        live: dict[str, list] = {name: [] for name in NAMES}
        serial = 0
        for op in script:
            kind = op[0]
            if kind == "read":
                wire = _query(op[1])
                assert cache.get("Region", ["name"], wire) == api.get(
                    "Region", ("name",), Query.from_wire(wire)
                )
            elif kind == "count":
                wire = _query(op[1])
                assert cache.count("Region", wire) == store.count(
                    Region, Query.from_wire(wire)
                )
            elif kind == "batch":
                specs = [("Region", ("name",), _query(name)) for name in op[1]]
                got = cache.multi_get(specs)
                want = [
                    api.get("Region", ("name",), Query.from_wire(_query(name)))
                    for name in op[1]
                ]
                assert got == want
            elif kind == "create":
                # Unique index: suffix a serial so creates never collide,
                # while the *queried* name prefix stays in the hot set.
                serial += 1
                obj = store.create(Region, name=f"{op[1]}-{serial}")
                live[op[1]].append(obj)
            elif kind == "rename":
                if live[op[1]]:
                    serial += 1
                    obj = live[op[1]].pop()
                    store.update(obj, name=f"{op[2]}-{serial}")
                    live[op[2]].append(obj)
            elif kind == "delete":
                if live[op[1]]:
                    store.delete(live[op[1]].pop())

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        hot=st.sampled_from(NAMES),
        cold=st.sampled_from(NAMES),
        repeats=st.integers(min_value=2, max_value=5),
    )
    def test_unmutated_entries_keep_serving_hits(self, hot, cold, repeats):
        obs.reset()
        store = ObjectStore()
        for name in NAMES:
            store.create(Region, name=name)
        cache = ReadCache(store)
        hot_query = _query(hot)
        cold_query = _query(cold)
        cache.get("Region", ["name"], hot_query)
        cache.get("Region", ["name"], cold_query)
        misses = cache.stats()["misses"]
        for _ in range(repeats):
            cache.get("Region", ["name"], hot_query)
            cache.get("Region", ["name"], cold_query)
        stats = cache.stats()
        # Nothing mutated: every further read is a hit, no refills.
        assert stats["misses"] == misses
        assert stats["invalidations"] == 0
        expected_hits = repeats * 2 if hot != cold else repeats * 2 + 1
        assert stats["hits"] == expected_hits
