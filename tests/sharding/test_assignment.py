"""The home-shard rule: deterministic, sticky, and cross-region aware."""

from __future__ import annotations

import pytest

from repro import seed_environment
from repro.fbnet.models import (
    BackboneSite,
    Circuit,
    HardwareProfile,
    LinecardModel,
    NetworkDomain,
    Pop,
    PrefixPool,
    Region,
    Vendor,
)
from repro.fbnet.sharding import ShardAssignment, ShardedObjectStore
from repro.design.backbone import BackboneDesignTool

pytestmark = pytest.mark.sharding


class TestShardAssignment:
    def test_region_token_is_its_name(self, sharded):
        region = sharded.create(Region, name="na-east")
        assignment = sharded.assignment
        token = assignment.token(Region, region.__dict__, sharded._home_resolve)
        assert token == "na-east"

    def test_located_object_inherits_region_token(self, sharded):
        region = sharded.create(Region, name="na-east")
        pop = sharded.create(
            Pop, name="pop01", region=region, domain=NetworkDomain.POP
        )
        assert sharded.shard_of(pop) == sharded.shard_of(region)

    def test_catalog_objects_home_on_shard_zero(self, sharded):
        pool = sharded.create(
            PrefixPool,
            name="pool-v6",
            prefix="2401:db00::/32",
            version=6,
            purpose="p2p",
        )
        assert sharded.shard_of(pool) == "s00"

    def test_assignment_is_deterministic_across_stores(self, shard_count):
        keys = []
        for _ in range(2):
            store = ShardedObjectStore(shards=shard_count)
            seed_environment(store)
            keys.append(
                [store.shard_of(obj) for obj in store.all(Region)]
                + [store.shard_of(obj) for obj in store.all(Pop)]
            )
        assert keys[0] == keys[1]

    def test_single_shard_store_maps_everything_to_zero(self):
        store = ShardedObjectStore(shards=1)
        seed_environment(store)
        assert set(store._home.values()) == {0}

    def test_assignment_is_sticky_across_updates(self, sharded):
        a = sharded.create(Region, name="aa-first")
        z = sharded.create(Region, name="zz-last")
        pop = sharded.create(
            Pop, name="pop01", region=a, domain=NetworkDomain.POP
        )
        before = sharded.shard_of(pop)
        # Moving the POP to another region must not migrate its row: the
        # home is assigned once, at create.
        sharded.update(pop, region=z)
        assert sharded.shard_of(pop) == before
        assert sharded.get(Pop, pop.id) is pop

    def test_hash_spreads_regions_when_sharded_wide(self):
        assignment = ShardAssignment(64)
        indices = {
            assignment.shard_of_token(f"region-{i:02d}") for i in range(32)
        }
        # 32 tokens over 64 buckets: collisions happen, a single bucket
        # would mean the hash is broken.
        assert len(indices) > 8


class TestCrossRegionHomeRule:
    def seed_backbone(self, store):
        env = seed_environment(
            store,
            region_names=("aa-west", "zz-east"),
            pop_count=0,
            datacenter_count=0,
            backbone_site_count=2,
        )
        tool = BackboneDesignTool(store)
        routers = []
        for name in sorted(env.backbone_sites):
            site = env.backbone_sites[name]
            routers.append(tool.add_router(f"{name}-br01", site, "Router_Vendor1"))
        tool.add_circuit(routers[0].name, routers[1].name)
        return env, routers

    def test_cross_region_circuit_homes_on_smallest_region(self, sharded):
        env, routers = self.seed_backbone(sharded)
        # Sites bbs01/bbs02 round-robin over the two regions, so the two
        # routers sit in different regions and the circuit between them is
        # a genuinely cross-region object.
        site_regions = {
            r.name: r.related("site").related("region").name for r in routers
        }
        assert len(set(site_regions.values())) == 2
        expected = sharded.shards[
            sharded.assignment.shard_of_token(min(site_regions.values()))
        ].shard_key
        for circuit in sharded.all(Circuit):
            assert sharded.shard_of(circuit) == expected

    def test_replica_recomputes_identical_homes(self, sharded, shard_count):
        self.seed_backbone(sharded)
        replica = ShardedObjectStore(shards=shard_count, name="replica")
        for record in sharded.journal:
            replica.apply_record(record)
        assert replica._home == sharded._home
        assert replica.shard_sizes() == sharded.shard_sizes()

    def test_plain_replica_of_sharded_master(self, sharded):
        """Shard placement never leaks into the journal."""
        from repro.fbnet.durability import store_digest
        from repro.fbnet.store import ObjectStore

        self.seed_backbone(sharded)
        replica = ObjectStore(name="plain-replica")
        for record in sharded.journal:
            replica.apply_record(record)
        assert store_digest(replica) == store_digest(sharded)

    def test_tokenless_fk_chain_falls_back_to_shard_zero(self, sharded):
        lcm = sharded.create(
            LinecardModel, name="LC-1x1G", port_count=1, port_speed_mbps=1_000
        )
        profile = sharded.create(
            HardwareProfile,
            name="Router_Tiny",
            vendor=Vendor.VENDOR1,
            slot_count=1,
            linecard_model=lcm,
        )
        # The profile's only FK target (the linecard SKU) has no located
        # ancestor, so the whole chain is tokenless.
        assert sharded.shard_of(lcm) == "s00"
        assert sharded.shard_of(profile) == "s00"

    def test_shard_of_unstored_object_raises(self, sharded):
        region = Region(name="never-saved")
        with pytest.raises(Exception):
            sharded.shard_of(region)

    def test_backbone_site_itself_is_region_homed(self, sharded):
        env, _ = self.seed_backbone(sharded)
        for site in sharded.all(BackboneSite):
            assert sharded.shard_of(site) == sharded.shard_of(
                site.related("region")
            )
