"""Byte-identity: the sharded store is the legacy store, at any config.

The refactor's acceptance bar (ROADMAP item 1): query results, journals,
digests, and full ``incremental_cycle`` outcomes must be byte-identical
between the single ``ObjectStore`` and ``ShardedObjectStore`` at *any*
shard count and *any* worker-pool size.  Shard placement is an internal
detail — nothing observable may depend on it.
"""

from __future__ import annotations

import os

import pytest

from repro import Robotron, obs, parallel, seed_environment
from repro.common.errors import ObjectDoesNotExist
from repro.design.fleet import FLEET_224, build_fleet
from repro.fbnet.durability import store_digest
from repro.fbnet.models import (
    Circuit,
    ClusterGeneration,
    Device,
    PhysicalInterface,
    Pop,
    Region,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.sharding import ShardedObjectStore
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.sharding


def small_build(store):
    """Seed + one POP cluster: the cheapest non-trivial object graph."""
    env = seed_environment(store)
    from repro.design.cluster import build_cluster

    build_cluster(store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2)
    return store


def journal_shape(store):
    return [
        (r.txn_id, r.op, r.model, r.obj_id, r.changed_fields)
        for r in store.journal
    ]


@pytest.fixture(scope="module")
def fleet_pair():
    """One plain and one sharded FLEET_224 build, shared by the module."""
    plain = ObjectStore(name="fleet-plain")
    build_fleet(plain, FLEET_224)
    count = int(os.environ.get("FBNET_SHARDS", "4"))
    sharded = ShardedObjectStore(shards=count, name="fleet-sharded")
    build_fleet(sharded, FLEET_224)
    return plain, sharded


class TestDigestEquivalence:
    def test_digest_identical_across_shard_counts(self):
        digests = {store_digest(small_build(ObjectStore()))}
        for count in (1, 2, 4):
            digests.add(
                store_digest(small_build(ShardedObjectStore(shards=count)))
            )
        assert len(digests) == 1

    def test_shard_count_one_matches_legacy_journal(self):
        plain = small_build(ObjectStore())
        solo = small_build(ShardedObjectStore(shards=1))
        assert store_digest(solo) == store_digest(plain)
        assert journal_shape(solo) == journal_shape(plain)
        assert solo.total_objects() == plain.total_objects()
        assert solo.table_sizes() == plain.table_sizes()

    def test_fleet_build_digest_matches(self, fleet_pair):
        plain, sharded = fleet_pair
        assert store_digest(sharded) == store_digest(plain)
        assert journal_shape(sharded) == journal_shape(plain)


class TestQueryEquivalence:
    def test_all_returns_identical_rows(self, fleet_pair):
        plain, sharded = fleet_pair
        for model in (Device, PhysicalInterface, Circuit, Region):
            assert [o.id for o in sharded.all(model)] == [
                o.id for o in plain.all(model)
            ]

    def test_filter_returns_identical_rows(self, fleet_pair):
        plain, sharded = fleet_pair
        queries = [
            (Device, Expr("name", Op.STARTSWITH, "dc01")),
            (Pop, Expr("name", Op.EQUAL, "pop01")),
            (PhysicalInterface, Expr("speed_mbps", Op.GT, 0)),
        ]
        for model, query in queries:
            assert [o.id for o in sharded.filter(model, query)] == [
                o.id for o in plain.filter(model, query)
            ]

    def test_fanout_scan_identical_at_any_worker_count(self, fleet_pair):
        plain, sharded = fleet_pair
        baseline = [o.id for o in plain.all(PhysicalInterface)]
        for count in (1, 2, 4):
            with parallel.workers(count):
                assert [
                    o.id for o in sharded.all(PhysicalInterface)
                ] == baseline

    def test_queries_against_empty_shards(self):
        # A single-region build over eight shards leaves most shards
        # empty; every query shape must still come back clean.
        store = ShardedObjectStore(shards=8)
        seed_environment(
            store,
            region_names=("solo",),
            pop_count=1,
            datacenter_count=0,
            backbone_site_count=0,
        )
        sizes = store.shard_sizes()
        assert any(size == 0 for size in sizes.values())
        assert store.count(Region) == 1
        assert [p.name for p in store.all(Pop)] == ["pop01"]
        assert store.filter(Pop, Expr("name", Op.EQUAL, "pop01"))
        assert store.filter(Pop, Expr("name", Op.EQUAL, "missing")) == []
        assert store.all(Circuit) == []
        with pytest.raises(ObjectDoesNotExist):
            store.get(Device, 999_999)


class TestCycleEquivalence:
    def run_cycle(self, shards: int | None) -> tuple:
        # The flight recorder's change counter is process-global; reset it
        # so back-to-back in-process runs mint identical change ids.
        obs.reset()
        robotron = Robotron() if shards is None else Robotron(shards=shards)
        env = seed_environment(robotron.store)
        cluster = robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        robotron.boot_fleet()
        assert robotron.provision_cluster(cluster).ok
        robotron.attach_monitoring()
        pif = robotron.store.all(PhysicalInterface)[0]
        robotron.store.update(pif, description="recabled to rack 7")
        report = robotron.incremental_cycle()
        golden = {
            name: config.text
            for name, config in sorted(robotron.generator.golden.items())
        }
        return (
            store_digest(robotron.store),
            tuple(report.generation.regenerated),
            tuple(sorted(report.deploy.succeeded)),
            tuple(sorted(report.deploy.skipped)),
            tuple(sorted(report.deploy.failed)),
            tuple(d.device for d in report.discrepancies),
            report.ok,
            golden,
        )

    def test_incremental_cycle_identical_across_stores(self):
        baseline = self.run_cycle(None)
        for count in (1, 4):
            assert self.run_cycle(count) == baseline
