"""The query planner's fast paths and shard-labeled observability.

Satellites: indexed point lookups route to the owning shard and count
under ``store.planner.single_shard``; full scans count one
``store.planner.fanout`` per shard; per-shard object/txn telemetry shows
up in ``obs.report()``; and read tracking records exactly what the
single store records, so the incremental cycle's dirty mapping is
shard-oblivious.
"""

from __future__ import annotations

import pytest

from repro import obs, seed_environment
from repro.fbnet.models import (
    Device,
    PeeringRouter,
    Pop,
    Region,
)
from repro.fbnet.query import And, Expr, Op
from repro.fbnet.store import ObjectStore

pytestmark = pytest.mark.sharding


def readset_shape(reads):
    return (
        set(reads.models),
        set(reads.objects),
        {
            model: {field: set(values) for field, values in per_field.items()}
            for model, per_field in reads.fields.items()
        },
    )


@pytest.fixture
def seeded(sharded):
    seed_environment(sharded)
    obs.reset()
    return sharded


class TestPlannerFastPath:
    def test_get_is_a_single_shard_read(self, seeded):
        region = seeded.all(Region)[0]
        obs.reset()
        assert seeded.get(Region, region.id) is region
        assert obs.counter("store.planner.single_shard", store=seeded.name).value == 1
        assert obs.counter("store.planner.fanout", store=seeded.name, shard="s00").value == 0

    def test_unique_index_filter_is_single_shard(self, seeded):
        obs.reset()
        found = seeded.filter(Pop, Expr("name", Op.EQUAL, "pop01"))
        assert [p.name for p in found] == ["pop01"]
        assert obs.counter("store.planner.single_shard", store=seeded.name).value == 1

    def test_narrowed_and_filter_is_single_shard(self, seeded):
        pop = seeded.filter(Pop, Expr("name", Op.EQUAL, "pop01"))[0]
        query = And(
            Expr("name", Op.EQUAL, "pop01"),
            Expr("region", Op.EQUAL, pop.region_id),
        )
        obs.reset()
        found = seeded.filter(Pop, query)
        assert [p.name for p in found] == ["pop01"]
        assert obs.counter("store.planner.single_shard", store=seeded.name).value == 1

    def test_full_scan_counts_fanout_per_shard(self, seeded, shard_count):
        obs.reset()
        seeded.all(Region)
        for shard in seeded.shards:
            expected = 1 if shard_count > 1 else 0
            assert (
                obs.counter(
                    "store.planner.fanout", store=seeded.name, shard=shard.shard_key
                ).value
                == expected
            )

    def test_miss_on_unique_index_stays_single_shard(self, seeded):
        obs.reset()
        assert seeded.filter(Pop, Expr("name", Op.EQUAL, "nope")) == []
        assert obs.counter("store.planner.single_shard", store=seeded.name).value == 1


class TestShardObservability:
    def test_shard_gauges_cover_every_partition(self, seeded):
        seeded.create(Region, name="zz-extra")
        sizes = seeded.shard_sizes()
        for shard in seeded.shards:
            gauge = obs.gauge(
                "store.shard.objects", store=seeded.name, shard=shard.shard_key
            )
            assert gauge.value == sizes[shard.shard_key]

    def test_txn_counter_labels_the_touched_shard(self, seeded):
        region = seeded.create(Region, name="zz-extra")
        key = seeded.shard_of(region)
        assert (
            obs.counter("store.shard.txns", store=seeded.name, shard=key).value
            == 1
        )

    def test_report_renders_shard_metrics(self, seeded):
        seeded.create(Region, name="zz-extra")
        seeded.all(Device)
        report = obs.report()
        assert "store.shard.objects" in report
        assert "store.shard.txns" in report
        assert "store.planner.single_shard" in report or "store.planner.fanout" in report
        assert "s00" in report


class TestReadSetParity:
    def build(self, store):
        env = seed_environment(store)
        store.create(
            PeeringRouter,
            name="pr1",
            hardware_profile=env.profiles["Router_Vendor1"],
            pop=env.pops["pop01"],
        )
        return store

    def observe(self, store):
        shapes = []
        with store.track_reads() as reads:
            store.get(Region, store.all(Region)[0].id)
        shapes.append(readset_shape(reads))
        with store.track_reads() as reads:
            store.filter(PeeringRouter, Expr("name", Op.EQUAL, "pr1"))
        shapes.append(readset_shape(reads))
        pop = store.filter(Pop, Expr("name", Op.EQUAL, "pop01"))[0]
        with store.track_reads() as reads:
            store.filter(
                Pop,
                And(
                    Expr("name", Op.EQUAL, "pop01"),
                    Expr("region", Op.EQUAL, pop.region_id),
                ),
            )
        shapes.append(readset_shape(reads))
        with store.track_reads() as reads:
            store.filter(Region, Expr("name", Op.STARTSWITH, "na-"))
        shapes.append(readset_shape(reads))
        with store.track_reads() as reads:
            store.all(Device)
        shapes.append(readset_shape(reads))
        return shapes

    def test_sharded_reads_record_exactly_like_plain(self, sharded):
        plain = self.build(ObjectStore())
        self.build(sharded)
        assert self.observe(sharded) == self.observe(plain)
