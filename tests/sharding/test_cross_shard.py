"""Cross-shard edges: traversals, constraints, and transactions.

The home-shard rule keeps most related objects co-located, but circuits
and BGP sessions genuinely span regions.  Everything that crosses a
partition boundary — ``related()``, ``referrers()``, cascades, PROTECT
aborts, global uniqueness — must behave exactly as it does on the single
store.
"""

from __future__ import annotations

import pytest

from repro import seed_environment
from repro.common.errors import IntegrityError
from repro.design.backbone import BackboneDesignTool
from repro.fbnet.durability import store_digest
from repro.fbnet.models import (
    AggregatedInterface,
    BackboneRouter,
    Circuit,
    HardwareProfile,
    LinecardModel,
    NetworkDomain,
    PeeringRouter,
    PhysicalInterface,
    Pop,
    Region,
    Vendor,
)

pytestmark = pytest.mark.sharding


@pytest.fixture
def backbone(sharded, shard_count):
    """Two backbone routers in different regions, joined by a circuit.

    Region names are chosen so the two regions hash to *different*
    shards; a one-shard matrix cell has no cross-shard placements, so
    the fixture skips there.
    """
    if shard_count < 2:
        pytest.skip("shard count 1 has no cross-shard placements")
    assignment = sharded.assignment
    names = [f"region-{i:02d}" for i in range(32)]
    pair = None
    for left in names:
        for right in names:
            if left < right and assignment.shard_of_token(
                left
            ) != assignment.shard_of_token(right):
                pair = (left, right)
                break
        if pair:
            break
    assert pair, "32 region names never split across shards"
    env = seed_environment(
        sharded,
        region_names=pair,
        pop_count=0,
        datacenter_count=0,
        backbone_site_count=2,
    )
    tool = BackboneDesignTool(sharded)
    routers = [
        tool.add_router(f"{name}-br01", env.backbone_sites[name], "Router_Vendor1")
        for name in sorted(env.backbone_sites)
    ]
    tool.add_circuit(routers[0].name, routers[1].name)
    return env, routers


def far_end_of(sharded, circuit):
    """The circuit end homed on a different shard than the circuit.

    The circuit homes with the lexicographically smallest endpoint
    region, so exactly one of its two interfaces is remote.
    """
    ends = {
        end: circuit.related(end) for end in ("a_interface", "z_interface")
    }
    remote = {
        end: pif
        for end, pif in ends.items()
        if sharded.shard_of(pif) != sharded.shard_of(circuit)
    }
    assert len(remote) == 1, "exactly one end must cross the boundary"
    return next(iter(remote.items()))


class TestCrossShardTraversal:
    def test_related_crosses_the_shard_boundary(self, sharded, backbone):
        circuit = sharded.all(Circuit)[0]
        _, far_end = far_end_of(sharded, circuit)
        assert isinstance(far_end, PhysicalInterface)
        assert far_end.device().name.endswith("-br01")

    def test_referrers_cross_the_shard_boundary(self, sharded, backbone):
        circuit = sharded.all(Circuit)[0]
        fk_name, far_end = far_end_of(sharded, circuit)
        assert sharded.referrers(far_end, Circuit, fk_name) == [circuit]
        # Reverse-relation sugar resolves through the same global index.
        sugar = getattr(far_end, f"{fk_name[0]}_circuits")
        assert list(sugar) == [circuit]

    def test_deleting_a_circuit_clears_remote_reverse_index(
        self, sharded, backbone
    ):
        circuit = sharded.all(Circuit)[0]
        fk_name, far_end = far_end_of(sharded, circuit)
        sharded.delete(circuit)
        assert sharded.referrers(far_end, Circuit, fk_name) == []
        assert sharded.all(Circuit) == []


class TestCrossShardConstraints:
    def test_protect_abort_rolls_back_every_shard(self, sharded, backbone):
        env, routers = backbone
        before = store_digest(sharded)
        sizes = sharded.shard_sizes()
        # Deleting a router cascades into its interfaces, which the
        # cross-shard circuit PROTECTs — the abort must leave all shards
        # exactly as they were.
        for router in routers:
            with pytest.raises(IntegrityError, match="protected"):
                sharded.delete(router)
        assert store_digest(sharded) == before
        assert sharded.shard_sizes() == sizes
        assert len(sharded.all(BackboneRouter)) == 2

    def test_unique_names_are_global_not_per_shard(self, sharded, backbone):
        env, routers = backbone
        tool = BackboneDesignTool(sharded)
        first, second = sorted(env.backbone_sites)
        # Same device name, homed on a different shard: still a dup.
        assert sharded.shard_of(env.backbone_sites[first]) != sharded.shard_of(
            env.backbone_sites[second]
        )
        with pytest.raises(IntegrityError):
            tool.add_router(routers[0].name, env.backbone_sites[second], "Router_Vendor1")

    def test_cascade_follows_a_migrated_parent_across_shards(self, sharded):
        # Homes are sticky: a device created in one region keeps its
        # shard when its POP is re-parented, but objects created
        # *afterwards* hash from the new ancestry — so the device's own
        # interface can land on another shard, and deleting the device
        # must CASCADE across the boundary.
        aa = sharded.create(Region, name="region-00")
        zz = None
        for index in range(1, 32):
            candidate = sharded.create(Region, name=f"region-{index:02d}")
            if sharded.shard_of(candidate) != sharded.shard_of(aa):
                zz = candidate
                break
        if zz is None:
            pytest.skip("shard count 1 has no cross-shard placements")
        pop = sharded.create(Pop, name="pop01", region=aa, domain=NetworkDomain.POP)
        lcm = sharded.create(
            LinecardModel, name="LC-1x1G", port_count=1, port_speed_mbps=1_000
        )
        profile = sharded.create(
            HardwareProfile,
            name="Router_Tiny",
            vendor=Vendor.VENDOR1,
            slot_count=1,
            linecard_model=lcm,
        )
        router = sharded.create(
            PeeringRouter, name="pop01-pr1", hardware_profile=profile, pop=pop
        )
        assert sharded.shard_of(router) == sharded.shard_of(aa)

        sharded.update(pop, region=zz)
        agg = sharded.create(
            AggregatedInterface, name="ae0", device=router, number=0
        )
        assert sharded.shard_of(agg) == sharded.shard_of(zz)
        assert sharded.shard_of(agg) != sharded.shard_of(router)

        sharded.delete(router)
        assert sharded.all(AggregatedInterface) == []
        assert sharded.all(PeeringRouter) == []
        assert agg.id not in sharded._home

    def test_multi_shard_transaction_rollback_leaves_all_clean(self, sharded):
        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with sharded.transaction():
                for index in range(8):
                    sharded.create(Region, name=f"region-{index:02d}")
                raise Boom()
        assert sharded.total_objects() == 0
        assert sharded.journal == []
        assert sharded._home == {}
        assert sharded.shard_sizes() == {
            shard.shard_key: 0 for shard in sharded.shards
        }
        # The store is still fully usable afterwards.
        region = sharded.create(Region, name="region-00")
        assert sharded.get(Region, region.id) is region
