"""Sharding-suite fixtures.

The CI shard matrix pins three environment knobs — ``FBNET_SHARDS``,
``ROBOTRON_WORKERS``, ``CHAOS_SEED`` — and reruns this suite per cell;
locally the fixtures default to 4 shards and seed 1337.
"""

from __future__ import annotations

import os

import pytest

from repro.fbnet.sharding import ShardedObjectStore


@pytest.fixture
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "1337"))


@pytest.fixture
def shard_count() -> int:
    return int(os.environ.get("FBNET_SHARDS", "4"))


@pytest.fixture
def sharded(shard_count) -> ShardedObjectStore:
    """An empty sharded store at the matrix's shard count."""
    return ShardedObjectStore(shards=shard_count)
