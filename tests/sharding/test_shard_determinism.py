"""Chaos on the sharded store reproduces bit-for-bit (CI matrix gate).

The shard matrix reruns this file per (FBNET_SHARDS, ROBOTRON_WORKERS,
CHAOS_SEED) cell: a full chaos management cycle — build, provision,
monitor under injected faults, then an incremental cycle — must produce
the identical fault record, store digest, and deterministic metric dump
whether the pool runs serial or wide, and the digest must not depend on
the shard count at all.
"""

from __future__ import annotations

import json

import pytest

from repro import Robotron, faults, obs, parallel, seed_environment
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.durability import store_digest
from repro.fbnet.models import ClusterGeneration, PhysicalInterface

pytestmark = [pytest.mark.sharding, pytest.mark.parallel]


def run_shard_cycle(seed: int, shard_count: int) -> tuple[dict, str, str]:
    """One chaos cycle on a sharded store; returns (fingerprint, digest, dump)."""
    obs.reset()
    faults.uninstall()
    robotron = Robotron(
        shards=shard_count,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0),
    )
    env = seed_environment(robotron.store)
    plan = FaultPlan(seed=seed)
    plan.inject("deploy.push", device="pop01.c01.tor1", times=2)
    plan.inject("deploy.push", probability=0.05)
    plan.inject("monitoring.collect", job="snmp-system", times=2)
    robotron.install_fault_plan(plan)
    try:
        cluster = robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        robotron.boot_fleet()
        provision = robotron.provision_cluster(cluster)
        robotron.attach_monitoring()
        robotron.run_minutes(10)
        pif = robotron.store.all(PhysicalInterface)[0]
        robotron.store.update(pif, description="chaos recable")
        report = robotron.incremental_cycle()
    finally:
        faults.uninstall()
    fingerprint = {
        "injections": list(plan.injections),
        "provision_ok": provision.ok,
        "provision_succeeded": sorted(provision.succeeded),
        "cycle_ok": report.ok,
        "regenerated": sorted(report.generation.regenerated),
        "discrepancies": sorted(d.device for d in report.discrepancies),
        "journal_position": robotron.store.journal_position,
        "clock": robotron.scheduler.clock.now,
    }
    digest = store_digest(robotron.store)
    dump = json.dumps(obs.deterministic_dump(), sort_keys=True)
    return fingerprint, digest, dump


class TestShardChaosDeterminism:
    def test_serial_and_pool_of_four_identical(self, chaos_seed, shard_count):
        with parallel.workers(1):
            serial = run_shard_cycle(chaos_seed, shard_count)
        with parallel.workers(4):
            pooled = run_shard_cycle(chaos_seed, shard_count)
        assert pooled[0] == serial[0]
        assert pooled[1] == serial[1]
        assert pooled[2] == serial[2]

    def test_configured_pool_size_reproduces_itself(self, chaos_seed, shard_count):
        # Whatever ROBOTRON_WORKERS the matrix cell pinned: bit-for-bit.
        assert run_shard_cycle(chaos_seed, shard_count) == run_shard_cycle(
            chaos_seed, shard_count
        )

    def test_digest_is_shard_count_oblivious(self, chaos_seed, shard_count):
        # The metric dump legitimately differs (per-shard labels); the
        # store itself — tables, journal, ids — must not.
        single = run_shard_cycle(chaos_seed, 1)
        sharded = run_shard_cycle(chaos_seed, shard_count)
        assert sharded[0] == single[0]
        assert sharded[1] == single[1]
