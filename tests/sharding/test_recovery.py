"""Per-shard durable roots: manifest, independent recovery, torn WALs.

Each partition journals to its own WAL under ``shard-NN/``; the
``shards.json`` manifest makes the root self-describing.  A torn tail in
one shard truncates only that shard's last commit — every other
partition recovers to its own durable prefix, and ``Robotron.recover``
and replication's ``recover_master`` both dispatch on the manifest.
"""

from __future__ import annotations

import json

import pytest

from repro import Robotron, faults, obs, seed_environment
from repro.common.errors import DurabilityError, ProcessCrash
from repro.faults.plan import FaultPlan
from repro.fbnet.durability import encode_record, store_digest
from repro.fbnet.models import ClusterGeneration, Region
from repro.fbnet.replication import ReplicatedFBNet
from repro.fbnet.sharding import (
    MANIFEST_NAME,
    ORDER_LOG_NAME,
    ShardedObjectStore,
)
from repro.simulation.clock import EventScheduler

pytestmark = [pytest.mark.sharding, pytest.mark.durability]


def spread_regions(store, count=12):
    """Writes guaranteed to touch more than one shard (when sharded >1)."""
    return [
        store.create(Region, name=f"region-{i:02d}") for i in range(count)
    ]


class TestDurableLayout:
    def test_attach_writes_manifest_and_shard_roots(self, tmp_path, sharded):
        sharded.attach_durability(tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["kind"] == "fbnet-shards"
        assert manifest["shard_count"] == len(sharded.shards)
        assert manifest["shards"] == [s.shard_key for s in sharded.shards]
        for shard in sharded.shards:
            assert (tmp_path / f"shard-{shard.shard_index:02d}").is_dir()

    def test_shard_count_mismatch_refuses_attach(self, tmp_path, sharded, shard_count):
        sharded.attach_durability(tmp_path)
        other = ShardedObjectStore(shards=shard_count + 1)
        with pytest.raises(DurabilityError, match="shard"):
            other.attach_durability(tmp_path)

    def test_plain_recover_refuses_sharded_root(self, tmp_path, sharded):
        sharded.attach_durability(tmp_path)
        spread_regions(sharded)
        with pytest.raises(DurabilityError):
            ShardedObjectStore.recover(tmp_path / "shard-00" / "missing")


class TestRoundTrip:
    def test_every_shard_recovers_independently(self, tmp_path, sharded):
        sharded.attach_durability(tmp_path)
        env = seed_environment(sharded)
        regions = spread_regions(sharded)
        sharded.update(regions[3], name="region-renamed")
        sharded.delete(regions[5])

        recovered = ShardedObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == store_digest(sharded)
        assert recovered._home == sharded._home
        assert recovered.shard_sizes() == sharded.shard_sizes()
        assert [encode_record(r) for r in recovered.journal] == [
            encode_record(r) for r in sharded.journal
        ]
        assert recovered.name == sharded.name
        assert env.pops.keys() == {
            p.name for p in recovered.all(type(next(iter(env.pops.values()))))
        }

    def test_recovered_store_keeps_journaling(self, tmp_path, sharded):
        sharded.attach_durability(tmp_path)
        spread_regions(sharded, 6)
        recovered = ShardedObjectStore.recover(tmp_path)
        recovered.create(Region, name="region-post")
        second = ShardedObjectStore.recover(tmp_path, attach=False)
        assert store_digest(second) == store_digest(recovered)
        assert second.count(Region) == 7


class TestTornShard:
    def torn_setup(self, tmp_path, sharded):
        sharded.attach_durability(tmp_path)
        regions = spread_regions(sharded)
        # Pick any populated shard and tear *its* next WAL append.
        victim = sharded.shards[
            sharded._home[regions[-1].id]
        ]
        return regions[-1], victim

    def test_torn_shard_loses_only_its_last_commit(self, tmp_path, sharded):
        region, victim = self.torn_setup(tmp_path, sharded)
        before = store_digest(sharded)
        sizes = sharded.shard_sizes()

        plan = FaultPlan(seed=1)
        plan.inject("wal.append_torn", times=1, store=victim.name)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            sharded.update(region, name="region-torn")
        faults.uninstall()

        recovered = ShardedObjectStore.recover(tmp_path, attach=False)
        assert store_digest(recovered) == before
        assert recovered.shard_sizes() == sizes
        assert (
            obs.counter("store.wal.torn_truncated", store=victim.name).value
            == 1
        )
        # No other shard's WAL was disturbed.
        for shard in recovered.shards:
            if shard.name != victim.name:
                assert (
                    obs.counter(
                        "store.wal.torn_truncated", store=shard.name
                    ).value
                    == 0
                )

    def test_torn_order_log_degrades_to_shard_order(self, tmp_path, sharded):
        sharded.attach_durability(tmp_path)
        spread_regions(sharded)
        path = tmp_path / ORDER_LOG_NAME
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n" + '{"txn": 99, "shards": [')

        # Data lives in the shard WALs; losing order metadata costs only
        # within-transaction interleave, never state.
        recovered = ShardedObjectStore.recover(tmp_path, attach=False)
        assert recovered.shard_sizes() == sharded.shard_sizes()
        assert recovered._home == sharded._home
        assert sorted(encode_record(r) for r in recovered.journal) == sorted(
            encode_record(r) for r in sharded.journal
        )

    def test_torn_shard_is_reusable_after_recovery(self, tmp_path, sharded):
        region, victim = self.torn_setup(tmp_path, sharded)
        plan = FaultPlan(seed=1)
        plan.inject("wal.append_torn", times=1, store=victim.name)
        faults.install(plan)
        with pytest.raises(ProcessCrash):
            sharded.update(region, name="region-torn")
        faults.uninstall()

        recovered = ShardedObjectStore.recover(tmp_path)  # attaches + truncates
        recovered.create(Region, name="region-post")
        second = ShardedObjectStore.recover(tmp_path, attach=False)
        assert store_digest(second) == store_digest(recovered)
        assert second.count(Region) == 13


class TestFacadeDispatch:
    def test_robotron_recover_rebuilds_a_sharded_store(
        self, tmp_path, shard_count
    ):
        robotron = Robotron(shards=shard_count)
        robotron.attach_durability(tmp_path)
        env = seed_environment(robotron.store)
        robotron.build_cluster(
            "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
        )

        revived = Robotron.recover(tmp_path)
        assert isinstance(revived.store, ShardedObjectStore)
        assert len(revived.store.shards) == shard_count
        assert store_digest(revived.store) == store_digest(robotron.store)

    def test_robotron_recover_still_handles_plain_roots(self, tmp_path):
        robotron = Robotron()
        robotron.attach_durability(tmp_path)
        seed_environment(robotron.store)
        revived = Robotron.recover(tmp_path)
        assert not isinstance(revived.store, ShardedObjectStore)
        assert store_digest(revived.store) == store_digest(robotron.store)

    def test_replication_recover_master_dispatches_on_manifest(
        self, tmp_path, shard_count
    ):
        cluster = ReplicatedFBNet(
            ["na-east", "na-west"],
            "na-east",
            EventScheduler(),
            store_factory=lambda name: ShardedObjectStore(
                shards=shard_count, name=name
            ),
        )
        assert isinstance(cluster.master.store, ShardedObjectStore)
        cluster.master.store.attach_durability(tmp_path)
        client = cluster.client("na-east")
        client.create_objects([("Region", {"name": f"region-{i:02d}"}) for i in range(6)])
        cluster.scheduler.run_for(1.0)
        before = store_digest(cluster.master.store)

        recovered = cluster.recover_master(tmp_path)
        assert isinstance(recovered, ShardedObjectStore)
        assert store_digest(recovered) == before
        west = cluster.regions["na-west"]
        assert store_digest(west.store) == before
