"""Tests for the Robotron facade and environment seeding."""

import pytest

from repro import Robotron, seed_environment
from repro.common.errors import DesignValidationError, RobotronError
from repro.fbnet.models import (
    Cluster,
    ClusterGeneration,
    DesignChangeEntry,
    Device,
    DeviceStatus,
    DrainState,
    PrefixPool,
)


class TestSeeding:
    def test_catalog_complete(self, store, env):
        assert set(env.profiles) == {
            "Router_Vendor1", "Router_Vendor2", "Switch_Vendor1", "Switch_Vendor2",
        }
        assert "backbone-loopback-v6" in env.pools
        assert store.count(PrefixPool) == 7

    def test_sites_spread_over_regions(self, store, env):
        regions = {pop.related("region").name for pop in env.pops.values()}
        assert len(regions) >= 1

    def test_seeding_is_transactional(self, store):
        # Seeding an already-seeded store collides on unique names and
        # must leave no partial second catalog behind.
        seed_environment(store)
        before = store.total_objects()
        with pytest.raises(Exception):
            seed_environment(store)
        assert store.total_objects() == before


class TestFacade:
    def test_build_cluster_requires_design_change_audit(self, robotron):
        robotron.build_cluster(
            "pop01.c01", robotron.env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        entries = robotron.store.all(DesignChangeEntry)
        assert len(entries) == 1
        assert entries[0].domain == "pop"

    def test_design_change_validates(self, robotron):
        from repro.fbnet.models import Circuit, CircuitStatus

        with pytest.raises(DesignValidationError):
            with robotron.design_change(employee_id="e", ticket_id="T"):
                robotron.store.create(
                    Circuit, name="bad", status=CircuitStatus.PRODUCTION
                )
        assert robotron.store.count(Circuit) == 0

    def test_provision_requires_fleet(self, robotron):
        cluster = robotron.build_cluster(
            "pop01.c01", robotron.env.pops["pop01"], ClusterGeneration.POP_GEN2
        )
        with pytest.raises(RobotronError, match="boot_fleet"):
            robotron.provision_cluster(cluster)

    def test_provision_marks_production_undrained(self, pop_network):
        for device in pop_network.store.all(Device):
            assert device.status is DeviceStatus.PRODUCTION
            assert device.drain_state is DrainState.UNDRAINED

    def test_monitoring_defaults_attached(self, pop_network):
        assert pop_network.jobs is not None
        assert set(pop_network.jobs.specs) == {
            "snmp-interfaces", "snmp-system", "cli-lldp", "cli-bgp",
            "cli-config-backup",
        }

    def test_run_advances_scheduler(self, pop_network):
        t0 = pop_network.scheduler.clock.now
        pop_network.run_minutes(5)
        assert pop_network.scheduler.clock.now == t0 + 300

    def test_full_lifecycle_bgp_converges(self, pop_network):
        assert pop_network.fleet.all_bgp_established()

    def test_audit_clean_after_monitoring(self, pop_network):
        pop_network.run_minutes(10)
        assert pop_network.audit().clean


class TestOperationalShortcuts:
    def test_drain_undrain_via_facade(self, pop_network):
        from repro.fbnet.models import DrainState

        result = pop_network.drain("pop01.c01.pr1", reason="facade test")
        assert result.state is DrainState.DRAINED
        assert not pop_network.fleet.all_bgp_established()
        pop_network.undrain("pop01.c01.pr1")
        assert pop_network.fleet.all_bgp_established()

    def test_peering_tool_cached(self, pop_network):
        assert pop_network.peering is pop_network.peering

    def test_peering_turnup_via_facade(self, pop_network):
        from repro.fbnet.models import Device, PeeringLink
        from repro.fbnet.query import Expr, Op

        pr = pop_network.store.first(
            Device, Expr("name", Op.EQUAL, "pop01.c01.pr1")
        )
        pop_network.peering.turn_up(pr, "FacadeISP", 64700)
        assert pop_network.store.count(PeeringLink) == 1
