"""Tests for topology templates and cluster materialization (Figure 7)."""

import pytest

from repro.common.errors import DesignValidationError
from repro.design.materializer import PortAllocator, materialize_cluster
from repro.design.topology import (
    DeviceGroupSpec,
    IpSchemeSpec,
    LinkGroupSpec,
    TopologyTemplate,
    four_post_pop_template,
)
from repro.fbnet.models import (
    AggregatedInterface,
    BgpV6Session,
    Circuit,
    Cluster,
    ClusterGeneration,
    Linecard,
    LinkGroup,
    NetworkSwitch,
    PeeringRouter,
    PhysicalInterface,
    V4Prefix,
    V6Prefix,
)
from repro.fbnet.query import Expr, Op

#: Object types the paper's "94 objects" figure counts (Figure 7 labels
#: devices, circuits, interfaces, prefixes, and BGP sessions).
PAPER_COUNTED = {
    "PeeringRouter",
    "NetworkSwitch",
    "AggregatedInterface",
    "PhysicalInterface",
    "Circuit",
    "V4Prefix",
    "V6Prefix",
    "BgpV4Session",
    "BgpV6Session",
}


@pytest.fixture
def built(store, env):
    pos = store.journal_position
    result = materialize_cluster(
        store,
        four_post_pop_template(),
        "pop01.c01",
        env.pops["pop01"],
        generation=ClusterGeneration.POP_GEN2,
    )
    created = [r for r in store.journal_since(pos) if r.op.value == "create"]
    return result, created


class TestTemplateValidation:
    def test_duplicate_groups_rejected(self):
        with pytest.raises(DesignValidationError, match="duplicate"):
            TopologyTemplate(
                name="bad",
                device_groups=(
                    DeviceGroupSpec("A", "NetworkSwitch", 1, "Switch_Vendor2", "a"),
                    DeviceGroupSpec("A", "NetworkSwitch", 1, "Switch_Vendor2", "b"),
                ),
                link_groups=(),
                ip_scheme=IpSchemeSpec(v6_pool="x"),
            )

    def test_unknown_link_group_reference(self):
        with pytest.raises(DesignValidationError, match="unknown device group"):
            TopologyTemplate(
                name="bad",
                device_groups=(
                    DeviceGroupSpec("A", "NetworkSwitch", 1, "Switch_Vendor2", "a"),
                ),
                link_groups=(LinkGroupSpec("A", "B"),),
                ip_scheme=IpSchemeSpec(v6_pool="x"),
            )

    def test_self_link_rejected(self):
        with pytest.raises(DesignValidationError, match="differ"):
            LinkGroupSpec("A", "A")

    def test_zero_count_rejected(self):
        with pytest.raises(DesignValidationError):
            DeviceGroupSpec("A", "NetworkSwitch", 0, "Switch_Vendor2", "a")

    def test_bundle_count(self):
        template = four_post_pop_template()
        assert template.device_count() == 6
        assert template.bundle_count() == 8  # 4 PSW x 2 PR


class TestFourPostMaterialization:
    def test_paper_counted_objects_is_94(self, built):
        """The paper: 'In total, 94 objects of various types are created'."""
        _result, created = built
        counted = [r for r in created if r.model in PAPER_COUNTED]
        assert len(counted) == 94

    def test_device_breakdown(self, built, store):
        assert store.count(PeeringRouter) == 2
        assert store.count(NetworkSwitch) == 4

    def test_bundles_and_circuits(self, built, store):
        assert store.count(LinkGroup) == 8
        assert store.count(Circuit) == 16  # 2 circuits per bundle
        assert store.count(AggregatedInterface) == 16  # one per bundle side
        assert store.count(PhysicalInterface) == 32

    def test_bgp_sessions_one_per_bundle(self, built, store):
        assert store.count(BgpV6Session) == 8

    def test_prefix_per_bundle_side(self, built, store):
        assert store.count(V6Prefix) == 16
        assert store.count(V4Prefix) == 0  # default template is v6-only

    def test_relationships_fully_wired(self, built, store):
        """Every pif is in a linecard and an aggregate; circuits close."""
        for pif in store.all(PhysicalInterface):
            assert pif.linecard is not None
            assert pif.agg_interface is not None
        for circuit in store.all(Circuit):
            a_dev = circuit.a_interface.related("linecard").related("device")
            z_dev = circuit.z_interface.related("linecard").related("device")
            assert a_dev.id != z_dev.id

    def test_transactionality(self, store, env):
        """A mid-build failure (bad pool) leaves nothing behind."""
        template = four_post_pop_template(v6_pool="no-such-pool")
        before = store.total_objects()
        with pytest.raises(DesignValidationError):
            materialize_cluster(
                store, template, "pop01.cX", env.pops["pop01"],
                generation=ClusterGeneration.POP_GEN2,
            )
        assert store.total_objects() == before

    def test_duplicate_cluster_name_rejected(self, built, store, env):
        with pytest.raises(Exception):
            materialize_cluster(
                store, four_post_pop_template(), "pop01.c01", env.pops["pop01"],
                generation=ClusterGeneration.POP_GEN2,
            )

    def test_dual_stack_template(self, store, env):
        template = four_post_pop_template(v4_pool="pop-p2p-v4")
        materialize_cluster(
            store, template, "pop01.c02", env.pops["pop01"],
            generation=ClusterGeneration.POP_GEN2,
        )
        assert store.count(V4Prefix) == 16
        from repro.fbnet.models import BgpV4Session

        assert store.count(BgpV4Session) == 8

    def test_location_type_enforced(self, store, env):
        with pytest.raises(DesignValidationError, match="Pop or Datacenter"):
            materialize_cluster(
                store, four_post_pop_template(), "x",
                env.backbone_sites["bbs01"],
                generation=ClusterGeneration.POP_GEN2,
            )


class TestPortAllocator:
    def test_ports_sequential_and_linecards_on_demand(self, store, env):
        device = store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        ports = PortAllocator(store, device)
        pifs = [ports.create_interface(10_000) for _ in range(50)]
        assert pifs[0].name == "et1/0"
        assert pifs[47].name == "et1/47"
        assert pifs[48].name == "et2/0"  # rolled into the next linecard
        assert store.count(Linecard, Expr("device", Op.EQUAL, device.id)) == 2

    def test_skips_existing_ports(self, store, env):
        device = store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        first = PortAllocator(store, device)
        first.create_interface(10_000)
        second = PortAllocator(store, device)  # fresh allocator, same truth
        pif = second.create_interface(10_000)
        assert pif.name == "et1/1"

    def test_capacity_exhaustion(self, store, env):
        device = store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        ports = PortAllocator(store, device)
        capacity = env.profiles["Switch_Vendor2"].total_ports()
        for _ in range(capacity):
            ports.create_interface(10_000)
        with pytest.raises(DesignValidationError, match="no free ports"):
            ports.create_interface(10_000)
