"""Tests for design changes: accounting, review gate, audit log."""

import pytest

from repro.common.errors import DesignValidationError
from repro.design.changes import DesignChange, summarize_journal
from repro.design.validation import DEFAULT_RULES
from repro.fbnet.models import DesignChangeEntry, Region
from repro.fbnet.store import ObjectStore


class TestSummarizeJournal:
    def test_create_then_update_counts_once_as_created(self, store):
        with store.transaction():
            region = store.create(Region, name="r1")
            store.update(region, name="r2")
        summary = summarize_journal(store.journal)
        assert summary.created == {"Region": 1}
        assert summary.modified == {}

    def test_create_then_delete_nets_out(self, store):
        with store.transaction():
            region = store.create(Region, name="r1")
            store.delete(region)
        summary = summarize_journal(store.journal)
        assert summary.total == 0

    def test_update_then_delete_counts_as_deleted(self, store):
        region = store.create(Region, name="r1")
        pos = store.journal_position
        with store.transaction():
            store.update(region, name="r2")
            store.delete(region)
        summary = summarize_journal(store.journal_since(pos))
        assert summary.deleted == {"Region": 1}

    def test_audit_entries_excluded(self, store):
        with store.transaction():
            store.create(
                DesignChangeEntry,
                employee_id="e", ticket_id="t", domain="pop",
            )
        assert summarize_journal(store.journal).total == 0

    def test_describe_lists_types(self, store):
        with store.transaction():
            store.create(Region, name="r1")
        text = summarize_journal(store.journal).describe()
        assert "Region: +1" in text


class TestDesignChange:
    def test_requires_employee_and_ticket(self, store):
        with pytest.raises(DesignValidationError, match="employee id"):
            DesignChange(store, employee_id="", ticket_id="T-1")

    def test_commit_writes_audit_entry(self, store):
        with DesignChange(
            store, employee_id="e1", ticket_id="T-1", description="add region",
            domain="backbone",
        ) as change:
            store.create(Region, name="r1")
        assert change.summary.created_total == 1
        entry = store.all(DesignChangeEntry)[0]
        assert entry.employee_id == "e1"
        assert entry.ticket_id == "T-1"
        assert entry.created_count == 1
        assert entry.per_type_counts["Region"]["created"] == 1

    def test_reviewer_rejection_rolls_back(self, store):
        with pytest.raises(DesignValidationError, match="rejected by reviewer"):
            with DesignChange(
                store, employee_id="e1", ticket_id="T-1",
                reviewer=lambda summary: False,
            ):
                store.create(Region, name="r1")
        assert store.count(Region) == 0
        assert store.count(DesignChangeEntry) == 0

    def test_reviewer_sees_summary(self, store):
        seen = {}

        def reviewer(summary):
            seen["total"] = summary.total
            return True

        with DesignChange(store, employee_id="e1", ticket_id="T-1", reviewer=reviewer):
            store.create(Region, name="r1")
        assert seen["total"] == 1

    def test_validator_violation_rolls_back(self, store, env):
        from repro.fbnet.models import Circuit, CircuitStatus

        def broken_circuit_validator(s):
            from repro.design.validation import rule_circuit_endpoints

            return rule_circuit_endpoints(s)

        with pytest.raises(DesignValidationError) as excinfo:
            with DesignChange(
                store, employee_id="e1", ticket_id="T-1",
                validators=[broken_circuit_validator],
            ):
                store.create(
                    Circuit, name="dangling", status=CircuitStatus.PRODUCTION
                )
        assert excinfo.value.violations
        assert store.count(Circuit) == 0

    def test_inner_exception_rolls_back(self, store):
        with pytest.raises(RuntimeError):
            with DesignChange(store, employee_id="e1", ticket_id="T-1"):
                store.create(Region, name="r1")
                raise RuntimeError("tool crashed")
        assert store.count(Region) == 0

    def test_default_rules_pass_on_clean_build(self, store, env):
        from repro.design.cluster import build_cluster
        from repro.fbnet.models import ClusterGeneration

        with DesignChange(
            store, employee_id="e1", ticket_id="T-1", domain="pop",
            validators=list(DEFAULT_RULES),
        ) as change:
            build_cluster(
                store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
            )
        # The catalog's POP Gen2 is dual-stack and includes the TOR tier
        # of Figure 2: the 94 paper-counted v6-only objects grow with v4
        # prefixes/sessions, 8 TORs, and 32 TOR-PSW bundles.
        assert change.summary.created_total == 565
