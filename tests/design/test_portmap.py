"""Tests for the portmap change-plan write API (paper section 4.2.2)."""

import pytest

from repro.common.errors import DesignValidationError
from repro.design.portmap import PortmapChangePlan, PortmapSpec, execute_change_plan
from repro.fbnet.api import WriteApi
from repro.fbnet.models import (
    BgpSessionType,
    BgpV6Session,
    Circuit,
    LinkGroup,
    NetworkSwitch,
    PhysicalInterface,
    V6Prefix,
)
from repro.fbnet.query import Expr, Op


@pytest.fixture
def devices(store, env):
    return [
        store.create(
            NetworkSwitch, name=f"psw{i}",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        for i in (1, 2, 3)
    ]


def spec(a="psw1", z="psw2", circuits=2, **kwargs):
    kwargs.setdefault("v6_pool", "dc-p2p-v6")
    return PortmapSpec(a_device=a, z_device=z, circuits=circuits, **kwargs)


class TestPlanClassification:
    def test_operations(self):
        assert PortmapChangePlan(new=spec()).operation == "create"
        assert PortmapChangePlan(old=spec()).operation == "delete"
        assert PortmapChangePlan(old=spec(), new=spec(circuits=4)).operation == "update"
        assert PortmapChangePlan(old=spec(), new=spec(z="psw3")).operation == "migrate"

    def test_empty_plan_rejected(self):
        with pytest.raises(DesignValidationError):
            PortmapChangePlan()

    def test_self_portmap_rejected(self):
        with pytest.raises(DesignValidationError):
            spec(a="psw1", z="psw1")

    def test_zero_circuits_rejected(self):
        with pytest.raises(DesignValidationError):
            spec(circuits=0)


class TestCreateDelete:
    def test_create_builds_full_bundle(self, store, devices):
        report = execute_change_plan(store, PortmapChangePlan(new=spec()))
        assert report["operation"] == "create"
        assert store.count(LinkGroup) == 1
        assert store.count(Circuit) == 2
        assert store.count(PhysicalInterface) == 4
        assert store.count(V6Prefix) == 2

    def test_create_duplicate_rejected(self, store, devices):
        execute_change_plan(store, PortmapChangePlan(new=spec()))
        with pytest.raises(DesignValidationError, match="already exists"):
            execute_change_plan(store, PortmapChangePlan(new=spec()))

    def test_create_with_bgp(self, store, devices):
        execute_change_plan(
            store,
            PortmapChangePlan(
                new=spec(bgp=BgpSessionType.EBGP, local_asn=65001, peer_asn=65002)
            ),
        )
        assert store.count(BgpV6Session) == 1

    def test_unknown_device_rejected(self, store, devices):
        with pytest.raises(DesignValidationError, match="no device"):
            execute_change_plan(store, PortmapChangePlan(new=spec(a="ghost")))

    def test_delete_removes_everything(self, store, devices):
        execute_change_plan(
            store,
            PortmapChangePlan(
                new=spec(bgp=BgpSessionType.EBGP, local_asn=65001, peer_asn=65002)
            ),
        )
        report = execute_change_plan(store, PortmapChangePlan(old=spec()))
        assert report["operation"] == "delete"
        for model in (LinkGroup, Circuit, PhysicalInterface, V6Prefix, BgpV6Session):
            assert store.count(model) == 0

    def test_delete_missing_rejected(self, store, devices):
        with pytest.raises(DesignValidationError, match="no portmap"):
            execute_change_plan(store, PortmapChangePlan(old=spec()))


class TestUpdate:
    def test_grow(self, store, devices):
        execute_change_plan(store, PortmapChangePlan(new=spec(circuits=2)))
        report = execute_change_plan(
            store, PortmapChangePlan(old=spec(circuits=2), new=spec(circuits=4))
        )
        assert len(report["added"]) == 2
        assert store.count(Circuit) == 4
        assert store.count(PhysicalInterface) == 8

    def test_shrink(self, store, devices):
        execute_change_plan(store, PortmapChangePlan(new=spec(circuits=3)))
        report = execute_change_plan(
            store, PortmapChangePlan(old=spec(circuits=3), new=spec(circuits=1))
        )
        assert len(report["removed"]) == 2
        assert store.count(Circuit) == 1
        assert store.count(PhysicalInterface) == 2

    def test_update_reversed_orientation(self, store, devices):
        execute_change_plan(store, PortmapChangePlan(new=spec(circuits=1)))
        flipped = spec(a="psw2", z="psw1", circuits=2)
        execute_change_plan(store, PortmapChangePlan(old=flipped, new=flipped))
        assert store.count(Circuit) == 2


class TestMigrate:
    def test_migrate_moves_endpoint(self, store, devices):
        execute_change_plan(store, PortmapChangePlan(new=spec()))
        report = execute_change_plan(
            store, PortmapChangePlan(old=spec(), new=spec(z="psw3"))
        )
        assert report["operation"] == "migrate"
        assert report["kept_device"] == "psw1"
        bundle = store.all(LinkGroup)[0]
        assert bundle.name == "psw1--psw3"
        # Old endpoints' interfaces/prefixes are gone, new ones exist.
        for pif in store.all(PhysicalInterface):
            device = pif.related("linecard").related("device")
            assert device.name in ("psw1", "psw3")

    def test_migrate_both_endpoints_rejected(self, store, devices):
        execute_change_plan(store, PortmapChangePlan(new=spec()))
        with pytest.raises(DesignValidationError, match="exactly one endpoint"):
            execute_change_plan(
                store,
                PortmapChangePlan(
                    old=spec(),
                    new=PortmapSpec(
                        a_device="psw3", z_device="ghost", circuits=2,
                        v6_pool="dc-p2p-v6",
                    ),
                ),
            )


class TestViaWriteApi:
    def test_write_api_wraps_in_transaction(self, store, devices):
        api = WriteApi(store)
        api.apply_portmap_change_plan(PortmapChangePlan(new=spec()))
        assert store.count(LinkGroup) == 1
        # A failing plan rolls back completely.
        with pytest.raises(DesignValidationError):
            api.apply_portmap_change_plan(PortmapChangePlan(new=spec()))
        assert store.count(LinkGroup) == 1
