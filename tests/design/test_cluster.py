"""Tests for the cluster-generation catalog and life-cycle operations."""

import pytest

from repro.common.errors import DesignValidationError
from repro.design.cluster import (
    build_cluster,
    decommission_cluster,
    template_for_generation,
    upgrade_pop_cluster_in_place,
)
from repro.design.validation import validate
from repro.fbnet.models import (
    BgpV4Session,
    BgpV6Session,
    Circuit,
    Cluster,
    ClusterGeneration,
    ClusterStatus,
    Device,
    DeviceStatus,
    LinkGroup,
    V4Prefix,
)
from repro.fbnet.query import Expr, Op


class TestCatalog:
    def test_every_generation_has_a_template(self):
        for generation in ClusterGeneration:
            template = template_for_generation(generation)
            assert template.device_count() >= 4

    def test_gen3_is_v6_only(self):
        template = template_for_generation(ClusterGeneration.DC_GEN3)
        assert template.ip_scheme.v6_only

    def test_gen1_dc_is_l2(self):
        template = template_for_generation(ClusterGeneration.DC_GEN1)
        assert all(link.bgp is None for link in template.link_groups)

    def test_gen2_pop_bigger_than_gen1(self):
        gen1 = template_for_generation(ClusterGeneration.POP_GEN1)
        gen2 = template_for_generation(ClusterGeneration.POP_GEN2)
        assert gen2.device_count() > gen1.device_count()
        assert gen2.bundle_count() > gen1.bundle_count()


class TestBuild:
    def test_build_marks_production(self, store, env):
        result = build_cluster(
            store, "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
        )
        assert result.cluster.status is ClusterStatus.PRODUCTION
        assert all(
            device.status is DeviceStatus.PRODUCTION
            for device in result.all_devices()
        )
        assert validate(store) == []

    def test_v6_only_build_has_no_v4(self, store, env):
        build_cluster(
            store, "dc01.c03", env.datacenters["dc01"], ClusterGeneration.DC_GEN3
        )
        assert store.count(V4Prefix) == 0
        assert store.count(BgpV4Session) == 0
        assert store.count(BgpV6Session) > 0

    def test_l2_build_has_no_bgp(self, store, env):
        build_cluster(
            store, "dc01.c00", env.datacenters["dc01"], ClusterGeneration.DC_GEN1
        )
        assert store.count(BgpV6Session) == 0


class TestDecommission:
    def test_decommission_removes_all(self, store, env):
        result = build_cluster(
            store, "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
        )
        before = store.total_objects()
        deleted = decommission_cluster(store, result.cluster)
        assert store.count(Cluster) == 0
        assert store.count(Device) == 0
        assert store.count(Circuit) == 0
        assert store.count(LinkGroup) == 0
        assert sum(deleted.values()) > 100
        assert validate(store) == []

    def test_decommission_frees_address_space(self, store, env):
        from repro.design.ipam import IpAllocator

        result = build_cluster(
            store, "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
        )
        decommission_cluster(store, result.cluster)
        allocator = IpAllocator(store, env.pools["dc-p2p-v6"])
        assert allocator.utilization() == 0.0

    def test_other_clusters_untouched(self, store, env):
        keep = build_cluster(
            store, "dc01.keep", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
        )
        kill = build_cluster(
            store, "dc01.kill", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
        )
        keep_devices = store.count(Device, Expr("cluster", Op.EQUAL, keep.cluster.id))
        decommission_cluster(store, kill.cluster)
        assert (
            store.count(Device, Expr("cluster", Op.EQUAL, keep.cluster.id))
            == keep_devices
        )
        assert validate(store) == []


class TestInPlaceUpgrade:
    def test_pop_gen1_to_gen2(self, store, env):
        result = build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN1
        )
        upgraded = upgrade_pop_cluster_in_place(
            store, result.cluster, ClusterGeneration.POP_GEN2
        )
        assert upgraded.cluster.name == "pop01.c01"  # same site, same name
        assert upgraded.cluster.generation is ClusterGeneration.POP_GEN2
        assert store.count(Cluster) == 1
        assert validate(store) == []

    def test_dc_generation_rejected(self, store, env):
        result = build_cluster(
            store, "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN1
        )
        with pytest.raises(DesignValidationError, match="not a POP generation"):
            upgrade_pop_cluster_in_place(
                store, result.cluster, ClusterGeneration.DC_GEN2
            )

    def test_non_pop_cluster_rejected(self, store, env):
        result = build_cluster(
            store, "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
        )
        with pytest.raises(DesignValidationError, match="not a POP cluster"):
            upgrade_pop_cluster_in_place(
                store, result.cluster, ClusterGeneration.POP_GEN2
            )
