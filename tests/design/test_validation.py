"""Tests that each design rule trips on exactly the error it guards."""

import pytest

from repro.design.validation import (
    rule_agg_members_on_same_device,
    rule_bgp_asn_consistency,
    rule_bgp_sessions_share_subnet,
    rule_bundle_members_consistent,
    rule_circuit_endpoints,
    rule_no_overlapping_p2p_subnets,
    rule_p2p_prefixes_same_subnet,
    rule_port_capacity,
    validate,
)
from repro.fbnet.models import (
    AggregatedInterface,
    BgpSessionType,
    BgpV6Session,
    Circuit,
    CircuitStatus,
    Linecard,
    LinkGroup,
    NetworkSwitch,
    PhysicalInterface,
    V6Prefix,
)


@pytest.fixture
def rig(store, env):
    """Two devices with linecards, aggs, and a correct bundle + session."""
    lcm = env.profiles["Switch_Vendor2"].related("linecard_model")
    devices, aggs, pifs, lcs = [], [], [], []
    for i in (1, 2):
        device = store.create(
            NetworkSwitch, name=f"psw{i}",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        lc = store.create(Linecard, device=device, slot=1, linecard_model=lcm)
        agg = store.create(AggregatedInterface, name="ae0", device=device, number=0)
        pif = store.create(
            PhysicalInterface, name="et1/0", linecard=lc, port=0, agg_interface=agg
        )
        devices.append(device)
        aggs.append(agg)
        pifs.append(pif)
        lcs.append(lc)
    bundle = store.create(
        LinkGroup, name="psw1--psw2", a_agg_interface=aggs[0], z_agg_interface=aggs[1]
    )
    circuit = store.create(
        Circuit, name="c1", a_interface=pifs[0], z_interface=pifs[1],
        link_group=bundle, status=CircuitStatus.PRODUCTION,
    )
    a_pref = store.create(V6Prefix, prefix="2401:db00::/127", interface=aggs[0])
    z_pref = store.create(V6Prefix, prefix="2401:db00::1/127", interface=aggs[1])
    session = store.create(
        BgpV6Session, device=devices[0], peer_device=devices[1],
        session_type=BgpSessionType.EBGP, local_asn=65001, peer_asn=65002,
        local_ip="2401:db00::", peer_ip="2401:db00::1",
    )
    return {
        "devices": devices, "aggs": aggs, "pifs": pifs, "lcs": lcs,
        "bundle": bundle, "circuit": circuit, "session": session,
        "prefixes": (a_pref, z_pref),
    }


class TestCleanNetworkPasses:
    def test_no_violations(self, store, rig):
        assert validate(store) == []


class TestCircuitEndpoints:
    def test_missing_endpoint(self, store, rig):
        store.update(rig["circuit"], z_interface=None)
        violations = rule_circuit_endpoints(store)
        assert any("two physical interfaces" in v for v in violations)

    def test_planned_circuits_exempt(self, store, rig):
        store.update(
            rig["circuit"], z_interface=None, status=CircuitStatus.PLANNED
        )
        assert rule_circuit_endpoints(store) == []

    def test_same_device_endpoints(self, store, rig, env):
        lcm = env.profiles["Switch_Vendor2"].related("linecard_model")
        pif2 = store.create(
            PhysicalInterface, name="et1/1", linecard=rig["lcs"][0], port=1
        )
        store.update(rig["circuit"], z_interface=pif2)
        violations = rule_circuit_endpoints(store)
        assert any("both endpoints on device" in v for v in violations)

    def test_same_interface_twice(self, store, rig):
        store.update(rig["circuit"], z_interface=rig["pifs"][0])
        violations = rule_circuit_endpoints(store)
        assert any("same interface" in v for v in violations)


class TestPrefixRules:
    def test_mismatched_p2p_subnets(self, store, rig):
        a_pref, _ = rig["prefixes"]
        store.update(a_pref, prefix="2401:db00::8/127")
        violations = rule_p2p_prefixes_same_subnet(store)
        assert any("different subnets" in v for v in violations)

    def test_duplicate_prefix_on_other_family_object(self, store, rig):
        # The store's unique constraint already blocks exact duplicates;
        # the rule also reports them if present via direct load.
        assert rule_no_overlapping_p2p_subnets(store) == []


class TestMembershipRules:
    def test_agg_member_wrong_device(self, store, rig):
        store.update(rig["pifs"][0], agg_interface=rig["aggs"][1])
        violations = rule_agg_members_on_same_device(store)
        assert any("different device" in v for v in violations)

    def test_bundle_member_wrong_agg(self, store, rig, env):
        other_agg = store.create(
            AggregatedInterface, name="ae9", device=rig["devices"][0], number=9
        )
        store.update(rig["pifs"][0], agg_interface=other_agg)
        violations = rule_bundle_members_consistent(store)
        assert any("not on link group" in v for v in violations)


class TestBgpRules:
    def test_ebgp_must_share_subnet(self, store, rig):
        store.update(rig["session"], peer_ip="2401:db00::9")
        violations = rule_bgp_sessions_share_subnet(store)
        assert any("common connected subnet" in v for v in violations)

    def test_ebgp_equal_asn_rejected(self, store, rig):
        store.update(rig["session"], peer_asn=65001)
        violations = rule_bgp_asn_consistency(store)
        assert any("ASNs equal" in v for v in violations)

    def test_ibgp_differing_asn_rejected(self, store, rig):
        store.update(rig["session"], session_type=BgpSessionType.IBGP)
        violations = rule_bgp_asn_consistency(store)
        assert any("ASNs differ" in v for v in violations)


class TestPortCapacity:
    def test_over_capacity_flagged(self, store, env, rig):
        # Shrink the profile's capacity below current usage.
        profile = env.profiles["Switch_Vendor2"]
        small_lcm = store.create(
            type(profile.related("linecard_model")),
            name="LC-tiny", port_count=1, port_speed_mbps=10_000,
        )
        store.update(profile, slot_count=1, linecard_model=small_lcm)
        lcm = small_lcm
        device = rig["devices"][0]
        lc2 = store.create(Linecard, device=device, slot=2, linecard_model=lcm)
        store.create(PhysicalInterface, name="et2/0", linecard=lc2, port=0)
        violations = rule_port_capacity(store)
        assert any("exceed hardware" in v for v in violations)
