"""Tests for the backbone design tools: routers, circuits, meshes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DesignValidationError
from repro.design.backbone import BackboneDesignTool
from repro.design.validation import validate
from repro.fbnet.models import (
    BackboneRouter,
    BgpSessionType,
    BgpV6Session,
    Circuit,
    DatacenterRouter,
    LinkGroup,
    LoopbackInterface,
    MplsTunnel,
    PeeringRouter,
    PhysicalInterface,
    V6Prefix,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore
from repro.core.seeds import seed_environment


@pytest.fixture
def tool(store, env):
    return BackboneDesignTool(store)


@pytest.fixture
def routers(store, env, tool):
    site = env.backbone_sites["bbs01"]
    return [
        tool.add_router(f"bb{i}.bbs01", site, "Router_Vendor1") for i in (1, 2, 3)
    ]


def make_edge(store, env, tool, name, model=PeeringRouter):
    extra = {"pop": env.pops["pop01"]} if model is PeeringRouter else {
        "datacenter": env.datacenters["dc01"]
    }
    device = store.create(
        model, name=name, hardware_profile=env.profiles["Router_Vendor1"], **extra
    )
    loopback = store.create(LoopbackInterface, name="lo0", device=device, unit=0)
    prefix = tool._loopback_allocator().assign_host(loopback)
    store.update(device, loopback_v6=prefix.prefix.split("/")[0])
    return device


class TestRouters:
    def test_add_router_assigns_loopback(self, store, tool, routers):
        assert routers[0].loopback_v6 is not None
        assert store.count(LoopbackInterface) == 3
        # Loopbacks are distinct allocations.
        assert len({r.loopback_v6 for r in routers}) == 3

    def test_add_router_requires_backbone_site(self, store, env, tool):
        with pytest.raises(DesignValidationError, match="BackboneSite"):
            tool.add_router("bbX", env.pops["pop01"], "Router_Vendor1")

    def test_delete_router_cleans_everything(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        deleted = tool.delete_router("bb1.bbs01")
        assert deleted.get("BackboneRouter") == 1
        assert store.count(BackboneRouter) == 2
        # Its bundle, circuits, interfaces, prefixes are gone too.
        assert store.count(LinkGroup) == 0
        assert store.count(Circuit) == 0
        assert validate(store) == []

    def test_delete_unknown_router(self, tool):
        with pytest.raises(DesignValidationError, match="no device"):
            tool.delete_router("ghost")


class TestCircuits:
    @staticmethod
    def _p2p_prefixes(store):
        return store.count(V6Prefix, Expr("pool.name", Op.EQUAL, "backbone-p2p-v6"))

    def test_add_circuit_creates_bundle(self, store, tool, routers):
        report = tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        assert report["operation"] == "create"
        assert store.count(Circuit) == 1
        assert self._p2p_prefixes(store) == 2

    def test_add_circuit_grows_existing_bundle(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        report = tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        assert report["operation"] == "update"
        assert store.count(Circuit) == 2
        assert store.count(LinkGroup) == 1
        assert self._p2p_prefixes(store) == 2  # the bundle keeps one subnet

    def test_delete_circuit_last_removes_bundle(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        circuit = store.all(Circuit)[0]
        report = tool.delete_circuit(circuit.name)
        assert "bundle_removed" in report
        assert store.count(LinkGroup) == 0
        assert store.count(PhysicalInterface) == 0

    def test_delete_circuit_partial_keeps_bundle(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        circuit = store.all(Circuit)[0]
        tool.delete_circuit(circuit.name)
        assert store.count(LinkGroup) == 1
        assert store.count(Circuit) == 1

    def test_migrate_circuit(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        circuit = store.all(Circuit)[0]
        report = tool.migrate_circuit(circuit.name, "bb3.bbs01")
        assert report["bundle"] == "bb1.bbs01--bb3.bbs01"
        # The old bundle survives with its remaining member.
        assert store.count(LinkGroup) == 2
        assert validate(store) == []

    def test_migrate_sole_circuit_tears_down_old_bundle(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        circuit = store.all(Circuit)[0]
        tool.migrate_circuit(circuit.name, "bb3.bbs01")
        bundles = store.all(LinkGroup)
        assert [b.name for b in bundles] == ["bb1.bbs01--bb3.bbs01"]
        assert validate(store) == []

    def test_migrate_onto_own_a_end_rejected(self, store, tool, routers):
        tool.add_circuit("bb1.bbs01", "bb2.bbs01")
        circuit = store.all(Circuit)[0]
        with pytest.raises(DesignValidationError, match="own A-end"):
            tool.migrate_circuit(circuit.name, "bb1.bbs01")


class TestMesh:
    def test_join_creates_full_mesh(self, store, env, tool):
        nodes = [make_edge(store, env, tool, f"pr{i}.pop01") for i in range(4)]
        for node in nodes:
            tool.join_mesh(node)
        assert tool.mesh_is_complete()
        ibgp = [
            s for s in store.all(BgpV6Session)
            if s.session_type is BgpSessionType.IBGP
        ]
        assert len(ibgp) == 6  # 4*3/2
        assert store.count(MplsTunnel) == 12  # directional pairs

    def test_join_requires_loopback(self, store, env, tool):
        device = store.create(
            PeeringRouter, name="prX.pop01",
            hardware_profile=env.profiles["Router_Vendor1"], pop=env.pops["pop01"],
        )
        with pytest.raises(DesignValidationError, match="loopback"):
            tool.join_mesh(device)

    def test_join_idempotent(self, store, env, tool):
        nodes = [make_edge(store, env, tool, f"pr{i}.pop01") for i in range(3)]
        for node in nodes:
            tool.join_mesh(node)
        before = store.count(BgpV6Session)
        tool.join_mesh(nodes[0])
        assert store.count(BgpV6Session) == before
        assert tool.mesh_is_complete()

    def test_leave_restores_closure(self, store, env, tool):
        nodes = [make_edge(store, env, tool, f"pr{i}.pop01") for i in range(4)]
        for node in nodes:
            tool.join_mesh(node)
        deleted = tool.leave_mesh(nodes[0])
        assert deleted["BgpV6Session"] == 3
        assert deleted["MplsTunnel"] == 6
        # Closure over the remaining nodes: nodes[0] still has a loopback
        # so it still counts as an edge node; remove its loopback marker.
        store.update(nodes[0], loopback_v6=None)
        assert tool.mesh_is_complete()

    def test_mixed_pr_dr_mesh(self, store, env, tool):
        pr = make_edge(store, env, tool, "pr1.pop01", PeeringRouter)
        dr = make_edge(store, env, tool, "dr1.dc01", DatacenterRouter)
        tool.join_mesh(pr)
        tool.join_mesh(dr)
        assert tool.mesh_is_complete()


class TestMeshProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["join", "leave"]), st.integers(0, 4)),
            min_size=1,
            max_size=12,
        )
    )
    def test_mesh_closure_after_arbitrary_ops(self, ops):
        """After any join/leave sequence, sessions == pairs of members.

        Mesh membership is "is an edge node with a loopback" — joining
        assigns the loopback, leaving clears it (the tool fans sessions
        out to every loopback-bearing edge node).
        """
        store = ObjectStore()
        env = seed_environment(store)
        tool = BackboneDesignTool(store)
        nodes = []
        for i in range(5):
            device = store.create(
                PeeringRouter, name=f"pr{i}.pop01",
                hardware_profile=env.profiles["Router_Vendor1"],
                pop=env.pops["pop01"],
            )
            loopback = store.create(
                LoopbackInterface, name="lo0", device=device, unit=0
            )
            prefix = tool._loopback_allocator().assign_host(loopback)
            device._reserved_loopback = prefix.prefix.split("/")[0]
            nodes.append(device)
        members: set[int] = set()
        for op, index in ops:
            node = nodes[index]
            if op == "join" and index not in members:
                store.update(node, loopback_v6=node._reserved_loopback)
                tool.join_mesh(node)
                members.add(index)
            elif op == "leave" and index in members:
                tool.leave_mesh(node)
                store.update(node, loopback_v6=None)
                members.discard(index)
        ibgp = [
            s for s in store.all(BgpV6Session)
            if s.session_type is BgpSessionType.IBGP
        ]
        expected = len(members) * (len(members) - 1) // 2
        assert len(ibgp) == expected
        assert tool.mesh_is_complete()
