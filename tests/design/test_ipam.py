"""Tests (incl. property-based) for the IP allocators."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DesignValidationError
from repro.design.ipam import IpAllocator, p2p_pair
from repro.fbnet.models import (
    AggregatedInterface,
    NetworkSwitch,
    PrefixPool,
    V4Prefix,
    V6Prefix,
)
from repro.fbnet.store import ObjectStore
from repro.core.seeds import seed_environment


@pytest.fixture
def aggs(store, env):
    device = store.create(
        NetworkSwitch, name="psw1", hardware_profile=env.profiles["Switch_Vendor2"]
    )
    return [
        store.create(AggregatedInterface, name=f"ae{i}", device=device, number=i)
        for i in range(8)
    ]


class TestP2pPair:
    def test_v4(self):
        assert p2p_pair("10.0.0.0/31") == ("10.0.0.0/31", "10.0.0.1/31")

    def test_v6(self):
        assert p2p_pair("2401:db00::/127") == ("2401:db00::/127", "2401:db00::1/127")

    def test_rejects_wrong_length(self):
        with pytest.raises(DesignValidationError):
            p2p_pair("10.0.0.0/30")


class TestAllocator:
    def test_assign_p2p_same_subnet(self, store, env, aggs):
        allocator = IpAllocator(store, env.pools["pop-p2p-v6"])
        a, z = allocator.assign_p2p(aggs[0], aggs[1])
        a_net = ipaddress.ip_interface(a.prefix).network
        z_net = ipaddress.ip_interface(z.prefix).network
        assert a_net == z_net
        assert a.prefix != z.prefix

    def test_sequential_allocations_disjoint(self, store, env, aggs):
        allocator = IpAllocator(store, env.pools["pop-p2p-v4"])
        nets = set()
        for i in range(0, 8, 2):
            a, _z = allocator.assign_p2p(aggs[i], aggs[i + 1])
            nets.add(ipaddress.ip_interface(a.prefix).network)
        assert len(nets) == 4

    def test_fresh_allocator_respects_existing_state(self, store, env, aggs):
        """FBNet is the source of truth: a new allocator sees old grants."""
        first = IpAllocator(store, env.pools["pop-p2p-v6"])
        a1, _ = first.assign_p2p(aggs[0], aggs[1])
        second = IpAllocator(store, env.pools["pop-p2p-v6"])
        a2, _ = second.assign_p2p(aggs[2], aggs[3])
        assert ipaddress.ip_interface(a1.prefix).network != (
            ipaddress.ip_interface(a2.prefix).network
        )

    def test_exhaustion(self, store, env, aggs):
        pool = store.create(PrefixPool, name="tiny", prefix="10.9.0.0/30", version=4)
        allocator = IpAllocator(store, pool)
        allocator.assign_p2p(aggs[0], aggs[1])
        allocator.assign_p2p(aggs[2], aggs[3])
        with pytest.raises(DesignValidationError, match="exhausted"):
            allocator.assign_p2p(aggs[4], aggs[5])

    def test_assign_host(self, store, env, aggs):
        allocator = IpAllocator(store, env.pools["backbone-loopback-v6"])
        prefix = allocator.assign_host(aggs[0])
        assert prefix.prefix.endswith("/128")

    def test_utilization(self, store, env, aggs):
        pool = store.create(PrefixPool, name="tiny4", prefix="10.9.0.0/30", version=4)
        allocator = IpAllocator(store, pool)
        assert allocator.utilization() == 0.0
        allocator.assign_p2p(aggs[0], aggs[1])
        assert allocator.utilization() == 0.5

    def test_version_mismatch_rejected(self, store):
        pool = store.create(PrefixPool, name="bad", prefix="10.0.0.0/24", version=6)
        with pytest.raises(DesignValidationError, match="version"):
            IpAllocator(store, pool)

    def test_prefixlen_larger_than_pool_rejected(self, store, env):
        allocator = IpAllocator(store, env.pools["pop-p2p-v4"])
        with pytest.raises(DesignValidationError, match="larger than pool"):
            allocator.allocate_subnet(8)

    def test_allocated_subnets_reads_desired_models(self, store, env, aggs):
        allocator = IpAllocator(store, env.pools["pop-p2p-v6"])
        allocator.assign_p2p(aggs[0], aggs[1])
        assert len(allocator.allocated_subnets()) == 1
        assert store.count(V6Prefix) == 2  # one object per endpoint


class TestAllocatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(pairs=st.integers(min_value=1, max_value=40))
    def test_never_double_allocates(self, pairs):
        store = ObjectStore()
        env = seed_environment(store)
        device = store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        aggs = [
            store.create(AggregatedInterface, name=f"ae{i}", device=device, number=i)
            for i in range(2 * pairs)
        ]
        allocator = IpAllocator(store, env.pools["dc-p2p-v4"])
        for i in range(pairs):
            allocator.assign_p2p(aggs[2 * i], aggs[2 * i + 1])
        prefixes = [p.prefix for p in store.all(V4Prefix)]
        # Every assigned address is unique...
        assert len(set(prefixes)) == len(prefixes) == 2 * pairs
        # ...and every pair shares a subnet with only its partner.
        networks = [ipaddress.ip_interface(p).network for p in prefixes]
        assert len(set(networks)) == pairs
