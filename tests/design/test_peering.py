"""Tests for peering/transit turn-up and the section-8 policy rule."""

import pytest

from repro.common.errors import DesignValidationError
from repro.design.peering import (
    PeeringDesignTool,
    rule_external_sessions_have_import_policy,
)
from repro.design.validation import validate
from repro.devices.parsers import parse_config
from repro.fbnet.models import (
    AutonomousSystem,
    BgpV6Session,
    Device,
    IspPeer,
    PeeringLink,
    V6Prefix,
)
from repro.fbnet.query import Expr, Op


@pytest.fixture
def tool(store, env):
    return PeeringDesignTool(store)


@pytest.fixture
def pr(store, env):
    from repro.fbnet.models import PeeringRouter

    return store.create(
        PeeringRouter, name="pop01.pr1",
        hardware_profile=env.profiles["Router_Vendor1"], pop=env.pops["pop01"],
    )


class TestTurnUp:
    def test_models_everything(self, store, tool, pr):
        link = tool.turn_up(pr, "ExampleNet", 64512, kind="transit")
        assert store.count(AutonomousSystem, Expr("asn", Op.EQUAL, 64512)) == 1
        assert store.count(IspPeer) == 1
        session = link.related("bgp_session")
        assert session.peer_device is None  # the far end is not ours
        assert session.peer_asn == 64512
        # Our /127 half is a Desired prefix; both halves share the subnet.
        import ipaddress

        prefix = store.all(V6Prefix)[-1]
        network = ipaddress.ip_interface(prefix.prefix).network
        assert ipaddress.ip_address(session.peer_ip) in network

    def test_two_turnups_get_distinct_subnets(self, store, tool, pr):
        a = tool.turn_up(pr, "IspA", 64512)
        b = tool.turn_up(pr, "IspB", 64513)
        session_a = a.related("bgp_session")
        session_b = b.related("bgp_session")
        assert session_a.local_ip != session_b.local_ip
        assert validate(store) == []

    def test_same_isp_reused(self, store, tool, pr):
        tool.turn_up(pr, "IspA", 64512)
        tool.turn_up(pr, "IspA", 64512)
        assert store.count(IspPeer) == 1
        assert store.count(AutonomousSystem, Expr("asn", Op.EQUAL, 64512)) == 1
        assert store.count(PeeringLink) == 2

    def test_requires_peering_router(self, store, env, tool):
        from repro.fbnet.models import NetworkSwitch

        psw = store.create(
            NetworkSwitch, name="psw1",
            hardware_profile=env.profiles["Switch_Vendor2"],
        )
        with pytest.raises(DesignValidationError, match="PeeringRouters"):
            tool.turn_up(psw, "IspA", 64512)

    def test_bad_kind(self, store, tool, pr):
        with pytest.raises(DesignValidationError, match="peering/transit"):
            tool.turn_up(pr, "IspA", 64512, kind="magic")

    def test_turn_down_cleans_up(self, store, tool, pr):
        before = store.table_sizes()
        link = tool.turn_up(pr, "IspA", 64512)
        tool.turn_down(link)
        after = store.table_sizes()
        # The AS and IspPeer records persist (they're directory data);
        # the session, interface, prefix, and link are gone.
        for model_name in ("BgpV6Session", "PeeringLink", "V6Prefix"):
            assert after.get(model_name, 0) == before.get(model_name, 0)
        assert after.get("IspPeer", 0) == 1


class TestImportPolicies:
    def test_policy_validated(self, tool):
        with pytest.raises(DesignValidationError, match="bad prefix"):
            tool.create_import_policy("bad", ["not-a-cidr"])

    def test_policy_renders_into_config(self, store, env, tool, pr):
        policy = tool.create_import_policy(
            "isp-a-in", ["2a00:100::/32", "2a00:200::/32"]
        )
        tool.turn_up(pr, "IspA", 64512, import_policy=policy)
        from repro.configgen.generator import ConfigGenerator

        config = ConfigGenerator(store).generate_device(pr)
        assert "route-map isp-a-in" in config.text
        assert "ipv6 prefix-list isp-a-in permit 2a00:100::/32" in config.text
        parsed = parse_config(config.vendor, config.text)
        session = store.all(BgpV6Session)[-1]
        assert parsed.bgp_neighbors[session.peer_ip].import_policy == "isp-a-in"
        assert parsed.route_policies["isp-a-in"] == [
            "2a00:100::/32", "2a00:200::/32",
        ]

    def test_section8_rule_flags_unfiltered_external_sessions(
        self, store, tool, pr
    ):
        """The war story: an external session without its import policy."""
        tool.turn_up(pr, "IspRisky", 64999)  # no policy attached
        violations = rule_external_sessions_have_import_policy(store)
        assert len(violations) == 1
        assert "no import policy" in violations[0]

        # Attaching the policy clears the finding.
        policy = tool.create_import_policy("risky-in", ["2a00:300::/32"])
        session = store.all(BgpV6Session)[-1]
        store.update(session, import_policy=policy)
        assert rule_external_sessions_have_import_policy(store) == []

    def test_internal_fabric_sessions_exempt(self, pop_network):
        """Fabric eBGP (both ends ours) needs no import policy."""
        violations = rule_external_sessions_have_import_policy(pop_network.store)
        assert violations == []

    def test_policy_protected_while_referenced(self, store, tool, pr):
        policy = tool.create_import_policy("in-use", ["2a00:400::/32"])
        tool.turn_up(pr, "IspA", 64512, import_policy=policy)
        from repro.common.errors import IntegrityError

        with pytest.raises(IntegrityError, match="protected"):
            store.delete(policy)
