"""Tests for optimistic concurrent design changes (paper section 8).

The scenario under test is the paper's stale-config war story: Engineer A
and Engineer B both work against the same rack profile; whoever commits
second must be told their proposal is stale instead of silently clobbering
the other's design.
"""

import pytest

from repro.common.errors import DesignValidationError
from repro.design.concurrency import ChangeCoordinator, DesignConflict
from repro.fbnet.models import Rack, RackProfile, Region
from repro.fbnet.query import Expr, Op


@pytest.fixture
def coordinator(store):
    return ChangeCoordinator(store)


@pytest.fixture
def profile(store):
    return store.create(RackProfile, name="web-rack-x", downlinks_per_rack=4)


class TestHappyPath:
    def test_commit_applies_and_summarizes(self, store, coordinator):
        proposal = coordinator.propose(
            employee_id="a", ticket_id="T-1", description="add region",
            touches=set(),
            mutate=lambda s: s.create(Region, name="r-new"),
        )
        summary = coordinator.commit(proposal)
        assert summary.created == {"Region": 1}
        assert store.count(Region, Expr("name", Op.EQUAL, "r-new")) == 1
        assert coordinator.committed == [proposal]

    def test_non_overlapping_proposals_both_land(self, store, coordinator, profile):
        a = coordinator.propose(
            employee_id="a", ticket_id="T-1", description="region one",
            touches=set(),
            mutate=lambda s: s.create(Region, name="one"),
        )
        b = coordinator.propose(
            employee_id="b", ticket_id="T-2", description="region two",
            touches=set(),
            mutate=lambda s: s.create(Region, name="two"),
        )
        coordinator.commit(a)
        coordinator.commit(b)  # touches nothing A changed: no conflict
        assert store.count(Region) == 2

    def test_requires_identity(self, coordinator):
        with pytest.raises(DesignValidationError):
            coordinator.propose(
                employee_id="", ticket_id="T", description="x",
                touches=set(), mutate=lambda s: None,
            )


class TestConflicts:
    def test_paper_scenario_second_writer_rejected(self, store, coordinator, profile):
        """Engineers A and B race on the same rack profile (section 8)."""
        key = ("RackProfile", profile.id)

        engineer_a = coordinator.propose(
            employee_id="engineer-a", ticket_id="T-A",
            description="bump downlinks to 8",
            touches={key},
            mutate=lambda s: s.update(
                s.get(RackProfile, profile.id), downlinks_per_rack=8
            ),
        )
        engineer_b = coordinator.propose(
            employee_id="engineer-b", ticket_id="T-B",
            description="bump downlinks to 12",
            touches={key},
            mutate=lambda s: s.update(
                s.get(RackProfile, profile.id), downlinks_per_rack=12
            ),
        )
        coordinator.commit(engineer_b)  # B lands first this time
        with pytest.raises(DesignConflict) as excinfo:
            coordinator.commit(engineer_a)
        assert "rebase" in str(excinfo.value)
        assert excinfo.value.conflicts
        # B's design survived; A's never half-applied.
        assert profile.downlinks_per_rack == 12
        assert coordinator.rejected

    def test_delete_under_proposal_detected(self, store, coordinator, profile):
        proposal = coordinator.propose(
            employee_id="a", ticket_id="T-1", description="use profile",
            touches={("RackProfile", profile.id)},
            mutate=lambda s: None,
        )
        store.delete(profile)
        with pytest.raises(DesignConflict):
            coordinator.commit(proposal)

    def test_unrelated_changes_do_not_conflict(self, store, coordinator, profile):
        proposal = coordinator.propose(
            employee_id="a", ticket_id="T-1", description="touch profile",
            touches={("RackProfile", profile.id)},
            mutate=lambda s: s.update(
                s.get(RackProfile, profile.id), downlinks_per_rack=6
            ),
        )
        store.create(Region, name="elsewhere")  # concurrent but unrelated
        coordinator.commit(proposal)
        assert profile.downlinks_per_rack == 6

    def test_rebase_reruns_against_current_state(self, store, coordinator, profile):
        key = ("RackProfile", profile.id)

        def bump(s):
            current = s.get(RackProfile, profile.id)
            s.update(current, downlinks_per_rack=current.downlinks_per_rack + 1)

        stale = coordinator.propose(
            employee_id="a", ticket_id="T-1", description="increment",
            touches={key}, mutate=bump,
        )
        store.update(profile, downlinks_per_rack=10)  # concurrent write
        with pytest.raises(DesignConflict):
            coordinator.commit(stale)
        fresh = coordinator.rebase(stale)
        coordinator.commit(fresh)
        # The rebased change applied on top of the concurrent one: 10 + 1.
        assert profile.downlinks_per_rack == 11

    def test_failed_mutate_leaves_no_partial_state(self, store, coordinator):
        def exploding(s):
            s.create(Region, name="partial")
            raise RuntimeError("tool bug")

        proposal = coordinator.propose(
            employee_id="a", ticket_id="T-1", description="explodes",
            touches=set(), mutate=exploding,
        )
        with pytest.raises(RuntimeError):
            coordinator.commit(proposal)
        assert store.count(Region) == 0
