"""The per-device state machine: legal edges, bounded retries, cooldown."""

from __future__ import annotations

import pytest

from repro import obs
from repro.fbnet.models import EventSeverity
from repro.remediation import (
    ACTION_DRAIN,
    ACTION_REGEN_REPUSH,
    ACTION_RESTORE_GOLDEN,
    ALLOWED_TRANSITIONS,
    DeviceHealth,
    DeviceTracker,
    RemediationPolicy,
    TransitionError,
)

pytestmark = pytest.mark.remediation


class TestTransitions:
    def test_detect_act_verify_walk(self):
        tracker = DeviceTracker("psw1")
        tracker.transition(DeviceHealth.SUSPECT, now=1.0, reason="drift")
        tracker.transition(DeviceHealth.REMEDIATING, now=2.0)
        tracker.transition(DeviceHealth.VERIFIED, now=3.0)
        assert tracker.state is DeviceHealth.VERIFIED
        assert [h[1:3] for h in tracker.history] == [
            ("healthy", "suspect"),
            ("suspect", "remediating"),
            ("remediating", "verified"),
        ]

    def test_redetection_after_verified(self):
        tracker = DeviceTracker("psw1", state=DeviceHealth.VERIFIED)
        tracker.transition(DeviceHealth.SUSPECT, now=1.0)
        assert tracker.state is DeviceHealth.SUSPECT

    def test_illegal_edges_rejected(self):
        tracker = DeviceTracker("psw1")
        with pytest.raises(TransitionError, match="illegal transition"):
            tracker.transition(DeviceHealth.REMEDIATING, now=0.0)
        with pytest.raises(TransitionError):
            tracker.transition(DeviceHealth.VERIFIED, now=0.0)
        # the failed transition left state untouched
        assert tracker.state is DeviceHealth.HEALTHY

    def test_quarantine_is_terminal(self):
        tracker = DeviceTracker("psw1", state=DeviceHealth.QUARANTINED)
        for target in DeviceHealth:
            if target is DeviceHealth.QUARANTINED:
                continue
            with pytest.raises(TransitionError):
                tracker.transition(target, now=0.0)

    def test_table_has_no_healthy_to_remediating_shortcut(self):
        # Every path into REMEDIATING goes through SUSPECT — an action
        # without a recorded detection is structurally impossible.
        sources = {a for a, b in ALLOWED_TRANSITIONS if b is DeviceHealth.REMEDIATING}
        assert sources == {DeviceHealth.SUSPECT}

    def test_transitions_counted(self):
        tracker = DeviceTracker("psw1")
        tracker.transition(DeviceHealth.SUSPECT, now=1.0)
        series = [
            s
            for s in obs.registry().series()
            if s.name == "remediation.transition"
        ]
        assert sum(s.value for s in series) == 1
        assert series[0].labels == {
            "from_state": "healthy", "to_state": "suspect",
        }

    def test_cooldown_window(self):
        tracker = DeviceTracker("psw1", cooldown_until=100.0)
        assert tracker.in_cooldown(99.9)
        assert not tracker.in_cooldown(100.0)

    def test_settled_states(self):
        settled = {
            state
            for state in DeviceHealth
            if DeviceTracker("x", state=state).settled
        }
        assert settled == {
            DeviceHealth.HEALTHY,
            DeviceHealth.VERIFIED,
            DeviceHealth.QUARANTINED,
        }


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemediationPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RemediationPolicy(cooldown_seconds=-1.0)

    def test_syslog_always_drains(self):
        policy = RemediationPolicy()
        for attempts in range(3):
            assert (
                policy.select_action(source="syslog", attempts=attempts)
                == ACTION_DRAIN
            )

    def test_drift_escalates_from_restore_to_regen(self):
        policy = RemediationPolicy()
        assert (
            policy.select_action(source="drift", attempts=0)
            == ACTION_RESTORE_GOLDEN
        )
        assert (
            policy.select_action(source="drift", attempts=1)
            == ACTION_REGEN_REPUSH
        )

    def test_default_drain_severities(self):
        policy = RemediationPolicy()
        assert policy.drain_severities == (
            EventSeverity.CRITICAL,
            EventSeverity.MAJOR,
        )
        assert EventSeverity.WARNING not in policy.drain_severities
