"""Seeded fault storms converge — bit-for-bit identically at any pool size.

The acceptance storm: config drift on all 20 devices of a DC_GEN2
cluster, an urgent-syslog burst, flapping reachability (crash + timed
reboot), and seeded push failures — the remediation loop must walk every
device to ``verified`` or ``quarantined`` (never parked mid-transition,
never a mixed-config device), with every automatic action attributed in
the flight recorder, and the whole run reproducing byte-for-byte under
any ``ROBOTRON_WORKERS``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import Robotron, faults, obs, parallel, seed_environment
from repro.faults.plan import FaultPlan
from repro.fbnet.models import ClusterGeneration, DeploymentRecord
from repro.obs import flight
from repro.remediation import RemediationPolicy

from tests.remediation.conftest import manual_change

pytestmark = [pytest.mark.remediation, pytest.mark.parallel]

MAX_SWEEPS = 30
BURST = 5      # devices hit by the urgent-syslog burst
FLAPPERS = 2   # devices that crash and reboot mid-storm


def run_storm(seed: int):
    """One full storm from a clean process-global state.

    Returns (robotron, report, dump) where ``dump`` is the canonical
    JSON of the flight recorder's deterministic fields.
    """
    obs.reset()
    faults.uninstall()
    rng = random.Random(seed)
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
    )
    robotron.boot_fleet()
    provisioned = robotron.provision_cluster(cluster)
    assert provisioned.ok, provisioned.failed
    robotron.attach_monitoring()
    robotron.attach_remediation(
        RemediationPolicy(bake_seconds=0.0, cooldown_seconds=120.0)
    )
    names = sorted(robotron.fleet.devices)
    assert len(names) >= 20

    # The storm: every device drifts; a seeded subset screams; a seeded
    # subset crashes (rebooting, loudly, three simulated minutes in);
    # and every tenth push — decided per task key — fails.
    for name in names:
        manual_change(robotron.fleet.get(name))
    for name in sorted(rng.sample(names, BURST)):
        robotron.fleet.get(name).emit_syslog(
            "HW", "Critical Power lost on PSU 1"
        )
    for name in sorted(rng.sample(names, FLAPPERS)):
        device = robotron.fleet.get(name)
        device.crash()
        robotron.scheduler.call_at(
            robotron.scheduler.clock.now + 180.0, device.boot,
            name=f"reboot-{name}",
        )
    plan = FaultPlan(seed=seed)
    plan.inject("deploy.push", probability=0.1, times=10)
    robotron.install_fault_plan(plan)

    report = robotron.remediation_loop(max_sweeps=MAX_SWEEPS, period=60.0)
    # Captured before the per-test obs reset wipes the ring: the events
    # and canonical dump outlive the run for module-scoped assertions.
    events = flight.timeline()
    dump = json.dumps(flight.deterministic_dump(), sort_keys=True)
    faults.uninstall()
    return robotron, report, dump, events


@pytest.fixture(scope="module")
def storm_1337():
    """The default-seed storm, shared read-only across this module."""
    return run_storm(1337)


class TestStormConvergence:
    def test_converges_within_budget(self, chaos_seed):
        _, report, _, _ = run_storm(chaos_seed)
        assert report.converged, report.states
        assert report.sweeps <= MAX_SWEEPS

    def test_every_device_verified_or_quarantined(self, storm_1337):
        _, report, _, _ = storm_1337
        assert len(report.states) >= 20
        assert set(report.states.values()) <= {"verified", "quarantined"}
        assert report.verified or report.quarantined

    def test_no_mixed_config_device(self, storm_1337):
        robotron, report, _, _ = storm_1337
        # Guarded rollouts persisted their landing state: every touched
        # device ended fully-new or fully-LKG, never in between.
        for record in robotron.store.all(DeploymentRecord):
            for name, versions in record.device_versions.items():
                assert versions["state"] != "mixed", (record, name)
        # And verified devices genuinely run their golden config.
        for name in report.verified:
            device = robotron.fleet.get(name)
            golden = robotron.generator.golden[name]
            assert device.running_config == golden.text, name

    def test_every_action_attributed(self, storm_1337):
        _, report, _, events = storm_1337
        assert report.actions
        action_events = [e for e in events if e.kind == "remediation.action"]
        assert len(action_events) == len(report.actions)
        for event in action_events:
            assert event.change_id, event
            lineage_kinds = {
                e.kind for e in events if e.change_id == event.change_id
            }
            assert "change.open" in lineage_kinds
            detects = [
                e
                for e in events
                if e.kind == "remediation.detect"
                and e.device == event.device
                and e.seq < event.seq
            ]
            assert detects, f"unattributed action on {event.device}"


class TestWorkerCountDeterminism:
    def storm_at(self, worker_count: int, seed: int):
        with parallel.workers(worker_count):
            _, report, dump, _ = run_storm(seed)
        return report, dump

    def test_serial_and_pool_of_four_identical(self, chaos_seed):
        serial_report, serial_dump = self.storm_at(1, chaos_seed)
        pooled_report, pooled_dump = self.storm_at(4, chaos_seed)
        assert pooled_report.states == serial_report.states
        assert pooled_report.actions == serial_report.actions
        assert pooled_dump == serial_dump

    def test_rerun_reproduces_itself(self, chaos_seed):
        # Whatever ROBOTRON_WORKERS the environment picked (the CI chaos
        # matrix sets 1 and 4), the storm reproduces bit-for-bit.
        first = run_storm(chaos_seed)[2]
        second = run_storm(chaos_seed)[2]
        assert first == second
