"""Remediation-suite fixtures.

The chaos seed comes from the environment so CI's chaos matrix can run
the whole suite under several fixed seeds (and several worker counts)
and every failure reproduces byte-for-byte:
``CHAOS_SEED=20160816 ROBOTRON_WORKERS=4 pytest -m remediation``.
"""

from __future__ import annotations

import os

import pytest

from repro.fbnet.models import ClusterGeneration


@pytest.fixture
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "1337"))


def manual_change(device) -> str:
    """An engineer edits a device out of band (valid, vendor-aware)."""
    if device.vendor == "vendor1":
        hacked = device.running_config + "interface et9/9\n no shutdown\n!\n"
    else:
        hacked = device.running_config + "interfaces {\n    et9/9 {\n    }\n}\n"
    device.commit(hacked)
    return hacked


@pytest.fixture
def dc_network(robotron):
    """A provisioned, monitored 20-device DC cluster (4 DR + 4 PSW + 12 TOR)."""
    env = robotron.env
    cluster = robotron.build_cluster(
        "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
    )
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    assert report.ok, report.failed
    robotron.attach_monitoring()
    robotron.cluster = cluster  # type: ignore[attr-defined]
    return robotron
