"""The closed loop on a live POP cluster: detect → act → verify."""

from __future__ import annotations

import pytest

from repro import obs
from repro.faults.plan import FaultPlan
from repro.fbnet.models import Device, DrainState
from repro.fbnet.query import Expr, Op
from repro.obs import flight
from repro.remediation import DeviceHealth, RemediationPolicy

from tests.remediation.conftest import manual_change

pytestmark = pytest.mark.remediation

TARGET = "pop01.c01.psw1"


def fast_policy(**overrides):
    defaults = dict(bake_seconds=0.0, cooldown_seconds=60.0)
    defaults.update(overrides)
    return RemediationPolicy(**defaults)


@pytest.fixture
def looped(pop_network):
    pop_network.attach_remediation(fast_policy())
    return pop_network


class TestDriftLoop:
    def test_drift_restored_and_verified(self, looped):
        device = looped.fleet.get(TARGET)
        manual_change(device)
        report = looped.remediation_loop(max_sweeps=5)
        assert report.converged
        assert report.states[TARGET] == "verified"
        assert [a.action for a in report.actions] == ["restore_golden"]
        assert device.running_config == looped.generator.golden[TARGET].text

    def test_clean_fleet_converges_immediately(self, looped):
        report = looped.remediation_loop(max_sweeps=5)
        assert report.converged
        assert report.sweeps == 1
        assert report.actions == []

    def test_repeat_detections_deduplicated(self, looped):
        engine = looped.remediation
        device = looped.fleet.get(TARGET)
        manual_change(device)
        # Passive check already fired; two more explicit checks pile on.
        looped.confmon.check_device(TARGET)
        looped.confmon.check_device(TARGET)
        engine._ingest()
        tracker = engine.trackers[TARGET]
        assert tracker.state is DeviceHealth.SUSPECT
        # One accepted transition; the rest counted as ignored.
        ignored = sum(
            s.value
            for s in obs.registry().series()
            if s.name == "remediation.detect"
            and s.labels.get("outcome") == "ignored"
        )
        assert ignored >= 2


class TestSyslogLoop:
    def test_urgent_syslog_drains_and_quarantines(self, looped):
        looped.fleet.get(TARGET).emit_syslog("HW", "Critical Power lost on PSU 1")
        report = looped.remediation_loop(max_sweeps=5)
        assert report.converged
        assert report.states[TARGET] == "quarantined"
        assert [a.action for a in report.actions] == ["drain"]
        model = looped.store.first(Device, Expr("name", Op.EQUAL, TARGET))
        assert model.drain_state is DrainState.DRAINED

    def test_ignored_severity_stays_healthy(self, looped):
        looped.fleet.get(TARGET).emit_syslog("SYS", "Cannot find NTP server")
        report = looped.remediation_loop(max_sweeps=3)
        assert report.converged
        assert report.actions == []
        assert TARGET not in report.states

    def test_syslog_escalates_pending_drift(self, looped):
        device = looped.fleet.get(TARGET)
        manual_change(device)
        device.emit_syslog("HW", "Critical Power lost on PSU 1")
        report = looped.remediation_loop(max_sweeps=5)
        # The urgent signal wins: drain, not a config re-push.
        assert report.states[TARGET] == "quarantined"
        assert [a.action for a in report.actions] == ["drain"]


class TestBoundedRetry:
    def test_persistent_failure_quarantines_after_budget(self, looped):
        engine = looped.remediation
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET)  # every push fails
        manual_change(looped.fleet.get(TARGET))
        with plan.installed():
            report = looped.remediation_loop(max_sweeps=20)
        assert report.converged
        tracker = engine.trackers[TARGET]
        assert tracker.state is DeviceHealth.QUARANTINED
        assert tracker.attempts == engine.policy.max_attempts
        assert [a.action for a in report.actions] == [
            "restore_golden", "regen_repush", "regen_repush",
        ]
        assert not any(a.ok for a in report.actions)

    def test_no_oscillation_after_quarantine(self, looped):
        engine = looped.remediation
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET)
        manual_change(looped.fleet.get(TARGET))
        with plan.installed():
            looped.remediation_loop(max_sweeps=20)
            # The device is still drifted and still failing — but the
            # engine owes it nothing further: no action ever again.
            more = engine.step()
        assert more == []
        assert engine.trackers[TARGET].state is DeviceHealth.QUARANTINED

    def test_cooldown_spaces_attempts(self, looped):
        engine = looped.remediation
        # A transient outage: pushes fail for the next 30 simulated
        # seconds, then the fleet heals (guarded pushes run in pool
        # tasks, so the window — not a per-scope ``times`` budget — is
        # what makes the fault transient).
        now = looped.scheduler.clock.now
        plan = FaultPlan(seed=1337)
        plan.inject("deploy.push", device=TARGET, stop=now + 30.0)
        looped.install_fault_plan(plan)
        manual_change(looped.fleet.get(TARGET))
        first = engine.step()
        assert [a.ok for a in first] == [False]
        # Immediately after the failure the device is cooling down.
        assert engine.step() == []
        looped.run(engine.policy.cooldown_seconds + 1)
        second = engine.step()
        assert [a.ok for a in second] == [True]
        assert engine.trackers[TARGET].state is DeviceHealth.VERIFIED


class TestAttribution:
    def test_action_causes_point_at_detection_change(self, looped):
        with flight.change_context("operator incident response") as context:
            looped.fleet.get(TARGET).emit_syslog(
                "HW", "Critical Power lost on PSU 1"
            )
        report = looped.remediation_loop(max_sweeps=5)
        action = report.actions[0]
        assert action.change_id and action.change_id != context.change_id
        opened = [
            e
            for e in flight.for_change(action.change_id)
            if e.kind == "change.open"
        ]
        assert len(opened) == 1
        assert f"causes: {context.change_id}" in opened[0].detail

    def test_every_action_has_a_change_and_a_detection(self, looped):
        manual_change(looped.fleet.get(TARGET))
        report = looped.remediation_loop(max_sweeps=5)
        for action in report.actions:
            assert action.change_id
            lineage = flight.for_change(action.change_id)
            kinds = {e.kind for e in lineage}
            assert "remediation.action" in kinds
            detects = [
                e
                for e in flight.for_device(action.device)
                if e.kind == "remediation.detect"
            ]
            assert detects, "action without a recorded detection"

    def test_guarded_rollout_events_join_action_change(self, looped):
        manual_change(looped.fleet.get(TARGET))
        report = looped.remediation_loop(max_sweeps=5)
        lineage = flight.for_change(report.actions[0].change_id)
        kinds = {e.kind for e in lineage}
        # The action's single change id spans intent, deployment, and
        # the monitoring verdict — the full pipeline, per the paper.
        assert {"remediation.action", "deploy.rollout", "deploy.gate",
                "remediation.verify"} <= kinds
