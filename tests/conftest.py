"""Shared fixtures: stores, seeded environments, and provisioned networks."""

from __future__ import annotations

import pytest

from repro import Robotron, faults, obs, seed_environment
from repro.fbnet.models import ClusterGeneration
from repro.fbnet.store import ObjectStore
from repro.simulation.clock import EventScheduler


@pytest.fixture(autouse=True)
def _reset_obs():
    """Give every test a clean, enabled global telemetry state."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(autouse=True)
def _reset_faults():
    """No fault plan leaks into (or out of) any test."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def store() -> ObjectStore:
    """An empty FBNet store."""
    return ObjectStore()


@pytest.fixture
def scheduler() -> EventScheduler:
    return EventScheduler()


@pytest.fixture
def env(store):
    """A store seeded with the standard catalog (profiles, pools, sites)."""
    return seed_environment(store)


@pytest.fixture
def robotron():
    """A Robotron instance over a freshly seeded store."""
    instance = Robotron()
    instance.env = seed_environment(instance.store)  # type: ignore[attr-defined]
    return instance


@pytest.fixture
def pop_network(robotron):
    """A provisioned, monitored 4-post POP cluster (the paper's example)."""
    env = robotron.env
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    report = robotron.provision_cluster(cluster)
    assert report.ok, report.failed
    robotron.attach_monitoring()
    robotron.cluster = cluster  # type: ignore[attr-defined]
    return robotron
