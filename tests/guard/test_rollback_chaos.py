"""Guarded rollouts under a seeded fault plan (rollback chaos acceptance).

One cycle provisions the paper's 14-device POP, lands a reviewed template
bump (the canonical Robotron change vector), then attempts two guarded
rollouts while faults fire:

* rollout 1 pushes the new configs fleet-wide under a circuit breaker
  while every psw push fails persistently — the breaker opens in the
  canary phase and the rollout restores every touched device to its
  last-known-good version;
* rollout 2 retries the ToRs only, with one ToR crashing mid-bake — the
  reachability gate fails, the live ToR is restored, and the dead one is
  recorded loudly as a failed rollback (still never a silent third
  state).

The invariant under any seed: every device ends on the new config or its
recorded LKG, the rollback/gate counters fire, a ``DeploymentRecord``
row captures each outcome, and the whole run reproduces bit-for-bit
from its seed.
"""

from __future__ import annotations

import hashlib

import pytest

from repro import Robotron, faults, obs, seed_environment
from repro.deploy.phases import PhaseSpec
from repro.faults import FaultPlan, RetryPolicy
from repro.fbnet.models import ClusterGeneration, DeploymentRecord, Device

pytestmark = pytest.mark.guard

COUNTERS = (
    "faults.injected",
    "deploy.retry",
    "deploy.rollback",
    "deploy.gate_fail",
    "deploy.circuit_open",
    "deploy.lkg_restore",
)

ALLOWED_STATES = {"new", "lkg"}  # the no-third-state invariant

PHASES = [
    PhaseSpec(name="canary", percentage=25),
    PhaseSpec(name="rest", percentage=100),
]


def counter_total(name: str) -> float:
    return sum(
        series.value
        for series in obs.registry().series()
        if series.name == name and series.kind == "counter"
    )


def build_plan(seed: int) -> FaultPlan:
    plan = FaultPlan(seed=seed)
    # Every psw push fails persistently: rollout 1's breaker must open.
    plan.inject("deploy.push", role="psw")
    # Seeded collection noise: where different seeds make different runs.
    # Retries absorb it (or the poll records nothing), so it can never
    # change the rollouts' control flow — only the telemetry trail.
    plan.inject("monitoring.collect", probability=0.05)
    return plan


def bump_templates(robotron) -> None:
    """Land a reviewed v2 of both vendors' system templates."""
    repo = robotron.generator.configerator
    for vendor in ("vendor1", "vendor2"):
        path = f"{vendor}/system.tmpl"
        change = repo.propose(
            path,
            "# golden v2\n" + repo.get(path),
            author="alice",
            note="golden v2 rollout",
        )
        repo.approve(change.change_id, reviewer="bob")


def run_guarded_cycle(seed: int) -> dict:
    """One full rollback-chaos run; returns a comparable fingerprint."""
    obs.reset()
    faults.uninstall()
    robotron = Robotron(retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0))
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    provision = robotron.provision_cluster(cluster)
    assert provision.ok, provision.failed
    robotron.attach_monitoring()
    robotron.run_minutes(2)

    # The change under deployment: a reviewed template bump, regenerated
    # into new golden configs for all 14 devices.
    bump_templates(robotron)
    configs = robotron.generator.generate_devices(list(robotron.store.all(Device)))

    plan = build_plan(seed)
    robotron.install_fault_plan(plan)
    try:
        # Rollout 1: fleet-wide, breaker opens on the failing psws.
        first = robotron.guarded_deploy(
            configs, PHASES, max_failure_ratio=0.25, bake_seconds=120.0
        )

        # Rollout 2: ToRs only; one ToR dies mid-bake.
        tor_configs = {
            name: config for name, config in configs.items() if ".tor" in name
        }
        victim = sorted(tor_configs)[0]
        robotron.scheduler.call_after(
            60.0, robotron.fleet.get(victim).crash, name="chaos-tor-crash"
        )
        second = robotron.guarded_deploy(
            tor_configs, PHASES, bake_seconds=120.0
        )
    finally:
        faults.uninstall()

    records = robotron.store.all(DeploymentRecord)
    return {
        "injections": list(plan.injections),
        "counters": {name: counter_total(name) for name in COUNTERS},
        "outcomes": [result.outcome.value for result in (first, second)],
        "reasons": [result.rollback_reason for result in (first, second)],
        "restored": [sorted(result.restored) for result in (first, second)],
        "failed": [sorted(result.report.failed) for result in (first, second)],
        "skipped": [sorted(result.report.skipped) for result in (first, second)],
        "records": [
            (
                record.intent_hash,
                record.outcome.value,
                record.rollback_reason,
                record.devices_total,
                record.devices_rolled_back,
                record.device_versions,
                record.phases,
            )
            for record in records
        ],
        "device_states": {
            name: entry["state"]
            for record in records
            for name, entry in record.device_versions.items()
        },
        "config_shas": {
            name: hashlib.sha256(device.running_config.encode()).hexdigest()
            for name, device in sorted(robotron.fleet.devices.items())
        },
        "clock": robotron.scheduler.clock.now,
    }


class TestRollbackChaos:
    def test_same_seed_reproduces_bit_for_bit(self, chaos_seed):
        assert run_guarded_cycle(chaos_seed) == run_guarded_cycle(chaos_seed)

    def test_no_rollout_ends_mixed_state(self, chaos_seed):
        result = run_guarded_cycle(chaos_seed)
        # The acceptance invariant: every device in every rollout record
        # ended on the new config or its recorded last-known-good.
        for record in result["records"]:
            states = {entry["state"] for entry in record[5].values()}
            assert states <= ALLOWED_STATES, record

    def test_faults_are_detected_and_rolled_back(self, chaos_seed):
        result = run_guarded_cycle(chaos_seed)

        # Rollout 1: the persistent psw faults fired and were retried.
        points = {point for _, point, _ in result["injections"]}
        assert "deploy.push" in points
        assert result["counters"]["deploy.retry"] >= 4  # 2 psws x 2 retries
        # The breaker opened in the canary and everything touched was
        # restored: the fleet converged to fully-previous.
        assert result["outcomes"][0] == "rolled_back"
        assert "circuit breaker opened in canary" in result["reasons"][0]
        assert result["counters"]["deploy.circuit_open"] == 1
        first_states = {
            entry["state"] for entry in result["records"][0][5].values()
        }
        assert first_states == {"lkg"}

        # Rollout 2: the ToR crash tripped the reachability gate; the
        # live ToR was restored, the dead one recorded as stuck-on-new.
        assert result["outcomes"][1] == "rollback_failed"
        assert "reachability" in result["reasons"][1]
        assert result["counters"]["deploy.gate_fail"] == 1
        second_versions = result["records"][1][5]
        victim = sorted(second_versions)[0]
        assert second_versions[victim]["state"] == "new"
        assert all(
            entry["state"] == "lkg"
            for name, entry in second_versions.items()
            if name != victim
        )

        # The rollback trail is in the telemetry.
        assert result["counters"]["deploy.rollback"] >= 3
        assert result["counters"]["deploy.lkg_restore"] >= 3
        assert result["counters"]["faults.injected"] >= 6

    def test_different_seeds_diverge(self):
        assert run_guarded_cycle(21) != run_guarded_cycle(22)
