"""Unit tests for the deployment guard: LKG, gates, rollback, records."""

import pytest

from repro import obs
from repro.common.errors import DeploymentError
from repro.deploy.deployer import Deployer
from repro.deploy.guard import DeploymentGuard, HealthGate, intent_hash
from repro.deploy.phases import PhaseSpec
from repro.devices.fleet import DeviceFleet
from repro.fbnet.models import DeploymentOutcome, DeploymentRecord
from repro.fbnet.store import ObjectStore
from repro.simulation.clock import EventScheduler

pytestmark = pytest.mark.guard


def config(name, mtu=9192):
    return f"hostname {name}\ninterface ae0\n mtu {mtu}\n no shutdown\n!\n"


@pytest.fixture
def rig():
    sched = EventScheduler()
    fleet = DeviceFleet(sched)
    for index in range(4):
        fleet.add_device(f"pop01.d{index}", "vendor1", role="psw")
    store = ObjectStore()
    notifications = []
    deployer = Deployer(fleet, notifier=notifications.append)
    guard = DeploymentGuard(
        deployer, fleet, store=store, notifier=notifications.append
    )
    # Every device needs a committed baseline: that is the first LKG.
    for name in fleet.devices:
        fleet.get(name).commit(config(name))
    return fleet, guard, store, notifications, sched


def new_configs(fleet, mtu=9000):
    return {name: config(name, mtu) for name in fleet.devices}


PHASES = [
    PhaseSpec(name="canary", percentage=25, bake_seconds=30.0),
    PhaseSpec(name="rest", percentage=100),
]


class TestIntentHash:
    def test_order_independent_and_text_sensitive(self):
        a = {"d1": "x", "d2": "y"}
        b = {"d2": "y", "d1": "x"}
        assert intent_hash(a) == intent_hash(b)
        assert intent_hash(a) != intent_hash({"d1": "x", "d2": "z"})

    def test_separator_prevents_name_text_ambiguity(self):
        assert intent_hash({"ab": "c"}) != intent_hash({"a": "bc"})


class TestLkgBookkeeping:
    def test_unprovisioned_device_rejected(self, rig):
        fleet, guard, _, _, _ = rig
        fleet.add_device("pop01.d9", "vendor1", role="psw")
        with pytest.raises(DeploymentError, match="no committed config"):
            guard.rollout(new_configs(fleet), PHASES)

    def test_clean_rollout_promotes_lkg(self, rig):
        fleet, guard, store, _, _ = rig
        before = fleet.config_versions()
        result = guard.rollout(new_configs(fleet), PHASES)
        assert result.ok
        assert result.outcome is DeploymentOutcome.SUCCEEDED
        assert sorted(result.report.succeeded) == sorted(fleet.devices)
        # The new versions are now the pinned last-known-good...
        for name, device in fleet.devices.items():
            assert guard.lkg[name] == device.config_version > before[name]
            assert device.version_entry(device.config_version).pinned
        # ...and the record says the fleet converged fully-new.
        [record] = store.all(DeploymentRecord)
        assert record.outcome is DeploymentOutcome.SUCCEEDED
        assert all(
            entry["state"] == "new"
            for entry in record.device_versions.values()
        )

    def test_gates_pass_and_phases_logged(self, rig):
        fleet, guard, store, _, sched = rig
        guard.gate = HealthGate(fleet)
        start = sched.clock.now
        result = guard.rollout(new_configs(fleet), PHASES, bake_seconds=60.0)
        assert result.ok
        assert all(g.passed for g in result.gate_results.values())
        # canary baked its 30s override, rest the default 60s.
        assert sched.clock.now == start + 90.0
        [record] = store.all(DeploymentRecord)
        assert [p["phase"] for p in record.phases] == ["canary", "rest"]
        assert all(p["gate"] == "passed" for p in record.phases)


class TestRollback:
    def test_push_failure_rolls_back_touched_devices(self, rig):
        fleet, guard, store, notifications, _ = rig
        old_texts = {n: d.running_config for n, d in fleet.devices.items()}
        # Canary (25% of 4) is d0 alone; d1 then fails in the rest phase.
        fleet.get("pop01.d1").fail_next_commits = 1
        result = guard.rollout(new_configs(fleet), PHASES)
        assert result.outcome is DeploymentOutcome.ROLLED_BACK
        assert "push failed in rest" in result.rollback_reason
        assert result.restored == ["pop01.d0"]
        # Every device is back on (or never left) its last-known-good text.
        for name, device in fleet.devices.items():
            assert device.running_config == old_texts[name]
        assert obs.counter("deploy.rollback", op="guarded_rollout").value == 1
        assert obs.counter("deploy.lkg_restore", device="pop01.d0").value == 1
        [record] = store.all(DeploymentRecord)
        assert record.outcome is DeploymentOutcome.ROLLED_BACK
        assert record.devices_rolled_back == 1
        assert {e["state"] for e in record.device_versions.values()} == {"lkg"}
        assert any("rolling back" in note for note in notifications)

    def test_circuit_breaker_open_rolls_back(self, rig):
        fleet, guard, _, _, _ = rig
        for name in ("pop01.d1", "pop01.d2"):
            fleet.get(name).fail_next_commits = 1
        result = guard.rollout(
            new_configs(fleet),
            [PhaseSpec(name="all", percentage=100)],
            max_failure_ratio=0.25,
        )
        assert result.outcome is DeploymentOutcome.ROLLED_BACK
        assert "circuit breaker opened in all" in result.rollback_reason
        assert obs.counter("deploy.circuit_open", phase="all").value == 1
        # d0 was pushed and restored; d3 was never attempted.
        assert result.restored == ["pop01.d0"]
        assert "pop01.d3" in result.report.skipped or not result.report.succeeded

    def test_probe_failure_fails_gate_and_rolls_back(self, rig):
        fleet, guard, store, _, _ = rig
        guard.gate = HealthGate(fleet, probe=lambda batch: False)
        result = guard.rollout(new_configs(fleet), PHASES)
        assert result.outcome is DeploymentOutcome.ROLLED_BACK
        assert "health gate failed after canary" in result.rollback_reason
        assert "probe" in result.rollback_reason
        assert obs.counter("deploy.gate_fail", phase="canary").value == 1
        [record] = store.all(DeploymentRecord)
        assert {e["state"] for e in record.device_versions.values()} == {"lkg"}

    def test_crashing_probe_fails_gate(self, rig):
        fleet, guard, _, _, _ = rig

        def probe(batch):
            raise RuntimeError("probe tooling broke")

        guard.gate = HealthGate(fleet, probe=probe)
        result = guard.rollout(new_configs(fleet), PHASES)
        assert result.outcome is DeploymentOutcome.ROLLED_BACK
        assert "probe raised" in result.rollback_reason

    def test_crash_during_bake_fails_reachability_gate(self, rig):
        fleet, guard, store, notifications, sched = rig
        guard.gate = HealthGate(fleet)
        # The canary batch is pop01.d0; it dies 10s into the 30s bake.
        sched.call_after(sched.clock.now + 10, fleet.get("pop01.d0").crash)
        result = guard.rollout(new_configs(fleet), PHASES)
        assert result.outcome is DeploymentOutcome.ROLLBACK_FAILED
        assert "reachability" in result.rollback_reason
        # The dead device cannot be restored: paged, recorded as stuck.
        assert any("LKG rollback FAILED on pop01.d0" in n for n in notifications)
        [record] = store.all(DeploymentRecord)
        assert record.outcome is DeploymentOutcome.ROLLBACK_FAILED
        # It kept the new config — an allowed (non-mixed) state.
        assert record.device_versions["pop01.d0"]["state"] == "new"


class TestMonitoredGate:
    def test_confmon_catches_non_golden_push(self, pop_network):
        """A rollout of hand-mutated (non-golden) configs trips ConfMon."""
        robotron = pop_network
        # Hand-edit: an MTU tweak the generator never produced.
        configs = {
            name: robotron.generator.golden[name].text.replace("9192", "9100")
            for name in robotron.generator.golden
        }
        result = robotron.guarded_deploy(
            configs,
            [PhaseSpec(name="canary", percentage=25),
             PhaseSpec(name="rest", percentage=100)],
            bake_seconds=30.0,
        )
        assert result.outcome is DeploymentOutcome.ROLLED_BACK
        assert "confmon" in result.rollback_reason
        # Everything was restored to golden (the LKG *is* golden here).
        for name, cfg in robotron.generator.golden.items():
            assert robotron.fleet.get(name).running_config == cfg.text
