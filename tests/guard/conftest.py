"""Guard-suite fixtures: the seed comes from the environment so CI can
replay the rollback chaos suite under several fixed seeds
(``CHAOS_SEED=20160816 pytest -m guard``)."""

from __future__ import annotations

import os

import pytest


@pytest.fixture
def chaos_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", "1337"))
