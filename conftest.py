"""Repo-root pytest configuration.

Makes the src/ layout importable even when the package has not been
pip-installed (the offline environment lacks ``wheel``, which PEP 517
editable installs require).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
