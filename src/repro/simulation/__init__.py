"""Simulation substrate: deterministic clock, event scheduler, workloads.

The paper evaluates Robotron on Facebook's production network over months
of real time.  This reproduction replays equivalent workloads on a
simulated clock so every experiment is deterministic and laptop-fast.
"""

from repro.simulation.clock import Clock, EventScheduler, ScheduledEvent

__all__ = ["Clock", "EventScheduler", "ScheduledEvent"]
