"""Executes workload schedules against a live Robotron store.

The workload generators in :mod:`repro.simulation.workloads` produce
operation schedules; this executor carries them out through the *real*
design tools — cluster builds via the generation catalog, backbone churn
via the backbone tool — wrapping each operation in a
:class:`~repro.design.changes.DesignChange` so the changed-object
accounting of the paper's Figure 15 falls out of the audit log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import DesignValidationError, RobotronError
from repro.design.backbone import BackboneDesignTool
from repro.design.changes import DesignChange
from repro.design.cluster import build_cluster, decommission_cluster
from repro.fbnet.models import (
    BackboneRouter,
    Circuit,
    Cluster,
    ClusterGeneration,
    Rack,
    RackProfile,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore
from repro.simulation.workloads import DesignChangeOp

__all__ = ["ExecutedChange", "WorkloadExecutor"]


@dataclass
class ExecutedChange:
    """One completed design change and its accounting."""

    week: int
    domain: str
    kind: str
    created: int
    modified: int
    deleted: int
    per_type: dict[str, dict[str, int]]
    #: Devices whose derived config data this change affects.
    touched_devices: tuple[str, ...] = ()

    @property
    def total(self) -> int:
        return self.created + self.modified + self.deleted


class WorkloadExecutor:
    """Applies :class:`DesignChangeOp` schedules to a store."""

    def __init__(self, store: ObjectStore, env, *, seed: int = 0):
        self._store = store
        self._env = env
        self._rng = random.Random(seed)
        self._backbone = BackboneDesignTool(store)
        self._cluster_seq = 0
        self._router_seq = 0
        #: Changes that completed, in order.
        self.executed: list[ExecutedChange] = []
        #: Operations skipped because preconditions were missing (e.g. a
        #: delete with nothing left to delete).  Never silently dropped.
        self.skipped: list[tuple[DesignChangeOp, str]] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, ops: list[DesignChangeOp]) -> list[ExecutedChange]:
        for op in ops:
            self.execute(op)
        return self.executed

    def execute(self, op: DesignChangeOp) -> ExecutedChange | None:
        handler = getattr(self, f"_op_{op.kind}", None)
        if handler is None:
            raise RobotronError(f"unknown workload op {op.kind!r}")
        try:
            with DesignChange(
                self._store,
                employee_id=f"e{self._rng.randrange(100):03d}",
                ticket_id=f"NET-{len(self.executed) + 1:05d}",
                description=op.kind,
                domain=op.domain,
            ) as change:
                touched = handler(op)
        except DesignValidationError as exc:
            self.skipped.append((op, str(exc)))
            return None
        assert change.summary is not None
        executed = ExecutedChange(
            week=op.week,
            domain=op.domain,
            kind=op.kind,
            created=change.summary.created_total,
            modified=change.summary.modified_total,
            deleted=change.summary.deleted_total,
            per_type=change.summary.per_type(),
            touched_devices=tuple(touched or ()),
        )
        self.executed.append(executed)
        return executed

    # ------------------------------------------------------------------
    # Operation handlers
    # ------------------------------------------------------------------

    def _pick_location(self, generation: ClusterGeneration):
        if generation.value.startswith("pop"):
            return self._rng.choice(list(self._env.pops.values()))
        return self._rng.choice(list(self._env.datacenters.values()))

    def _op_build_cluster(self, op: DesignChangeOp) -> list[str]:
        generation = op.params["generation"]
        location = self._pick_location(generation)
        self._cluster_seq += 1
        name = f"{location.name}.c{self._cluster_seq:03d}"
        result = build_cluster(self._store, name, location, generation)
        return [device.name for device in result.all_devices()]

    def _op_add_rack(self, op: DesignChangeOp) -> list[str]:
        """A rack turn-up: rack object, TOR switch, uplink bundles to PSWs.

        Matches section 2.2's cluster provisioning ingredients — initial
        device configuration, cabling assignment, IP allocation.
        """
        from repro.design.bundles import build_bundle
        from repro.design.ipam import IpAllocator
        from repro.design.materializer import PortAllocator
        from repro.fbnet.models import NetworkSwitch, PrefixPool, RackSwitch

        clusters = [
            cluster
            for cluster in self._store.all(Cluster)
            if cluster.datacenter_id is not None
        ]
        if not clusters:
            raise DesignValidationError("no DC cluster to add a rack to")
        cluster = self._rng.choice(clusters)
        profiles = self._store.all(RackProfile)
        existing = self._store.count(Rack, Expr("cluster", Op.EQUAL, cluster.id))
        rack = self._store.create(
            Rack,
            name=f"rack-{existing + 1:03d}",
            cluster=cluster,
            rack_profile=self._rng.choice(profiles),
        )
        tor = self._store.create(
            RackSwitch,
            name=f"{cluster.name}.tor{existing + 1:03d}",
            hardware_profile=self._env.profiles["Switch_Vendor2"],
            cluster=cluster,
        )
        psws = self._store.filter(
            NetworkSwitch, Expr("cluster", Op.EQUAL, cluster.id)
        )
        if not psws:
            raise DesignValidationError(f"cluster {cluster.name} has no PSWs")
        v6_pool = self._store.first(
            PrefixPool, Expr("name", Op.EQUAL, "dc-p2p-v6")
        )
        v6_alloc = IpAllocator(self._store, v6_pool)
        tor_ports = PortAllocator(self._store, tor)
        touched = [tor.name]
        for psw in psws[: min(2, len(psws))]:
            build_bundle(
                self._store,
                tor,
                psw,
                a_ports=tor_ports,
                z_ports=PortAllocator(self._store, psw),
                circuits=2,
                speed_mbps=10_000,
                v6_alloc=v6_alloc,
            )
            touched.append(psw.name)
        return touched

    def _op_add_router(self, op: DesignChangeOp) -> list[str]:
        site = self._rng.choice(list(self._env.backbone_sites.values()))
        self._router_seq += 1
        name = f"bb{self._router_seq:03d}.{site.name}"
        self._backbone.add_router(name, site, "Router_Vendor1")
        # New routers get a circuit toward an existing one when possible,
        # so the backbone stays connected and later ops have targets.
        others = [
            router
            for router in self._store.all(BackboneRouter)
            if router.name != name
        ]
        if others:
            peer = self._rng.choice(others)
            self._backbone.add_circuit(name, peer.name)
            return [name, peer.name]
        return [name]

    def _op_delete_router(self, op: DesignChangeOp) -> list[str]:
        routers = self._store.all(BackboneRouter)
        if len(routers) <= 2:
            raise DesignValidationError("not enough backbone routers to delete one")
        victim = self._rng.choice(routers)
        neighbors = self._bundle_peers(victim.name)
        self._backbone.delete_router(victim.name)
        return [victim.name, *neighbors]

    def _op_add_circuit(self, op: DesignChangeOp) -> list[str]:
        """A long-haul capacity augment: several parallel circuits at once."""
        pair = self._pick_router_pair()
        for _ in range(self._rng.randint(2, 6)):
            self._backbone.add_circuit(pair[0], pair[1])
        return list(pair)

    def _op_migrate_circuit(self, op: DesignChangeOp) -> list[str]:
        circuit, a_name, z_name = self._pick_backbone_circuit()
        routers = [
            router.name
            for router in self._store.all(BackboneRouter)
            if router.name not in (a_name, z_name)
        ]
        if not routers:
            raise DesignValidationError("no third router to migrate toward")
        target = self._rng.choice(routers)
        self._backbone.migrate_circuit(circuit.name, target)
        return [a_name, z_name, target]

    def _op_delete_circuit(self, op: DesignChangeOp) -> list[str]:
        circuit, a_name, z_name = self._pick_backbone_circuit()
        self._backbone.delete_circuit(circuit.name)
        return [a_name, z_name]

    def _op_upgrade_pop_gen2(self, op: DesignChangeOp) -> list[str]:
        from repro.design.cluster import upgrade_pop_cluster_in_place

        candidates = [
            cluster
            for cluster in self._store.all(Cluster)
            if cluster.generation is ClusterGeneration.POP_GEN1
        ]
        if not candidates:
            raise DesignValidationError("no Gen1 POP cluster left to upgrade")
        cluster = self._rng.choice(candidates)
        result = upgrade_pop_cluster_in_place(
            self._store, cluster, ClusterGeneration.POP_GEN2
        )
        return [device.name for device in result.all_devices()]

    def _op_decommission_oldest(self, op: DesignChangeOp) -> list[str]:
        generation = op.params.get("generation")
        candidates = [
            cluster
            for cluster in self._store.all(Cluster)
            if generation is None or cluster.generation is generation
        ]
        if not candidates:
            raise DesignValidationError("no cluster of that generation left")
        cluster = min(candidates, key=lambda c: c.id or 0)
        from repro.fbnet.models import Device

        names = [
            device.name
            for device in self._store.filter(
                Device, Expr("cluster", Op.EQUAL, cluster.id)
            )
        ]
        decommission_cluster(self._store, cluster)
        return names

    # ------------------------------------------------------------------
    # Target selection helpers
    # ------------------------------------------------------------------

    def _pick_router_pair(self) -> tuple[str, str]:
        routers = self._store.all(BackboneRouter)
        if len(routers) < 2:
            raise DesignValidationError("need two backbone routers for a circuit")
        a, z = self._rng.sample(routers, 2)
        return a.name, z.name

    @staticmethod
    def _endpoint_devices(circuit) -> tuple | None:
        a_pif = circuit.related("a_interface")
        z_pif = circuit.related("z_interface")
        if a_pif is None or z_pif is None:
            return None
        a_dev = a_pif.related("linecard").related("device")
        z_dev = z_pif.related("linecard").related("device")
        return a_dev, z_dev

    def _pick_backbone_circuit(self):
        # Backbone circuits carry "bbNNN.<site>--..." bundle-derived names;
        # pre-filter on the cheap string before resolving any FK chain.
        candidates = [
            circuit
            for circuit in self._store.all(Circuit)
            if circuit.name.startswith("bb")
        ]
        self._rng.shuffle(candidates)
        for circuit in candidates:
            endpoints = self._endpoint_devices(circuit)
            if endpoints is None:
                continue
            a_dev, z_dev = endpoints
            if isinstance(a_dev, BackboneRouter) and isinstance(z_dev, BackboneRouter):
                return circuit, a_dev.name, z_dev.name
        raise DesignValidationError("no backbone circuit available")

    def _bundle_peers(self, device_name: str) -> list[str]:
        from repro.fbnet.models import LinkGroup

        peers = set()
        for bundle in self._store.all(LinkGroup):
            if device_name not in bundle.name:
                continue
            a_name, _, z_name = bundle.name.partition("--")
            if a_name == device_name:
                peers.add(z_name)
            elif z_name == device_name:
                peers.add(a_name)
        return sorted(peers)
