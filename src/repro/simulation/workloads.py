"""Workload generators for the paper's usage-statistics experiments (§6).

Facebook measured Robotron under production workload; this module replays
equivalent synthetic workloads through the *real* reproduction code paths:

* :class:`DesignChangeWorkload` — a year of design changes (cluster
  builds, backbone router and circuit churn) executed through the actual
  design tools, producing the changed-object distributions of Figure 15
  and, combined with config generation, the config-churn data of
  Figure 16;
* :class:`ModelChurnWorkload` — the FBNet model-evolution process behind
  Figure 14 (new component types, new attributes, logic changes, and
  occasional refactors);
* :class:`SyslogWorkload` — the 24-hour syslog event mix and the
  synthetic rule table sized like the paper's (Table 3);
* :class:`ArchitectureEvolution` — the two-year cluster-architecture
  life cycle of Figure 12.

Every generator takes an explicit seed; runs are deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fbnet.models import ClusterGeneration, EventSeverity
from repro.monitoring.classifier import SyslogRule, default_rule_table
from repro.monitoring.syslog import SyslogMessage

__all__ = [
    "ArchitectureEvolution",
    "DesignChangeWorkload",
    "ModelChurnWorkload",
    "SyslogWorkload",
]


# ---------------------------------------------------------------------------
# Figure 14: Desired model churn
# ---------------------------------------------------------------------------


@dataclass
class ModelChurnWorkload:
    """Weekly lines changed in the Desired models (Figure 14).

    The paper attributes model changes to three causes (section 6.1):
    new component types (new models), new attributes on existing models,
    and logic changes — plus occasional large refactoring efforts.  The
    generator draws weekly change events from those processes; the paper
    reports an average above 50 lines changed per day.
    """

    seed: int = 7
    weeks: int = 156

    #: Mean occurrences per week of each change cause.
    new_model_rate: float = 1.5
    new_attribute_rate: float = 20.0
    logic_change_rate: float = 8.0
    refactor_probability: float = 0.06

    def weekly_lines(self) -> list[int]:
        """Lines changed per week over the whole period."""
        rng = random.Random(self.seed)
        weekly = []
        for _week in range(self.weeks):
            lines = 0
            for _ in range(self._poisson(rng, self.new_model_rate)):
                lines += rng.randint(30, 90)  # a new model + registration
            for _ in range(self._poisson(rng, self.new_attribute_rate)):
                lines += rng.randint(2, 12)  # field + validation + comment
            for _ in range(self._poisson(rng, self.logic_change_rate)):
                lines += rng.randint(4, 30)  # derivation logic updates
            if rng.random() < self.refactor_probability:
                lines += rng.randint(150, 700)  # large refactoring effort
            weekly.append(lines)
        return weekly

    @staticmethod
    def _poisson(rng: random.Random, rate: float) -> int:
        """Knuth's algorithm; rates here are small."""
        import math

        threshold = math.exp(-rate)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count


# ---------------------------------------------------------------------------
# Table 3: syslog event mix and rule table
# ---------------------------------------------------------------------------

#: The paper's Table 3 rule counts per urgency.
PAPER_RULE_COUNTS = {
    EventSeverity.CRITICAL: 13,
    EventSeverity.MAJOR: 214,
    EventSeverity.MINOR: 310,
    EventSeverity.WARNING: 103,
    EventSeverity.NOTICE: 79,
}

#: The paper's Table 3 event mix: fraction of the 49.34M daily syslog
#: messages at each urgency (the remainder is IGNORED, ~96.27%).
PAPER_EVENT_SHARES = {
    EventSeverity.CRITICAL: 2 / 49_340_000,
    EventSeverity.MAJOR: 1_350 / 49_340_000,
    EventSeverity.MINOR: 32_000 / 49_340_000,
    EventSeverity.WARNING: 1_800_000 / 49_340_000,
    EventSeverity.NOTICE: 6_680 / 49_340_000,
}


@dataclass
class SyslogWorkload:
    """A 24-hour syslog stream with the paper's urgency mix (Table 3)."""

    seed: int = 11
    total_events: int = 50_000
    device_names: tuple[str, ...] = ("pop01.c01.psw1",)

    def rule_table(self) -> list[SyslogRule]:
        """The default rules plus synthetic ones up to the paper's counts.

        Synthetic rules match tokens the event generator can emit, so
        every rule is live — the paper's table counts *maintained* rules,
        most of which fire rarely.
        """
        rules = default_rule_table()
        have: dict[EventSeverity, int] = {}
        for rule in rules:
            have[rule.severity] = have.get(rule.severity, 0) + 1
        for severity, target in PAPER_RULE_COUNTS.items():
            for index in range(have.get(severity, 0), target):
                rules.append(
                    SyslogRule(
                        name=f"syn-{severity.value}-{index}",
                        pattern=rf"EVT-{severity.value.upper()}-{index}\b",
                        severity=severity,
                    )
                )
        return rules

    def messages(self) -> list[SyslogMessage]:
        """The event stream, shuffled, timestamps spread over 24 hours."""
        rng = random.Random(self.seed)
        events: list[tuple[EventSeverity | None, str]] = []
        remaining = self.total_events
        for severity, share in PAPER_EVENT_SHARES.items():
            count = max(0, round(self.total_events * share))
            if severity is EventSeverity.CRITICAL:
                count = max(count, 2 if self.total_events >= 10_000 else count)
            rule_total = PAPER_RULE_COUNTS[severity]
            for _ in range(count):
                index = rng.randrange(rule_total)
                events.append(
                    (severity, f"EVT-{severity.value.upper()}-{index} condition seen")
                )
            remaining -= count
        ignored_texts = (
            "LSP change: path recomputed",
            "User authentication: session opened",
            "LSP change: reroute complete",
            "User authentication: session closed",
        )
        for _ in range(max(0, remaining)):
            events.append((None, rng.choice(ignored_texts)))
        rng.shuffle(events)
        day = 86_400.0
        messages = []
        for index, (_severity, text) in enumerate(events):
            messages.append(
                SyslogMessage(
                    device=rng.choice(self.device_names),
                    tag="EVENT",
                    message=text,
                    timestamp=index / max(1, len(events)) * day,
                )
            )
        return messages


# ---------------------------------------------------------------------------
# Figure 15 / 16: design-change workload
# ---------------------------------------------------------------------------


@dataclass
class DesignChangeOp:
    """One operation the workload will perform."""

    week: int
    domain: str  # "pop", "datacenter", "backbone"
    kind: str
    params: dict = field(default_factory=dict)


@dataclass
class DesignChangeWorkload:
    """A schedule of design changes matching the paper's reported rates.

    Section 5.1.2: "Each month, we perform tens of router additions and
    deletions, and hundreds of circuit additions, migrations and
    deletions"; POP/DC changes are dominated by whole-cluster builds
    (section 6.2).  The schedule is data; the benchmark executes it
    against a live Robotron instance.
    """

    seed: int = 23
    weeks: int = 52

    #: Weekly operation rates.
    cluster_builds_per_week: float = 1.5
    rack_changes_per_week: float = 1.0
    router_adds_per_week: float = 1.5
    router_deletes_per_week: float = 0.75
    circuit_adds_per_week: float = 12.0
    circuit_migrations_per_week: float = 5.0
    circuit_deletes_per_week: float = 6.0

    def schedule(self) -> list[DesignChangeOp]:
        rng = random.Random(self.seed)
        ops: list[DesignChangeOp] = []
        cluster_generations = [
            ClusterGeneration.POP_GEN1,
            ClusterGeneration.POP_GEN2,
            ClusterGeneration.DC_GEN1,
            ClusterGeneration.DC_GEN2,
            ClusterGeneration.DC_GEN3,
        ]
        poisson = ModelChurnWorkload._poisson
        for week in range(self.weeks):
            for _ in range(poisson(rng, self.cluster_builds_per_week)):
                generation = rng.choice(cluster_generations)
                domain = "pop" if generation.value.startswith("pop") else "datacenter"
                ops.append(
                    DesignChangeOp(
                        week, domain, "build_cluster", {"generation": generation}
                    )
                )
            for _ in range(poisson(rng, self.rack_changes_per_week)):
                ops.append(DesignChangeOp(week, "datacenter", "add_rack", {}))
            for _ in range(poisson(rng, self.router_adds_per_week)):
                ops.append(DesignChangeOp(week, "backbone", "add_router", {}))
            for _ in range(poisson(rng, self.router_deletes_per_week)):
                ops.append(DesignChangeOp(week, "backbone", "delete_router", {}))
            for _ in range(poisson(rng, self.circuit_adds_per_week)):
                ops.append(DesignChangeOp(week, "backbone", "add_circuit", {}))
            for _ in range(poisson(rng, self.circuit_migrations_per_week)):
                ops.append(DesignChangeOp(week, "backbone", "migrate_circuit", {}))
            for _ in range(poisson(rng, self.circuit_deletes_per_week)):
                ops.append(DesignChangeOp(week, "backbone", "delete_circuit", {}))
        return ops


# ---------------------------------------------------------------------------
# Figure 12: architecture evolution
# ---------------------------------------------------------------------------


@dataclass
class ArchitectureEvolution:
    """The two-year cluster-architecture life cycle (Figure 12).

    POP: Gen1 clusters grow early, then are merged into bigger Gen2
    clusters via in-place upgrades (space/power limits forbid
    side-by-side).  DC: three generations coexist; shifts happen by
    building new-generation clusters and decommissioning old ones, with
    Gen3 (v6-only) arriving after IPv4 exhaustion.
    """

    seed: int = 31
    weeks: int = 104

    def schedule(self) -> list[DesignChangeOp]:
        rng = random.Random(self.seed)
        ops: list[DesignChangeOp] = []
        for week in range(self.weeks):
            quarter = week / self.weeks
            # POP: build Gen1 early, then upgrade them in place to Gen2.
            if quarter < 0.2 and rng.random() < 0.6:
                ops.append(
                    DesignChangeOp(
                        week, "pop", "build_cluster",
                        {"generation": ClusterGeneration.POP_GEN1},
                    )
                )
            if 0.15 <= quarter < 0.5 and rng.random() < 0.5:
                ops.append(DesignChangeOp(week, "pop", "upgrade_pop_gen2", {}))
            if quarter >= 0.3 and rng.random() < 0.25:
                ops.append(
                    DesignChangeOp(
                        week, "pop", "build_cluster",
                        {"generation": ClusterGeneration.POP_GEN2},
                    )
                )
            # DC: Gen1 still grows a little at the start, then declines by
            # decommission through the second half; Gen2 builds in the
            # first half; Gen3 builds in the second half.  All three
            # generations coexist in the middle of the period.
            if quarter < 0.15 and rng.random() < 0.3:
                ops.append(
                    DesignChangeOp(
                        week, "datacenter", "build_cluster",
                        {"generation": ClusterGeneration.DC_GEN1},
                    )
                )
            if quarter < 0.5 and rng.random() < 0.35:
                ops.append(
                    DesignChangeOp(
                        week, "datacenter", "build_cluster",
                        {"generation": ClusterGeneration.DC_GEN2},
                    )
                )
            if quarter >= 0.45 and rng.random() < 0.4:
                ops.append(
                    DesignChangeOp(
                        week, "datacenter", "build_cluster",
                        {"generation": ClusterGeneration.DC_GEN3},
                    )
                )
            if quarter >= 0.3 and rng.random() < 0.12:
                ops.append(
                    DesignChangeOp(
                        week, "datacenter", "decommission_oldest",
                        {"generation": ClusterGeneration.DC_GEN1},
                    )
                )
        return ops
