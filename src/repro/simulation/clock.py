"""Deterministic simulated time.

All time in the reproduction flows from a :class:`Clock`: replication lag,
monitoring job periods, deployment grace windows, and the 24-hour /
multi-week experiment horizons.  A :class:`EventScheduler` runs callbacks
at scheduled instants when the clock advances, giving the discrete-event
backbone for the monitoring pipeline and deployment timers.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Clock", "EventScheduler", "ScheduledEvent"]

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


class Clock:
    """Simulated wall time in seconds since the simulation epoch."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move time forward to an absolute instant."""
        if instant < self._now:
            raise ValueError(
                f"cannot advance to {instant}: clock is already at {self._now}"
            )
        self._now = instant
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Clock t={self._now:.3f}>"


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled on an :class:`EventScheduler`."""

    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """A discrete-event scheduler driven by a shared :class:`Clock`.

    Events fire in timestamp order (FIFO among equal timestamps) when
    :meth:`run_until` advances the clock past them.  Callbacks may schedule
    further events, including at the current instant.
    """

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or Clock()
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def call_at(
        self, when: float, callback: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule at {when}: clock is already at {self.clock.now}"
            )
        event = ScheduledEvent(when, next(self._seq), callback, name)
        heapq.heappush(self._heap, event)
        return event

    def call_after(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.call_at(self.clock.now + delay, callback, name)

    def call_every(
        self,
        period: float,
        callback: Callable[[], None],
        name: str = "",
        first_at: float | None = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` every ``period`` seconds; returns a canceller."""
        if period <= 0:
            raise ValueError("period must be positive")
        state: dict[str, ScheduledEvent | None] = {"event": None}
        stopped = {"flag": False}

        def fire() -> None:
            if stopped["flag"]:
                return
            callback()
            if not stopped["flag"]:
                state["event"] = self.call_at(self.clock.now + period, fire, name)

        start = self.clock.now + period if first_at is None else first_at
        state["event"] = self.call_at(start, fire, name)

        def cancel() -> None:
            stopped["flag"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        return cancel

    def run_until(self, instant: float) -> int:
        """Advance the clock to ``instant``, firing due events; returns count fired."""
        fired = 0
        while self._heap and self._heap[0].when <= instant:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(max(event.when, self.clock.now))
            event.callback()
            fired += 1
        self.clock.advance_to(max(instant, self.clock.now))
        return fired

    def run_for(self, seconds: float) -> int:
        """Advance the clock by ``seconds``, firing due events."""
        return self.run_until(self.clock.now + seconds)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)
