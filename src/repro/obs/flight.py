"""repro.obs.flight — the change-provenance flight recorder.

The paper's central claim is that *every* network change flows top-down
through one pipeline: a design mutation becomes an FBNet model diff,
which becomes regenerated configs, which become deploy waves, which the
monitoring plane then passes verdict on.  Metrics count those events and
the tracer nests them in time, but neither can answer the operator
question that matters during an incident: *which change did this?*

This module answers it.  A :class:`ChangeContext` — contextvar-based, so
it follows the call stack and (via :mod:`repro.parallel`) survives the
worker pool — is opened by the pipeline's entry points and carries a
process-unique **change id**.  Every layer then emits typed
:class:`FlightEvent` records into one bounded, append-only ring buffer:

======================  ====================================================
``change.open/commit``  a design change opened / committed (``design/changes``)
``change.resume``       an incremental cycle picked an earlier change back up
``model.mutation``      a journal record committed under a change id (store)
``configgen.regen``     a device found dirty, with the record that dirtied it
``configgen.render``    a golden config produced outside the dirty path
``deploy.wave``         one failure-domain wave of a phased push
``deploy.push``         one device's push outcome (ok / fail / skip)
``deploy.retry``        a transient push failure absorbed inside a pool task
``deploy.rollout``      a guarded rollout started / finished (outcome verdict)
``deploy.gate``         a post-phase health-gate verdict
``deploy.lkg_restore``  a device restored to last-known-good during rollback
``deploy.drain``        a drain/undrain verification verdict for one device
``deploy.drain_rollback``  a failed drain push compensated in the store
``confmon.check``       a drift verdict (clean / drift) for one device
``syslog.message``      a syslog line received while a change was in flight
``remediation.detect``  the remediation engine accepted a detection
``remediation.action``  an automatic remediation action was selected
``remediation.verify``  post-action verification verdict for one device
``remediation.quarantine``  a device exhausted remediation and was drained
======================  ====================================================

Events emitted inside :func:`repro.parallel.run_tasks` tasks land in
per-task buffers that the coordinator merges back **in task-key order**
(the same discipline fault scopes use), so the ring — and therefore
:func:`deterministic_dump` — is byte-identical at any worker count.
Wall-clock times and tracer span ids are recorded on every event for the
Chrome-trace export but excluded from the deterministic dump, which
keeps only workload-determined fields.

Query API: :func:`for_change`, :func:`for_device`, :func:`timeline`,
:func:`render_lineage` (the causal tree of one change), and
:func:`export_jsonl` for benchmark artifacts.
"""

from __future__ import annotations

import itertools
import json
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import Any, Iterable, Iterator

__all__ = [
    "ChangeContext",
    "FlightEvent",
    "FlightRecorder",
    "PHASES",
    "activate",
    "change_context",
    "current_change",
    "current_change_id",
    "deactivate",
    "deterministic_dump",
    "export_jsonl",
    "for_change",
    "for_device",
    "merge_events",
    "record",
    "recorder",
    "render_lineage",
    "reset",
    "suppressed",
    "task_buffer",
    "timeline",
]

#: Pipeline phases in causal order — the lineage renderer groups by these.
PHASES = ("intent", "model", "generation", "deployment", "monitoring")

#: The active change context for this thread of control (contextvars, so
#: scheduler callbacks and nested calls inherit it automatically; the
#: worker pool re-activates the coordinator's context inside each task).
_active: ContextVar[ChangeContext | None] = ContextVar(
    "flight_change", default=None
)

#: When set, recording and change-id stamping are no-ops — used by layers
#: whose store writes are *derived* from observation (monitoring
#: backends), not caused by the ambient change.
_suppressed: ContextVar[bool] = ContextVar("flight_suppressed", default=False)


@dataclass(frozen=True)
class ChangeContext:
    """One in-flight change, as seen by the provenance layer."""

    change_id: str
    intent: str = ""
    #: Upstream change ids, when this context aggregates several (an
    #: incremental cycle whose dirty configs trace to multiple changes).
    causes: tuple[str, ...] = ()
    #: True when this context re-opened an earlier change's id (the
    #: incremental cycle resuming the change that dirtied its configs).
    resumed: bool = False


@dataclass
class FlightEvent:
    """One structured record in the flight log."""

    #: Global arrival order in the ring (assigned at merge time).
    seq: int
    #: The change this event belongs to ("" when unattributed).
    change_id: str
    #: Event type, ``<layer>.<what>`` (see the module table).
    kind: str
    #: Pipeline phase, one of :data:`PHASES`.
    phase: str
    model: str = ""
    object_id: int | None = None
    device: str = ""
    #: Outcome/classification: op name, ok/fail, clean/drift, gate verdict.
    verdict: str = ""
    detail: str = ""
    #: The innermost open tracer span when the event fired (links the
    #: flight log to the flame tree / Chrome trace); wall-scheduling
    #: dependent, excluded from the deterministic dump.
    span_id: int | None = None
    #: ``section/key`` of the pool task that emitted the event, "" on the
    #: coordinator.
    task_key: str = ""
    sim_time: float | None = None
    wall_time: float = 0.0

    #: Fields whose values are products of the (seeded, simulated)
    #: workload — everything except wall timing and span identity.
    DETERMINISTIC_FIELDS = (
        "seq", "change_id", "kind", "phase", "model", "object_id",
        "device", "verdict", "detail", "task_key", "sim_time",
    )

    def deterministic(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self.DETERMINISTIC_FIELDS}

    def describe(self) -> str:
        """One human line: what happened, to what, with what verdict."""
        subject = self.device
        if not subject and self.model:
            subject = f"{self.model}#{self.object_id}"
        return " ".join(
            part for part in (self.kind, subject, self.verdict, self.detail) if part
        )


class FlightRecorder:
    """A bounded, append-only ring of :class:`FlightEvent` records.

    One recorder serves the whole process (module-global, like the
    metrics registry).  Appends are cheap — a dataclass build plus a
    locked list append — and the ring never grows past ``max_events``;
    evictions are counted on :attr:`dropped` and under the
    ``obs.flight.dropped`` metric rather than silently truncating.
    """

    def __init__(self, max_events: int = 10_000):
        self.max_events = max_events
        self.enabled = True
        self.dropped = 0
        self._events: list[FlightEvent] = []
        self._seq = itertools.count(1)
        self._change_ids = itertools.count(1)
        self._lock = threading.Lock()
        # Per-thread stack of task buffers (see task_buffer): events
        # recorded while a buffer is open divert there and are merged by
        # the pool coordinator in task-key order.
        self._local = threading.local()

    # -- change ids ----------------------------------------------------------

    def new_change_id(self) -> str:
        """The next process-unique change id (``chg-000001``, ...).

        A counter, not a UUID: ids must be identical across reruns and
        worker counts for the deterministic dump to compare bit-for-bit.
        Contexts are only ever opened on the coordinator thread, so the
        allocation order is the program order.
        """
        return f"chg-{next(self._change_ids):06d}"

    # -- recording -----------------------------------------------------------

    def _buffer_stack(self) -> list[list[FlightEvent]]:
        stack = getattr(self._local, "buffers", None)
        if stack is None:
            stack = []
            self._local.buffers = stack
        return stack

    def record(
        self,
        kind: str,
        *,
        phase: str,
        change_id: str | None = None,
        model: str = "",
        object_id: int | None = None,
        device: str = "",
        verdict: str = "",
        detail: str = "",
    ) -> FlightEvent | None:
        """Append one event (or buffer it inside a pool task).

        ``change_id=None`` attributes the event to the active
        :class:`ChangeContext`; pass an explicit id to attribute a
        downstream effect to the upstream change that caused it (e.g. a
        regeneration to the journal record that dirtied the config).
        """
        if not self.enabled or _suppressed.get():
            return None
        if change_id is None:
            context = _active.get()
            change_id = context.change_id if context is not None else ""
        span_id: int | None = None
        sim_time: float | None = None
        tracer = _tracer
        if tracer is not None:
            current = tracer.current()
            if current is not None:
                span_id = current.span_id
            clock = tracer.sim_clock
            if clock is not None:
                sim_time = clock.now
        task_key = ""
        task = _current_pool_task()
        if task is not None:
            task_key = f"{task.section}/{task.key}"
            if task.clock is not None:
                sim_time = task.clock.now
        event = FlightEvent(
            seq=0,
            change_id=change_id,
            kind=kind,
            phase=phase,
            model=model,
            object_id=object_id,
            device=device,
            verdict=verdict,
            detail=detail,
            span_id=span_id,
            task_key=task_key,
            sim_time=sim_time,
            wall_time=perf_counter(),
        )
        stack = self._buffer_stack()
        if stack:
            stack[-1].append(event)
            return event
        with self._lock:
            self._append(event)
        return event

    def _append(self, event: FlightEvent) -> None:
        event.seq = next(self._seq)
        self._events.append(event)
        overflow = len(self._events) - self.max_events
        if overflow > 0:
            del self._events[:overflow]
            self.dropped += overflow
            _eviction_counter("obs.flight.dropped", overflow)

    def merge_events(self, events: Iterable[FlightEvent]) -> None:
        """Fold a task buffer's events into the ring, assigning sequence.

        Called by the pool coordinator once per merged task, in task-key
        order — the step that makes the ring independent of completion
        order.
        """
        with self._lock:
            for event in events:
                self._append(event)

    @contextmanager
    def task_buffer(self) -> Iterator[list[FlightEvent]]:
        """Divert this thread's events into a buffer for later merging."""
        buffer: list[FlightEvent] = []
        stack = self._buffer_stack()
        stack.append(buffer)
        try:
            yield buffer
        finally:
            stack.pop()

    # -- queries -------------------------------------------------------------

    @property
    def events(self) -> list[FlightEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def timeline(self) -> list[FlightEvent]:
        """Every retained event in arrival (sequence) order."""
        return list(self._events)

    def for_change(self, change_id: str) -> list[FlightEvent]:
        """The full lineage of one change, in order."""
        return [e for e in self._events if e.change_id == change_id]

    def for_device(self, name: str) -> list[FlightEvent]:
        """Everything that happened to one device, across all changes."""
        return [e for e in self._events if e.device == name]

    def changes(self) -> list[str]:
        """Distinct change ids in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self._events:
            if event.change_id and event.change_id not in seen:
                seen[event.change_id] = None
        return list(seen)

    # -- rendering / export --------------------------------------------------

    def render_lineage(self, change_id: str) -> str:
        """The causal tree of one change: intent → mutations → configs →
        waves → verdicts, grouped by pipeline phase."""
        events = self.for_change(change_id)
        if not events:
            return f"{change_id}: no flight events recorded"
        intent = next(
            (e.detail for e in events if e.kind in ("change.open", "change.resume")),
            "",
        )
        outcome = next(
            (
                e.verdict
                for e in reversed(events)
                if e.kind in ("change.commit", "change.close", "change.abort")
            ),
            "",
        )
        header = change_id
        if intent:
            header += f"  {intent!r}"
        if outcome:
            header += f"  [{outcome}]"
        lines = [header]
        groups = [
            (phase, [e for e in events if e.phase == phase]) for phase in PHASES
        ]
        groups = [(phase, group) for phase, group in groups if group]
        for g_index, (phase, group) in enumerate(groups):
            last_group = g_index == len(groups) - 1
            lines.append(("└─ " if last_group else "├─ ") + f"{phase} ({len(group)})")
            stem = "   " if last_group else "│  "
            for e_index, event in enumerate(group):
                branch = "└─ " if e_index == len(group) - 1 else "├─ "
                lines.append(stem + branch + event.describe())
        return "\n".join(lines)

    def deterministic_dump(self) -> dict[str, Any]:
        """Workload-determined fields only — identical at any worker count.

        The event sequence is already deterministic (pool-task events
        merge in task-key order); this dump additionally strips wall
        times and span ids, which measure the machine.
        """
        return {
            "dropped": self.dropped,
            "events": [event.deterministic() for event in self._events],
        }

    def export_jsonl(self, path: str) -> int:
        """Write every retained event as one JSON object per line.

        The full record — including wall time and span id — so a run's
        flight log can be archived as a build artifact and joined
        against the Chrome trace.  Returns the number of events written.
        """
        from pathlib import Path

        events = self.events
        with Path(path).open("w") as handle:
            for event in events:
                handle.write(json.dumps(asdict(event), sort_keys=True) + "\n")
        return len(events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._seq = itertools.count(1)
        self._change_ids = itertools.count(1)


# -- module-global recorder ----------------------------------------------------

_recorder = FlightRecorder()

#: The process tracer, wired in by ``repro.obs`` after it is built (a
#: late binding that avoids a circular import).
_tracer: Any | None = None


def _set_tracer(tracer: Any) -> None:
    global _tracer
    _tracer = tracer


def _current_pool_task() -> Any | None:
    """The running :class:`repro.parallel.TaskContext`, if any.

    Imported lazily: ``repro.parallel`` imports ``repro.obs`` at module
    load, so the reverse edge must not exist at import time.
    """
    try:
        from repro.parallel import current_task
    except ImportError:  # pragma: no cover - parallel always ships
        return None
    return current_task()


def _eviction_counter(name: str, amount: int) -> None:
    """Bump an eviction metric without a module-level obs import."""
    from repro import obs

    obs.counter(name).inc(amount)


def recorder() -> FlightRecorder:
    """The process-global flight recorder."""
    return _recorder


def record(kind: str, **kwargs: Any) -> FlightEvent | None:
    return _recorder.record(kind, **kwargs)


def merge_events(events: Iterable[FlightEvent]) -> None:
    _recorder.merge_events(events)


def task_buffer():
    return _recorder.task_buffer()


def reset() -> None:
    """Wipe events and restart id allocation; re-enable.  Test hook."""
    _recorder.clear()
    _recorder.enabled = True


# -- change contexts -----------------------------------------------------------


def current_change() -> ChangeContext | None:
    """The active change context on this thread of control, if any."""
    if _suppressed.get():
        return None
    return _active.get()


def current_change_id() -> str:
    """The active change id, or "" — what journal records are stamped with."""
    context = current_change()
    return context.change_id if context is not None else ""


def activate(context: ChangeContext | None):
    """Set the change context on this thread; returns the reset token.

    The worker pool uses this pair to re-activate the coordinator's
    context inside each task (contextvars do not cross thread-pool
    boundaries on their own).
    """
    return _active.set(context)


def deactivate(token) -> None:
    _active.reset(token)


@contextmanager
def suppressed() -> Iterator[None]:
    """No stamping or recording inside the block (derived-write paths)."""
    token = _suppressed.set(True)
    try:
        yield
    finally:
        _suppressed.reset(token)


@contextmanager
def change_context(
    intent: str = "",
    *,
    change_id: str | None = None,
    causes: Iterable[str] = (),
) -> Iterator[ChangeContext]:
    """Open (or join) a change context around a pipeline entry point.

    * An already-active context is **joined**: nested entry points (a
      guarded deploy inside a what-if, a cycle inside a drill) attribute
      to the enclosing change rather than fragmenting the lineage.
    * With ``change_id``, the context **resumes** that earlier change —
      how an incremental cycle continues the change that dirtied its
      configs under the same id.
    * Otherwise a fresh id is allocated and a ``change.open`` event
      recorded; exiting records ``change.close`` (or ``change.abort``
      with the error, which re-raises).
    """
    active = _active.get()
    if active is not None:
        yield active
        return
    resumed = change_id is not None
    context = ChangeContext(
        change_id=change_id if change_id is not None else _recorder.new_change_id(),
        intent=intent,
        causes=tuple(causes),
        resumed=resumed,
    )
    token = _active.set(context)
    detail = intent
    if context.causes:
        detail += f" (causes: {', '.join(context.causes)})"
    _recorder.record(
        "change.resume" if resumed else "change.open",
        phase="intent",
        change_id=context.change_id,
        detail=detail,
    )
    try:
        yield context
    except BaseException as exc:
        _recorder.record(
            "change.abort",
            phase="intent",
            change_id=context.change_id,
            verdict="error",
            detail=f"{type(exc).__name__}: {exc}",
        )
        raise
    else:
        _recorder.record(
            "change.close",
            phase="intent",
            change_id=context.change_id,
            verdict="ok",
        )
    finally:
        _active.reset(token)


# -- module-level query conveniences -------------------------------------------


def timeline() -> list[FlightEvent]:
    return _recorder.timeline()


def for_change(change_id: str) -> list[FlightEvent]:
    return _recorder.for_change(change_id)


def for_device(name: str) -> list[FlightEvent]:
    return _recorder.for_device(name)


def render_lineage(change_id: str) -> str:
    return _recorder.render_lineage(change_id)


def deterministic_dump() -> dict[str, Any]:
    return _recorder.deterministic_dump()


def export_jsonl(path: str) -> int:
    return _recorder.export_jsonl(path)
