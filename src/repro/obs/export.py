"""ODS-style exporters: a text dashboard and a JSON feed.

``render_report`` turns a registry + trace sink into the operator
dashboard printed by the examples; ``render_json`` produces the
machine-readable snapshot that ``benchmarks/`` archives so future perf
PRs can record metric trajectories over time.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.util import format_table
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import TraceSink

__all__ = [
    "NONDETERMINISTIC_SERIES",
    "deterministic_dump",
    "export_chrome_trace",
    "render_json",
    "render_report",
    "snapshot",
]

#: Metric series whose values depend on wall-clock timing or thread
#: scheduling rather than on the simulated workload.  Excluded from
#: :func:`deterministic_dump` — everything else must be bit-identical
#: across runs and across worker counts.
NONDETERMINISTIC_SERIES = frozenset({
    "parallel.queue_depth",
    "parallel.stragglers",
})


def render_report(
    registry: MetricsRegistry,
    sink: TraceSink | None = None,
    *,
    max_trace_roots: int = 20,
) -> str:
    """Render every metric series (and the span tree) as aligned tables."""
    sections: list[str] = []
    counters = [s for s in registry.series() if isinstance(s, Counter)]
    gauges = [s for s in registry.series() if isinstance(s, Gauge)]
    histograms = [s for s in registry.series() if isinstance(s, Histogram)]

    if counters:
        sections.append("== counters ==\n" + format_table(
            ("name", "labels", "value"),
            [(c.name, c.label_str(), f"{c.value:g}") for c in counters],
        ))
    if gauges:
        sections.append("== gauges ==\n" + format_table(
            ("name", "labels", "value"),
            [(g.name, g.label_str(), f"{g.value:g}") for g in gauges],
        ))
    if histograms:
        rows = []
        for h in histograms:
            s = h.summary()
            rows.append((
                h.name, h.label_str(), s["count"],
                _fmt(s["mean"]), _fmt(s["p50"]), _fmt(s["p95"]), _fmt(s["max"]),
            ))
        sections.append("== histograms ==\n" + format_table(
            ("name", "labels", "count", "mean", "p50", "p95", "max"), rows,
        ))
    if sink is not None and len(sink):
        header = f"== trace ({len(sink)} spans"
        if sink.dropped:
            header += f", {sink.dropped} dropped"
        header += ") =="
        sections.append(header + "\n" + sink.render(max_roots=max_trace_roots))
    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def deterministic_dump(registry: MetricsRegistry) -> dict[str, Any]:
    """The subset of the registry that must not vary with the worker count.

    Counter values and histogram observation *counts* are products of the
    (seeded, simulated) workload, so chaos runs compare them bit-for-bit
    across ``ROBOTRON_WORKERS`` settings.  Gauges (worker utilization),
    wall-time histogram statistics (sums, percentiles), and the series in
    :data:`NONDETERMINISTIC_SERIES` are excluded — they measure the
    machine, not the workload.
    """
    counters: list[dict[str, Any]] = []
    histograms: list[dict[str, Any]] = []
    for series in registry.series():
        if series.name in NONDETERMINISTIC_SERIES:
            continue
        if isinstance(series, Counter):
            counters.append(
                {"name": series.name, "labels": series.labels, "value": series.value}
            )
        elif isinstance(series, Histogram):
            histograms.append(
                {"name": series.name, "labels": series.labels, "count": series.count}
            )
    return {"counters": counters, "histograms": histograms}


def snapshot(
    registry: MetricsRegistry, sink: TraceSink | None = None
) -> dict[str, Any]:
    """A JSON-serializable dict of all metrics plus the span records."""
    out: dict[str, Any] = {"metrics": registry.snapshot()}
    if sink is not None:
        out["spans"] = [
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "status": span.status,
                "error": span.error,
                "wall_duration": span.wall_duration,
                "sim_duration": span.sim_duration,
                "attributes": {k: repr(v) for k, v in span.attributes.items()},
            }
            for span in sink.spans
        ]
    return out


def render_json(
    registry: MetricsRegistry,
    sink: TraceSink | None = None,
    *,
    indent: int | None = 2,
) -> str:
    return json.dumps(snapshot(registry, sink), indent=indent, sort_keys=True)


def export_chrome_trace(
    sink: TraceSink,
    flight_events: list[Any] | None = None,
    *,
    path: str | None = None,
) -> dict[str, Any]:
    """Spans (and flight events) in the Chrome Trace Event JSON format.

    Each finished span becomes a ``ph="X"`` complete event on one
    timeline thread (timestamps are wall ``perf_counter`` microseconds,
    rebased so the earliest span starts at 0); each flight event becomes
    a ``ph="i"`` instant whose args carry the change id, verdict, and
    linked span id — so the same identifiers join the flight log to the
    flame chart inside Perfetto.  Returns the trace dict; also writes it
    to ``path`` when given.
    """
    spans = sink.spans
    base = min((s.started_wall for s in spans), default=0.0)
    if flight_events:
        base = min([base] + [e.wall_time for e in flight_events])
    trace_events: list[dict[str, Any]] = []
    for s in spans:
        event: dict[str, Any] = {
            "name": s.name,
            "ph": "X",
            "ts": (s.started_wall - base) * 1e6,
            "dur": max(0.0, s.wall_duration) * 1e6,
            "pid": 1,
            "tid": 1,
            "args": {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "status": s.status,
                **{k: repr(v) for k, v in sorted(s.attributes.items())},
            },
        }
        if s.error:
            event["args"]["error"] = s.error
        trace_events.append(event)
    for e in flight_events or ():
        args = {
            name: value
            for name, value in (
                ("change_id", e.change_id),
                ("span_id", e.span_id),
                ("device", e.device),
                ("model", e.model),
                ("object_id", e.object_id),
                ("verdict", e.verdict),
                ("detail", e.detail),
                ("task_key", e.task_key),
            )
            if value not in ("", None)
        }
        trace_events.append({
            "name": e.kind,
            "ph": "i",
            "s": "g",
            "ts": (e.wall_time - base) * 1e6,
            "pid": 1,
            "tid": 2,
            "cat": e.phase,
            "args": args,
        })
    trace = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if path is not None:
        from pathlib import Path

        Path(path).write_text(json.dumps(trace) + "\n")
    return trace
