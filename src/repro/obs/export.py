"""ODS-style exporters: a text dashboard and a JSON feed.

``render_report`` turns a registry + trace sink into the operator
dashboard printed by the examples; ``render_json`` produces the
machine-readable snapshot that ``benchmarks/`` archives so future perf
PRs can record metric trajectories over time.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.util import format_table
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import TraceSink

__all__ = ["render_json", "render_report", "snapshot"]


def render_report(
    registry: MetricsRegistry,
    sink: TraceSink | None = None,
    *,
    max_trace_roots: int = 20,
) -> str:
    """Render every metric series (and the span tree) as aligned tables."""
    sections: list[str] = []
    counters = [s for s in registry.series() if isinstance(s, Counter)]
    gauges = [s for s in registry.series() if isinstance(s, Gauge)]
    histograms = [s for s in registry.series() if isinstance(s, Histogram)]

    if counters:
        sections.append("== counters ==\n" + format_table(
            ("name", "labels", "value"),
            [(c.name, c.label_str(), f"{c.value:g}") for c in counters],
        ))
    if gauges:
        sections.append("== gauges ==\n" + format_table(
            ("name", "labels", "value"),
            [(g.name, g.label_str(), f"{g.value:g}") for g in gauges],
        ))
    if histograms:
        rows = []
        for h in histograms:
            s = h.summary()
            rows.append((
                h.name, h.label_str(), s["count"],
                _fmt(s["mean"]), _fmt(s["p50"]), _fmt(s["p95"]), _fmt(s["max"]),
            ))
        sections.append("== histograms ==\n" + format_table(
            ("name", "labels", "count", "mean", "p50", "p95", "max"), rows,
        ))
    if sink is not None and len(sink):
        sections.append(
            f"== trace ({len(sink)} spans) ==\n"
            + sink.render(max_roots=max_trace_roots)
        )
    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def snapshot(
    registry: MetricsRegistry, sink: TraceSink | None = None
) -> dict[str, Any]:
    """A JSON-serializable dict of all metrics plus the span records."""
    out: dict[str, Any] = {"metrics": registry.snapshot()}
    if sink is not None:
        out["spans"] = [
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "status": span.status,
                "error": span.error,
                "wall_duration": span.wall_duration,
                "sim_duration": span.sim_duration,
                "attributes": {k: repr(v) for k, v in span.attributes.items()},
            }
            for span in sink.spans
        ]
    return out


def render_json(
    registry: MetricsRegistry,
    sink: TraceSink | None = None,
    *,
    indent: int | None = 2,
) -> str:
    return json.dumps(snapshot(registry, sink), indent=indent, sort_keys=True)
