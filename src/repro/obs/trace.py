"""Structured tracing for the Robotron life cycle.

A :class:`Tracer` produces nested :class:`Span` records —
design → generate → deploy → monitor operations each open a span, and
spans started while another is active become its children.  Each span
carries wall time (``time.perf_counter``), simulated time when a sim
clock is attached (any object with a ``.now`` float, e.g.
:class:`repro.simulation.clock.Clock`), a status, and free-form
attributes.

Finished spans land in an in-memory :class:`TraceSink` (bounded, oldest
spans evicted) which can render the whole run as a text flame tree.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.obs.metrics import NOOP, _Noop

__all__ = ["Span", "TraceSink", "Tracer"]


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    span_id: int
    parent_id: int | None
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    started_wall: float = 0.0
    ended_wall: float | None = None
    started_sim: float | None = None
    ended_sim: float | None = None
    status: str = "ok"
    error: str = ""

    @property
    def wall_duration(self) -> float:
        """Wall seconds spent in the span (0.0 while still open)."""
        if self.ended_wall is None:
            return 0.0
        return self.ended_wall - self.started_wall

    @property
    def sim_duration(self) -> float | None:
        """Simulated seconds covered by the span, if a sim clock was attached."""
        if self.started_sim is None or self.ended_sim is None:
            return None
        return self.ended_sim - self.started_sim

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value


class TraceSink:
    """Bounded in-memory store of finished spans, with a flame-tree view."""

    def __init__(self, max_spans: int = 10_000):
        self.max_spans = max_spans
        #: Spans evicted from the ring since the last clear — silent
        #: truncation hides exactly the evidence a trace exists to keep,
        #: so drops are counted here and under ``obs.trace.dropped``.
        self.dropped = 0
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        self._spans.append(span)
        overflow = len(self._spans) - self.max_spans
        if overflow > 0:
            del self._spans[:overflow]
            self.dropped += overflow
            from repro import obs

            obs.counter("obs.trace.dropped").inc(overflow)

    @property
    def spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def find(self, name: str) -> list[Span]:
        return [span for span in self._spans if span.name == name]

    def roots(self) -> list[Span]:
        """Top-level spans ordered by start time.

        A span whose parent was evicted from the bounded sink is treated
        as a root so the tree stays renderable.
        """
        known = {span.span_id for span in self._spans}
        return sorted(
            (
                span
                for span in self._spans
                if span.parent_id is None or span.parent_id not in known
            ),
            key=lambda span: (span.started_wall, span.span_id),
        )

    def children(self, span: Span) -> list[Span]:
        return sorted(
            (s for s in self._spans if s.parent_id == span.span_id),
            key=lambda s: (s.started_wall, s.span_id),
        )

    def render(self, *, max_roots: int | None = None) -> str:
        """The span forest as a text flame tree."""
        by_parent: dict[int | None, list[Span]] = {}
        for span in self._spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        for kids in by_parent.values():
            kids.sort(key=lambda s: (s.started_wall, s.span_id))
        lines: list[str] = []
        roots = self.roots()
        if max_roots is not None:
            roots = roots[:max_roots]
        for root in roots:
            self._render_one(root, by_parent, lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def _render_one(
        self,
        span: Span,
        by_parent: dict[int | None, list[Span]],
        lines: list[str],
        prefix: str,
        is_last: bool,
        is_root: bool,
    ) -> None:
        label = f"{span.name}  {span.wall_duration * 1000:.2f}ms"
        if span.sim_duration:
            label += f" (sim {span.sim_duration:.1f}s)"
        if span.status != "ok":
            label += f" [{span.status}: {span.error}]"
        if span.attributes:
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            label += f"  {{{attrs}}}"
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = by_parent.get(span.span_id, [])
        for i, kid in enumerate(kids):
            self._render_one(
                kid, by_parent, lines, child_prefix,
                is_last=(i == len(kids) - 1), is_root=False,
            )


class _ActiveSpan:
    """Context manager that opens a span on enter and sinks it on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span.started_wall = perf_counter()
        clock = self._tracer.sim_clock
        if clock is not None:
            self.span.started_sim = clock.now
        self._tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> None:
        span = self.span
        span.ended_wall = perf_counter()
        clock = self._tracer.sim_clock
        if clock is not None:
            span.ended_sim = clock.now
        if exc_type is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack
        if span in stack:
            # Pop through anything left behind by an abandoned inner span.
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        self._tracer.sink.add(span)


class Tracer:
    """Creates spans and tracks the currently-open nesting stack."""

    def __init__(self, sink: TraceSink | None = None, enabled: bool = True):
        self.enabled = enabled
        self.sink = sink or TraceSink()
        self.sim_clock: Any | None = None
        self._ids = itertools.count(1)
        # Span nesting is per-thread: a pool worker's spans must not nest
        # under (or pop) the coordinator's open spans.
        self._local = threading.local()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def set_sim_clock(self, clock: Any | None) -> None:
        """Attach a simulated clock (anything with a float ``.now``)."""
        self.sim_clock = clock

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attributes: Any) -> _ActiveSpan | _Noop:
        """Open a child span of the current one (a root if none is open)."""
        if not self.enabled:
            return NOOP
        parent = self._stack[-1].span_id if self._stack else None
        return _ActiveSpan(
            self,
            Span(
                span_id=next(self._ids),
                parent_id=parent,
                name=name,
                attributes=dict(attributes),
            ),
        )

    def reset(self) -> None:
        self.sink.clear()
        self._local = threading.local()
        self._ids = itertools.count(1)
