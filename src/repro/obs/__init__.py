"""repro.obs — ODS-style self-telemetry for the Robotron reproduction.

The paper's Robotron is itself a monitored system: Facebook's ODS
counters over the management pipeline are the data source for the
paper's own evaluation (section 6).  This package is the reproduction's
equivalent: a process-global :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges, histograms with labeled series), a structured tracer
producing nested :class:`~repro.obs.trace.Span` records, and exporters
(:func:`report` dashboard, :func:`dump_json` feed for ``benchmarks/``).

Usage from any subsystem::

    from repro import obs

    obs.counter("store.txn", store="fbnet").inc()
    with obs.timed("rpc.latency", method="get"):
        ...
    with obs.span("deploy.initial_provision", devices=12) as sp:
        sp.set_attribute("failed", 0)

Metric names follow ``<subsystem>.<event>`` (e.g. ``store.txn``,
``rpc.call``, ``configgen.render``, ``deploy.device``,
``monitoring.job.run``).  Instrumentation is on by default; call
:func:`disable` to turn every call site into a no-op (tests guard that
the disabled paths add no measurable overhead), and :func:`reset` to
wipe state between tests.
"""

from __future__ import annotations

from typing import Any

from repro.obs import export as _export
from repro.obs import flight
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, TraceSink, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceSink",
    "Tracer",
    "counter",
    "deterministic_dump",
    "disable",
    "dump_json",
    "enable",
    "enabled",
    "export_chrome_trace",
    "flight",
    "gauge",
    "histogram",
    "registry",
    "report",
    "reset",
    "set_sim_clock",
    "snapshot",
    "span",
    "timed",
    "tracer",
]

_registry = MetricsRegistry()
_tracer = Tracer()
flight._set_tracer(_tracer)


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The process-global tracer."""
    return _tracer


# -- enable / disable / reset ------------------------------------------------


def enable() -> None:
    """Turn instrumentation on (the default)."""
    _registry.enabled = True
    _tracer.enabled = True
    flight.recorder().enabled = True


def disable() -> None:
    """Turn every instrumentation call site into a no-op."""
    _registry.enabled = False
    _tracer.enabled = False
    flight.recorder().enabled = False


def enabled() -> bool:
    return _registry.enabled


def reset() -> None:
    """Wipe all metrics, spans, flight events, and the sim clock; re-enable.
    Test hook."""
    _registry.reset()
    _registry.enabled = True
    _tracer.reset()
    _tracer.enabled = True
    _tracer.sim_clock = None
    flight.reset()


# -- metrics -----------------------------------------------------------------


def counter(name: str, **labels: Any):
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any):
    return _registry.gauge(name, **labels)


def histogram(name: str, buckets: tuple[float, ...] | None = None, **labels: Any):
    return _registry.histogram(name, buckets, **labels)


def timed(name: str, **labels: Any):
    """Context manager observing the block's wall time into a histogram."""
    return _registry.timed(name, **labels)


# -- tracing -----------------------------------------------------------------


def span(name: str, **attributes: Any):
    """Open a traced span; nests under any currently-open span."""
    return _tracer.span(name, **attributes)


def set_sim_clock(clock: Any | None) -> None:
    """Attach the simulation clock so spans also record simulated time."""
    _tracer.set_sim_clock(clock)


# -- export ------------------------------------------------------------------


def report(*, max_trace_roots: int = 20) -> str:
    """The ODS-style text dashboard over all metrics and the span tree."""
    return _export.render_report(_registry, _tracer.sink, max_trace_roots=max_trace_roots)


def snapshot() -> dict[str, Any]:
    """A JSON-serializable dict of all metrics and span records."""
    return _export.snapshot(_registry, _tracer.sink)


def dump_json(path: str | None = None, *, indent: int | None = 2) -> str:
    """Serialize the snapshot to JSON; optionally also write it to ``path``."""
    text = _export.render_json(_registry, _tracer.sink, indent=indent)
    if path is not None:
        from pathlib import Path

        Path(path).write_text(text + "\n")
    return text


def deterministic_dump() -> dict[str, Any]:
    """Counters + histogram counts only — identical at any worker count.

    The chaos CI matrix compares this (serialized) dump bit-for-bit
    between ``ROBOTRON_WORKERS=1`` and ``=4`` runs; see
    :func:`repro.obs.export.deterministic_dump` for what is excluded.
    """
    return _export.deterministic_dump(_registry)


def export_chrome_trace(path: str | None = None) -> dict[str, Any]:
    """The span tree (plus flight events) in Chrome Trace Event format.

    Load the written file in ``chrome://tracing`` or Perfetto to inspect
    the run as a real flame chart; flight events appear as instants
    carrying their change id and linked span id.
    """
    return _export.export_chrome_trace(
        _tracer.sink, flight.timeline(), path=path
    )
