"""ODS-style operational metrics: counters, gauges, and histograms.

Facebook tracks Robotron itself with ODS operational counters (the data
behind the paper's own evaluation, Figures 12-16); this module gives the
reproduction the same self-observability.  A :class:`MetricsRegistry`
holds *labeled series*: one logical metric name (``store.txn``) fans out
into one series per unique label set (``region="r1"`` vs ``region="r2"``).

Everything here is dependency-free and cheap.  When a registry is
disabled its factory methods return a shared no-op object, so call sites
can stay unconditional (``registry.counter("rpc.call").inc()``) without
paying for instrumentation that nobody is reading.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Any

from repro.common.util import percentile

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Latency buckets in seconds (50us .. 10s), the default for ``timed()``.
DEFAULT_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets for count-valued histograms (rows per txn, devices per op).
COUNT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000)

#: Metric names follow ``<subsystem>.<event>``: lowercase dotted segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_-]+)+$")

#: One process-wide lock covers series creation and every read-modify-
#: write update.  Worker-pool tasks record metrics concurrently; without
#: the lock, ``value += amount`` and bucket increments lose updates (and
#: the deterministic chaos dumps would disagree across worker counts).
_series_lock = threading.Lock()


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _SeriesBase:
    """Common identity plumbing for one labeled series."""

    __slots__ = ("name", "labels")
    kind = "metric"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels

    def label_str(self) -> str:
        if not self.labels:
            return "-"
        return ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.label_str()}>"


class Counter(_SeriesBase):
    """A monotonically increasing count (events, rows, failures)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with _series_lock:
            self.value += amount


class Gauge(_SeriesBase):
    """A point-in-time level (replication lag, queue depth)."""

    __slots__ = ("value", "updated_at")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0
        self.updated_at: float | None = None

    def set(self, value: float, *, at: float | None = None) -> None:
        with _series_lock:
            self.value = float(value)
            self.updated_at = at

    def inc(self, amount: float = 1.0) -> None:
        with _series_lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with _series_lock:
            self.value -= amount


class Histogram(_SeriesBase):
    """A distribution: fixed buckets plus streaming percentiles.

    Bucket counts are exact; percentiles come from a bounded reservoir of
    the most recent ``reservoir`` observations (via
    :func:`repro.common.util.percentile`), so memory stays constant no
    matter how long a simulation runs.
    """

    __slots__ = (
        "buckets", "bucket_counts", "count", "total", "min", "max", "_samples",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        reservoir: int = 1024,
    ):
        super().__init__(name, labels)
        self.buckets = tuple(sorted(buckets))
        # One count per bucket upper-bound, plus a final overflow bucket.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        value = float(value)
        with _series_lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._samples.append(value)

    def percentile(self, pct: float) -> float:
        """Percentile over the recent-sample reservoir (nearest rank)."""
        return percentile(sorted(self._samples), pct)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "p50": percentile(ordered, 50),
            "p95": percentile(ordered, 95),
            "p99": percentile(ordered, 99),
        }


class _Noop:
    """Absorbs every metric/span/timer operation when obs is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float, *, at: float | None = None) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> _Noop:
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NOOP = _Noop()


class _Timer:
    """Times a ``with`` block into a histogram (wall seconds)."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> _Timer:
        from time import perf_counter

        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        from time import perf_counter

        self._hist.observe(perf_counter() - self._start)


class MetricsRegistry:
    """All live metric series for one process, keyed by (name, labels)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], _SeriesBase] = {}

    # -- series factories ----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter | _Noop:
        if not self.enabled:
            return NOOP
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge | _Noop:
        if not self.enabled:
            return NOOP
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram | _Noop:
        if not self.enabled:
            return NOOP
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def timed(self, name: str, **labels: Any) -> _Timer | _Noop:
        """Context manager observing the block's wall time into ``name``."""
        if not self.enabled:
            return NOOP
        return _Timer(self._get_or_create(Histogram, name, labels))

    def _get_or_create(
        self,
        kind: type,
        name: str,
        labels: dict[str, Any],
        buckets: tuple[float, ...] | None = None,
    ) -> Any:
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"metric name {name!r} must follow <subsystem>.<event> "
                    "(lowercase dotted segments)"
                )
            label_strs = {k: str(v) for k, v in labels.items()}
            with _series_lock:
                series = self._series.get(key)
                if series is None:
                    if kind is Histogram:
                        series = Histogram(
                            name, label_strs, buckets or DEFAULT_BUCKETS
                        )
                    else:
                        series = kind(name, label_strs)
                    self._series[key] = series
        if not isinstance(series, kind):
            raise ValueError(
                f"metric {name!r} is a {series.kind}, not a {kind.__name__.lower()}"
            )
        return series

    # -- introspection -------------------------------------------------------

    def series(self) -> list[_SeriesBase]:
        """Every live series, ordered by (name, labels)."""
        return [
            self._series[key] for key in sorted(self._series, key=lambda k: (k[0], k[1]))
        ]

    def get(self, name: str, **labels: Any) -> _SeriesBase | None:
        """Look up an existing series without creating it."""
        return self._series.get((name, _label_key(labels)))

    def names(self) -> set[str]:
        return {name for name, _ in self._series}

    def reset(self) -> None:
        self._series.clear()

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """A JSON-serializable dump of every series."""
        out: dict[str, list[dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for series in self.series():
            entry: dict[str, Any] = {"name": series.name, "labels": series.labels}
            if isinstance(series, Counter):
                entry["value"] = series.value
                out["counters"].append(entry)
            elif isinstance(series, Gauge):
                entry["value"] = series.value
                entry["updated_at"] = series.updated_at
                out["gauges"].append(entry)
            else:
                assert isinstance(series, Histogram)
                entry.update(series.summary())
                out["histograms"].append(entry)
        return out
