"""The Robotron facade: the four-stage life cycle in one object (Figure 3).

``Robotron`` wires the subsystems together the way Figure 3 draws them:
FBNet at the center; network design writing Desired objects; config
generation deriving golden configs; deployment pushing them to the
(emulated) fleet; and monitoring watching the fleet, populating Derived
models, and guarding config conformance.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from contextlib import nullcontext

from repro import faults, obs
from repro.obs import flight
from repro.common.errors import RobotronError
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.configgen.configerator import Configerator
from repro.configgen.generator import (
    ConfigGenerator,
    DeviceConfig,
    IncrementalGenReport,
)
from repro.deploy.deployer import DeployReport, Deployer, cluster_domain
from repro.deploy.guard import DeploymentGuard, HealthGate, RolloutResult
from repro.deploy.phases import PhaseSpec
from repro.design.backbone import BackboneDesignTool
from repro.design.changes import ChangeSummary, DesignChange
from repro.design.cluster import build_cluster
from repro.design.materializer import MaterializedCluster
from repro.design.validation import DEFAULT_RULES
from repro.devices.fleet import DeviceFleet
from repro.fbnet.base import Model
from repro.fbnet.models import ClusterGeneration, DeviceStatus, DrainState
from repro.fbnet.store import ObjectStore
from repro.monitoring.audit import AuditReport, run_audit
from repro.monitoring.backends import (
    ConfigBackupBackend,
    DerivedModelBackend,
    TimeSeriesBackend,
)
from repro.monitoring.classifier import Classifier, default_rule_table
from repro.monitoring.confmon import ConfigDiscrepancy, ConfigMonitor
from repro.monitoring.jobs import JobManager, JobSpec
from repro.monitoring.syslog import SyslogCollector
from repro.simulation.clock import EventScheduler, MINUTE

__all__ = ["IncrementalCycleReport", "Robotron"]


@dataclass
class IncrementalCycleReport:
    """Outcome of one :meth:`Robotron.incremental_cycle` pass."""

    #: What config generation found dirty (and regenerated).
    generation: IncrementalGenReport
    #: The deployment of the regenerated configs (None when nothing was
    #: dirty or deployment was not requested).
    deploy: DeployReport | None = None
    #: Drift found by the prioritized ConfMon sweep afterwards.
    discrepancies: list[ConfigDiscrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.deploy is None or self.deploy.ok) and not self.discrepancies

#: The default periodic monitoring schedule (engine, data type, period s).
DEFAULT_JOB_SPECS = (
    JobSpec("snmp-interfaces", "snmp", "interfaces", 60.0, ("tsdb", "derived")),
    JobSpec("snmp-system", "snmp", "system", 60.0, ("tsdb", "derived")),
    JobSpec("cli-lldp", "cli", "lldp", 300.0, ("derived",)),
    JobSpec("cli-bgp", "cli", "bgp", 300.0, ("derived",)),
    JobSpec("cli-config-backup", "cli", "running-config", 3600.0, ("config-backup", "derived")),
)


class Robotron:
    """One Robotron deployment over one FBNet store and one device fleet."""

    def __init__(
        self,
        store: ObjectStore | None = None,
        scheduler: EventScheduler | None = None,
        *,
        configerator: Configerator | None = None,
        retry_policy: RetryPolicy | None = None,
        shards: int | None = None,
    ):
        if shards is not None:
            if store is not None:
                raise RobotronError("pass either a store or a shard count")
            from repro.fbnet.sharding import ShardedObjectStore

            store = ShardedObjectStore(shards=shards)
        self.scheduler = scheduler or EventScheduler()
        #: Passed to the deployer and job manager built by this facade so
        #: chaos runs recover transient faults (see :mod:`repro.faults`).
        self.retry_policy = retry_policy
        # Spans record simulated time alongside wall time (last Robotron
        # built wins the global tracer's clock — they share it in tests).
        obs.set_sim_clock(self.scheduler.clock)
        self.store = store or ObjectStore()
        self.generator = ConfigGenerator(self.store, configerator)
        self.backbone = BackboneDesignTool(self.store)

        # Built when the network is provisioned.
        self.fleet: DeviceFleet | None = None
        self.deployer: Deployer | None = None
        self.guard: DeploymentGuard | None = None
        self.jobs: JobManager | None = None
        self.collector: SyslogCollector | None = None
        self.classifier: Classifier | None = None
        self.confmon: ConfigMonitor | None = None
        #: The closed-loop remediation engine (attach_remediation()).
        self.remediation = None
        self.tsdb = TimeSeriesBackend()
        self.notifications: list[str] = []

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def attach_durability(
        self, root, *, snapshot_every: int | None = None, fsync: bool = False
    ):
        """Journal this deployment's FBNet commits to a WAL under ``root``."""
        return self.store.attach_durability(
            root, snapshot_every=snapshot_every, fsync=fsync
        )

    @classmethod
    def recover(
        cls,
        root,
        scheduler: EventScheduler | None = None,
        *,
        configerator: Configerator | None = None,
        retry_policy: RetryPolicy | None = None,
        snapshot_every: int | None = None,
        fsync: bool = False,
    ) -> Robotron:
        """Rebuild a Robotron whose process died, from its durability root.

        The FBNet store comes back crash-consistent (last durable commit);
        volatile state — the emulated fleet, monitoring, remediation — is
        re-derived from it the same way a fresh deployment would:
        ``boot_fleet()``, ``attach_monitoring()``, ``attach_remediation()``.
        """
        from pathlib import Path

        from repro.fbnet.sharding import MANIFEST_NAME, ShardedObjectStore

        # A sharded root carries a manifest next to its shard dirs; a
        # single-store root is the WAL directory itself.
        store_cls = (
            ShardedObjectStore
            if (Path(root) / MANIFEST_NAME).is_file()
            else ObjectStore
        )
        store = store_cls.recover(
            root, snapshot_every=snapshot_every, fsync=fsync
        )
        return cls(
            store,
            scheduler,
            configerator=configerator,
            retry_policy=retry_policy,
        )

    # ------------------------------------------------------------------
    # Stage 1: network design
    # ------------------------------------------------------------------

    def design_change(
        self,
        *,
        employee_id: str,
        ticket_id: str,
        description: str = "",
        domain: str = "",
        reviewer: Callable[[ChangeSummary], bool] | None = None,
    ) -> DesignChange:
        """Open a validated, reviewed, audited design change (section 5.1)."""
        return DesignChange(
            self.store,
            employee_id=employee_id,
            ticket_id=ticket_id,
            description=description,
            domain=domain,
            reviewer=reviewer,
            validators=list(DEFAULT_RULES),
            committed_at=self.scheduler.clock.now,
        )

    def build_cluster(
        self,
        name: str,
        location: Model,
        generation: ClusterGeneration,
        *,
        employee_id: str = "oncall",
        ticket_id: str = "AUTO",
    ) -> MaterializedCluster:
        """Design-change-wrapped cluster build from the generation catalog."""
        with obs.span(
            "design.build_cluster", cluster=name, generation=generation.value
        ):
            with self.design_change(
                employee_id=employee_id,
                ticket_id=ticket_id,
                description=f"build cluster {name}",
                domain=location.domain.value,
            ):
                return build_cluster(self.store, name, location, generation)

    # ------------------------------------------------------------------
    # Stage 2 + 3: config generation and deployment
    # ------------------------------------------------------------------

    def boot_fleet(self) -> DeviceFleet:
        """Instantiate the emulated fleet from FBNet Desired state."""
        with obs.span("robotron.boot_fleet"):
            self.fleet = DeviceFleet.from_fbnet(self.store, self.scheduler)
            self.deployer = Deployer(
                self.fleet,
                notifier=self.notifications.append,
                retry_policy=self.retry_policy,
                # Phased pushes may run concurrently across clusters but
                # never two at once within one (blast-radius cap).
                domain_of=cluster_domain,
            )
            self.guard = DeploymentGuard(
                self.deployer,
                self.fleet,
                store=self.store,
                notifier=self.notifications.append,
            )
        return self.fleet

    def _require_fleet(self) -> DeviceFleet:
        if self.fleet is None:
            raise RobotronError("no fleet; call boot_fleet() first")
        return self.fleet

    def provision_devices(self, devices: list[Model]) -> DeployReport:
        """Initially provision clean devices, then undrain them.

        Mirrors the paper's turn-up sequence: devices are provisioned
        while fully drained (section 5.3.1's requirement) — their first
        configs carry BGP shutdowns — and only then undrained, which is
        an incremental config update that brings the sessions up.
        """
        fleet = self._require_fleet()
        assert self.deployer is not None
        with obs.span("robotron.provision", devices=len(devices)):
            configs: dict[str, DeviceConfig] = self.generator.generate_devices(devices)
            report = self.deployer.initial_provision(configs, store=self.store)
            undrained = []
            with self.store.transaction():
                for device in devices:
                    if device.name in report.succeeded:
                        self.store.update(
                            device,
                            status=DeviceStatus.PRODUCTION,
                            drain_state=DrainState.UNDRAINED,
                        )
                        undrained.append(device)
            if undrained:
                undrain_configs = self.generator.generate_devices(undrained)
                undrain_report = self.deployer.deploy(undrain_configs)
                report.failed.update(undrain_report.failed)
        return report

    def provision_cluster(self, materialized: MaterializedCluster) -> DeployReport:
        """Provision every device of a freshly built cluster."""
        return self.provision_devices(materialized.all_devices())

    def guarded_deploy(
        self,
        configs: dict[str, DeviceConfig],
        phases: list[PhaseSpec],
        *,
        max_failure_ratio: float | None = None,
        bake_seconds: float = 60.0,
        probe: Callable[[list[str]], bool] | None = None,
    ) -> RolloutResult:
        """Health-gated rollout with automatic rollback to last-known-good.

        The gate reuses whatever monitoring is attached: ConfMon sweeps
        and the syslog classifier join device reachability (and the
        optional ``probe``) in every post-phase health evaluation.  On
        any failure the whole rollout is restored, so the fleet ends
        fully-new or fully-previous — never mixed.
        """
        self._require_fleet()
        assert self.guard is not None
        self.guard.gate = HealthGate(
            self.fleet,
            confmon=self.confmon,
            classifier=self.classifier,
            probe=probe,
        )
        # One change context for the whole rollout (joined if the caller
        # already opened one): every wave, gate verdict, syslog line seen
        # during bake, and LKG restore lands under a single change id.
        with flight.change_context(
            f"guarded_deploy of {len(configs)} device(s)"
        ):
            return self.guard.rollout(
                configs,
                phases,
                max_failure_ratio=max_failure_ratio,
                bake_seconds=bake_seconds,
            )

    def guarded_push(
        self,
        configs: Mapping[str, DeviceConfig],
        *,
        bake_seconds: float = 0.0,
        max_failure_ratio: float | None = None,
        phase_name: str = "guarded-push",
    ) -> DeployReport:
        """A single-phase guarded rollout with a plain-deploy signature.

        The adapter that lets ``Pusher``-shaped call sites (drains, the
        remediation engine) inherit canary gating and LKG rollback: one
        100% phase, and — because a gate-failure rollback restores
        devices without marking their pushes failed — any non-succeeded
        outcome is folded into ``report.failed`` so callers' compensation
        paths fire.
        """
        rollout = self.guarded_deploy(
            dict(configs),
            [PhaseSpec(name=phase_name, percentage=100.0)],
            max_failure_ratio=max_failure_ratio,
            bake_seconds=bake_seconds,
        )
        report = rollout.report
        if not rollout.ok:
            reason = rollout.rollback_reason or rollout.outcome.value
            for name in configs:
                report.failed.setdefault(name, reason)
        return report

    # ------------------------------------------------------------------
    # The incremental change-propagation cycle
    # ------------------------------------------------------------------

    def incremental_cycle(
        self,
        *,
        devices: list[Model] | None = None,
        deploy: bool = True,
        sweep: bool = True,
        sweep_limit: int | None = None,
    ) -> IncrementalCycleReport:
        """Propagate FBNet changes end to end, touching only what changed.

        The steady-state loop the paper's scale demands: regenerate the
        configs whose read-sets match journal records since their last
        generation (``regenerate_dirty``), push only those — with the
        content-hash skip so byte-identical regenerations don't commit —
        and point a prioritized ConfMon sweep at the devices that just
        changed.  A cycle with no design changes is a cheap no-op.
        """
        with obs.span("robotron.incremental_cycle"):
            generation = self.generator.regenerate_dirty(devices)
            # Attribute the rest of the cycle to the change that caused
            # it: when every journal-matched regeneration traces to one
            # change id, the cycle *resumes* that change — deploy pushes
            # and monitoring verdicts join the same lineage the design
            # mutation opened.  With several (or no) origin changes, a
            # fresh aggregate context lists them as causes.
            origin_ids = sorted(
                {cid for cid in generation.origins.values() if cid}
            )
            if generation.regenerated:
                resume = origin_ids[0] if len(origin_ids) == 1 else None
                cycle_ctx = flight.change_context(
                    "incremental_cycle",
                    change_id=resume,
                    causes=() if resume else origin_ids,
                )
            else:
                cycle_ctx = nullcontext()
            with cycle_ctx:
                deploy_report = None
                if deploy and generation.regenerated:
                    self._require_fleet()
                    assert self.deployer is not None
                    deploy_report = self.deployer.deploy(
                        generation.regenerated, skip_unchanged=True
                    )
                discrepancies: list[ConfigDiscrepancy] = []
                if sweep and self.confmon is not None:
                    # Default budget: just the regenerated devices (they
                    # sort first in the priority queue); callers wanting a
                    # wider audit pass an explicit sweep_limit.
                    limit = (
                        sweep_limit
                        if sweep_limit is not None
                        else len(generation.regenerated)
                    )
                    if limit != 0:
                        discrepancies = self.confmon.priority_sweep(limit)
        return IncrementalCycleReport(
            generation=generation,
            deploy=deploy_report,
            discrepancies=discrepancies,
        )

    # ------------------------------------------------------------------
    # Stage 4: monitoring
    # ------------------------------------------------------------------

    def attach_monitoring(
        self, job_specs: tuple[JobSpec, ...] = DEFAULT_JOB_SPECS
    ) -> None:
        """Stand up passive + active + config monitoring over the fleet."""
        fleet = self._require_fleet()
        with obs.span("monitoring.attach", jobs=len(job_specs)):
            self._attach_monitoring(fleet, job_specs)

    def _attach_monitoring(
        self, fleet: DeviceFleet, job_specs: tuple[JobSpec, ...]
    ) -> None:
        self.jobs = JobManager(
            fleet, self.scheduler, retry_policy=self.retry_policy
        )
        self.jobs.register_backend(self.tsdb)
        self.jobs.register_backend(DerivedModelBackend(self.store, self.scheduler.clock))
        self.collector = SyslogCollector()
        fleet.subscribe_syslog(self.collector)
        self.classifier = Classifier(default_rule_table())
        self.collector.subscribe(self.classifier)
        self.confmon = ConfigMonitor(
            fleet,
            self.generator,
            self.jobs,
            notifier=lambda d: self.notifications.append(
                f"config drift on {d.device}"
            ),
        )
        self.collector.subscribe(self.confmon)
        # Change propagation: freshly regenerated configs steer ConfMon's
        # priority sweeps toward the devices that just changed.
        self.generator.subscribe(self.confmon.note_regenerated)
        for spec in job_specs:
            self.jobs.add_job(spec)

    def audit(self) -> AuditReport:
        """Desired-vs-Derived anomaly detection over current FBNet state."""
        with obs.span("monitoring.audit") as span:
            report = run_audit(self.store)
            span.set_attribute("findings", len(report.findings))
        return report

    # ------------------------------------------------------------------
    # Operational workflows
    # ------------------------------------------------------------------

    @property
    def peering(self):
        """The peering/transit design tool (section 2.1)."""
        from repro.design.peering import PeeringDesignTool

        if not hasattr(self, "_peering_tool"):
            self._peering_tool = PeeringDesignTool(self.store)
        return self._peering_tool

    def drain(
        self,
        device_name: str,
        *,
        reason: str = "maintenance",
        guarded: bool = False,
    ):
        """Drain one device out of production traffic (sections 1, 6.1).

        With ``guarded``, the drained config is pushed through
        :meth:`guarded_push` (health gate + LKG rollback) instead of a
        plain deploy.
        """
        from repro.deploy.maintenance import drain_device

        self._require_fleet()
        assert self.deployer is not None
        return drain_device(
            self.store, self.fleet, self.generator, self.deployer,
            device_name, reason=reason,
            pusher=self.guarded_push if guarded else None,
        )

    def undrain(
        self,
        device_name: str,
        *,
        reason: str = "maintenance complete",
        guarded: bool = False,
    ):
        """Return a drained device to production traffic."""
        from repro.deploy.maintenance import undrain_device

        self._require_fleet()
        assert self.deployer is not None
        return undrain_device(
            self.store, self.fleet, self.generator, self.deployer,
            device_name, reason=reason,
            pusher=self.guarded_push if guarded else None,
        )

    # ------------------------------------------------------------------
    # Closed-loop remediation
    # ------------------------------------------------------------------

    def attach_remediation(self, policy=None):
        """Stand up the closed-loop remediation engine over monitoring.

        Requires :meth:`attach_monitoring` first — the engine subscribes
        to ConfMon drift notifications and the syslog urgency stream.
        Returns the attached :class:`repro.remediation.RemediationEngine`
        (also kept on ``self.remediation``).
        """
        from repro.remediation import RemediationEngine

        engine = RemediationEngine(self, policy)
        engine.attach()
        self.remediation = engine
        return engine

    def remediation_loop(
        self,
        *,
        max_sweeps: int = 20,
        period: float = 60.0,
        sweep_limit: int | None = None,
    ):
        """Run the detect → act → verify loop until the fleet converges.

        Every device the loop touched ends ``verified`` (the corrective
        action landed and live state checked out) or ``quarantined``
        (drained out of traffic after the attempt budget) — never parked
        mid-transition.  See :class:`repro.remediation.RemediationEngine`.
        """
        engine = getattr(self, "remediation", None)
        if engine is None:
            engine = self.attach_remediation()
        return engine.run(
            max_sweeps=max_sweeps, period=period, sweep_limit=sweep_limit
        )

    # ------------------------------------------------------------------
    # Chaos
    # ------------------------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> FaultPlan:
        """Bind ``plan`` to this deployment's clock and activate it.

        Time-windowed fault specs fire against this Robotron's simulated
        clock; call :func:`repro.faults.uninstall` (or use
        ``plan.installed()`` instead) to deactivate.
        """
        plan.bind_clock(self.scheduler.clock)
        return faults.install(plan)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run(self, seconds: float) -> int:
        """Advance simulated time (monitoring jobs, confirm timers, ...)."""
        return self.scheduler.run_until(self.scheduler.clock.now + seconds)

    def run_minutes(self, minutes: float) -> int:
        return self.run(minutes * MINUTE)
