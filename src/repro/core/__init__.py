"""Top-level orchestration: the Robotron facade (paper Figure 3).

:class:`~repro.core.robotron.Robotron` wires FBNet, the design tools,
config generation, deployment, and monitoring into the four-stage
management life cycle; :mod:`repro.core.seeds` provides the standard
environment (hardware catalog, prefix pools, regions, sites) that tests,
examples, and benchmarks build networks in.
"""

from repro.core.robotron import Robotron
from repro.core.seeds import SeededEnvironment, seed_environment

__all__ = ["Robotron", "SeededEnvironment", "seed_environment"]
