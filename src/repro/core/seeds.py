"""Standard environment seeding: the catalog every network is built from.

Creates the hardware profiles, prefix pools, regions, and sites that the
design tools reference by name.  Tests, examples, and benchmarks all
start from this environment so they exercise the same catalog paths a
production deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fbnet.models import (
    BackboneSite,
    Datacenter,
    HardwareProfile,
    LinecardModel,
    NetworkDomain,
    Pop,
    PrefixPool,
    RackProfile,
    Region,
    Vendor,
)
from repro.fbnet.store import ObjectStore

__all__ = ["SeededEnvironment", "seed_environment"]

#: The default prefix pools (name, covering prefix, version, purpose).
DEFAULT_POOLS = (
    ("pop-p2p-v6", "2401:db00:1::/48", 6, "p2p"),
    ("pop-p2p-v4", "10.128.0.0/14", 4, "p2p"),
    ("dc-p2p-v6", "2401:db00:2::/48", 6, "p2p"),
    ("dc-p2p-v4", "10.132.0.0/14", 4, "p2p"),
    ("backbone-p2p-v6", "2401:db00:3::/48", 6, "p2p"),
    ("backbone-loopback-v6", "2401:db00:f::/64", 6, "loopback"),
    ("rack-v6", "2401:db00:4::/48", 6, "rack"),
)


@dataclass
class SeededEnvironment:
    """Handles to the seeded catalog objects."""

    store: ObjectStore
    regions: dict[str, Region] = field(default_factory=dict)
    pops: dict[str, Pop] = field(default_factory=dict)
    datacenters: dict[str, Datacenter] = field(default_factory=dict)
    backbone_sites: dict[str, BackboneSite] = field(default_factory=dict)
    profiles: dict[str, HardwareProfile] = field(default_factory=dict)
    pools: dict[str, PrefixPool] = field(default_factory=dict)


def seed_environment(
    store: ObjectStore,
    *,
    region_names: tuple[str, ...] = ("na-east", "na-west", "eu-central"),
    pop_count: int = 2,
    datacenter_count: int = 1,
    backbone_site_count: int = 2,
) -> SeededEnvironment:
    """Populate ``store`` with the standard catalog; returns the handles.

    Sites are spread round-robin across the regions: POPs named
    ``pop01..``, datacenters ``dc01..``, backbone sites ``bbs01..``.
    """
    env = SeededEnvironment(store=store)
    with store.transaction():
        for name in region_names:
            env.regions[name] = store.create(Region, name=name)
        region_list = list(env.regions.values())

        def region_for(index: int) -> Region:
            return region_list[index % len(region_list)]

        # Hardware catalog: one router and one switch SKU per vendor.
        lc_router = store.create(
            LinecardModel, name="LC-36x100G", port_count=36, port_speed_mbps=100_000
        )
        lc_switch = store.create(
            LinecardModel, name="LC-48x10G", port_count=48, port_speed_mbps=10_000
        )
        env.profiles["Router_Vendor1"] = store.create(
            HardwareProfile,
            name="Router_Vendor1",
            vendor=Vendor.VENDOR1,
            slot_count=8,
            linecard_model=lc_router,
        )
        env.profiles["Router_Vendor2"] = store.create(
            HardwareProfile,
            name="Router_Vendor2",
            vendor=Vendor.VENDOR2,
            slot_count=8,
            linecard_model=lc_router,
        )
        env.profiles["Switch_Vendor1"] = store.create(
            HardwareProfile,
            name="Switch_Vendor1",
            vendor=Vendor.VENDOR1,
            slot_count=4,
            linecard_model=lc_switch,
        )
        env.profiles["Switch_Vendor2"] = store.create(
            HardwareProfile,
            name="Switch_Vendor2",
            vendor=Vendor.VENDOR2,
            slot_count=4,
            linecard_model=lc_switch,
        )

        for name, prefix, version, purpose in DEFAULT_POOLS:
            env.pools[name] = store.create(
                PrefixPool, name=name, prefix=prefix, version=version, purpose=purpose
            )

        store.create(RackProfile, name="web-rack", downlinks_per_rack=4)
        store.create(RackProfile, name="storage-rack", downlinks_per_rack=8)

        for index in range(1, pop_count + 1):
            name = f"pop{index:02d}"
            env.pops[name] = store.create(
                Pop, name=name, region=region_for(index), domain=NetworkDomain.POP
            )
        for index in range(1, datacenter_count + 1):
            name = f"dc{index:02d}"
            env.datacenters[name] = store.create(
                Datacenter,
                name=name,
                region=region_for(index),
                domain=NetworkDomain.DATACENTER,
            )
        for index in range(1, backbone_site_count + 1):
            name = f"bbs{index:02d}"
            env.backbone_sites[name] = store.create(
                BackboneSite,
                name=name,
                region=region_for(index),
                domain=NetworkDomain.BACKBONE,
            )
    return env
