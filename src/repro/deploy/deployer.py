"""The deployment engine (paper section 5.3).

Engineers deploy generated configs through this engine.  It covers both
paper scenarios — initial provisioning of clean devices and incremental
updates to live devices — and implements the four incremental-update
safety mechanisms: dryrun, atomic, phased, and human confirmation.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from functools import partial

from repro import faults, obs, parallel
from repro.obs import flight
from repro.common.errors import DeploymentError
from repro.configgen.generator import DeviceConfig
from repro.faults.retry import CircuitBreaker, GiveUp, RetryPolicy
from repro.deploy.diff import count_changed_lines, unified_diff
from repro.deploy.phases import PhaseSpec
from repro.devices.emulator import CommitError, EmulatedDevice
from repro.devices.fleet import DeviceFleet

__all__ = ["DeployReport", "Deployer", "PhaseOutcome", "cluster_domain"]


def cluster_domain(device: EmulatedDevice) -> str:
    """The default failure domain: the device's cluster-name prefix.

    ``pop01.c01.tor1`` → ``pop01.c01`` — phased pushes may run
    concurrently across clusters but never two at once within one.
    """
    name = device.name
    return name.rsplit(".", 1)[0] if "." in name else name


def _config_text(config: DeviceConfig | str) -> str:
    return config.text if isinstance(config, DeviceConfig) else config


def _config_sha(config: DeviceConfig | str) -> str:
    if isinstance(config, DeviceConfig):
        return config.sha
    return hashlib.sha256(config.encode()).hexdigest()


@dataclass
class DeployReport:
    """The outcome of one deployment operation."""

    operation: str
    succeeded: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    rolled_back: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    diffs: dict[str, str] = field(default_factory=dict)
    changed_lines: dict[str, int] = field(default_factory=dict)
    notifications: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed

    def total_changed_lines(self) -> int:
        return sum(self.changed_lines.values())


@dataclass
class PhaseOutcome:
    """What happened while pushing one phase's batch of devices."""

    succeeded: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    #: Batch members never attempted because the push stopped early.
    not_attempted: list[str] = field(default_factory=list)
    circuit_open: bool = False
    halted: bool = False

    def first_failure(self) -> str:
        return next(iter(self.failed.values()), "")


class Deployer:
    """Pushes configs to an emulated fleet with the paper's safety modes."""

    def __init__(
        self,
        fleet: DeviceFleet,
        *,
        notifier: Callable[[str], None] | None = None,
        retry_policy: RetryPolicy | None = None,
        domain_of: Callable[[EmulatedDevice], str] | None = None,
    ):
        self._fleet = fleet
        self._notify = notifier or (lambda _msg: None)
        #: When set, transient per-device commit failures are retried with
        #: backoff on the simulated clock before counting as failures.
        self._retry_policy = retry_policy
        #: Maps a device to its failure domain for phased pushes.  With
        #: ``None`` (the default) every device shares one domain, so
        #: phases push strictly one device at a time — the conservative
        #: serial behavior.  The :class:`~repro.core.robotron.Robotron`
        #: facade wires :func:`cluster_domain` so pushes parallelize
        #: across clusters while never running two at once inside one.
        self._domain_of = domain_of

    def failure_domain(self, device: EmulatedDevice) -> str:
        return "" if self._domain_of is None else str(self._domain_of(device))

    def _plan_waves(self, batch: list[str]) -> list[list[str]]:
        """Split a phase batch into waves of domain-distinct devices.

        Greedy in batch order: each device joins the earliest wave not
        already holding its failure domain.  Wave composition depends
        only on the batch and the domain map — never on the worker count
        — and a wave's members may push concurrently because no two
        share a domain.
        """
        waves: list[list[str]] = []
        domains: list[set[str]] = []
        for name in batch:
            domain = self.failure_domain(self._fleet.get(name))
            for wave, used in zip(waves, domains):
                if domain not in used:
                    wave.append(name)
                    used.add(domain)
                    break
            else:
                waves.append([name])
                domains.append({domain})
        return waves

    def _push(self, device: EmulatedDevice, text: str) -> float:
        """Commit ``text`` on ``device``, retrying transient failures.

        The ``deploy.push`` fault-injection point fires here; with a
        retry policy configured, injected (and other transient) commit
        errors are retried up to the policy's budget, bumping the
        ``deploy.retry`` counter, before the failure is surfaced.  Inside
        a pool task, retry backoff sleeps on the task-local clock (the
        coordinator folds the batch maximum into the shared clock).
        """
        clock = parallel.task_clock(self._fleet.scheduler.clock)

        def once() -> float:
            if faults.should_inject(
                "deploy.push", device=device.name, role=device.role
            ):
                raise CommitError(f"{device.name}: injected push failure")
            return device.commit(text)

        if self._retry_policy is None:
            return once()

        def on_retry(_attempt: int, exc: BaseException) -> None:
            obs.counter("deploy.retry", device=device.name).inc()
            # Recorded from inside the pool task: the event lands in the
            # task's flight buffer and merges back in task-key order.
            flight.record(
                "deploy.retry",
                phase="deployment",
                device=device.name,
                verdict="retried",
                detail=str(exc),
            )

        try:
            return self._retry_policy.execute(
                once,
                retryable=(CommitError,),
                sleep=clock.advance,
                clock=clock,
                on_retry=on_retry,
            )
        except GiveUp as exc:
            assert isinstance(exc.last_error, DeploymentError)
            raise exc.last_error

    @staticmethod
    def _account(report: DeployReport) -> DeployReport:
        """Record one operation's outcome counters into ``repro.obs``."""
        obs.counter("deploy.operation", op=report.operation).inc()
        for outcome, count in (
            ("success", len(report.succeeded)),
            ("failure", len(report.failed)),
            ("rollback", len(report.rolled_back)),
            ("skipped", len(report.skipped)),
        ):
            if count:
                obs.counter(
                    "deploy.device", op=report.operation, outcome=outcome
                ).inc(count)
        return report

    # ------------------------------------------------------------------
    # Initial provisioning (section 5.3.1)
    # ------------------------------------------------------------------

    def initial_provision(
        self,
        configs: Mapping[str, DeviceConfig | str],
        *,
        store=None,
    ) -> DeployReport:
        """Erase and copy configs onto clean devices, then validate.

        When ``store`` is given, every target must be fully drained in
        FBNet — initial provisioning requires devices carry no traffic.
        """
        report = DeployReport(operation="initial_provision")
        with obs.span("deploy.initial_provision", devices=len(configs)):
            if store is not None:
                self._check_drained(configs.keys(), store)
            for name, config in sorted(configs.items()):
                device = self._fleet.get(name)
                text = _config_text(config)
                try:
                    device.erase()
                    device.copy_config(text)
                    self._basic_validation(device, text)
                except DeploymentError as exc:
                    report.failed[name] = str(exc)
                    continue
                report.succeeded.append(name)
                report.changed_lines[name] = count_changed_lines("", text)
        return self._account(report)

    @staticmethod
    def _check_drained(names, store) -> None:
        from repro.fbnet.models import Device, DrainState
        from repro.fbnet.query import Expr, Op

        for name in names:
            obj = store.first(Device, Expr("name", Op.EQUAL, name))
            if obj is not None and obj.drain_state is not DrainState.DRAINED:
                raise DeploymentError(
                    f"{name} is not drained ({obj.drain_state.value}); initial "
                    "provisioning requires drained devices"
                )

    def _basic_validation(self, device: EmulatedDevice, text: str) -> None:
        """Post-provision checks: reachability and config took effect."""
        if not device.reachable():
            raise DeploymentError(f"{device.name}: unreachable after provisioning")
        if device.running_config != text:
            raise DeploymentError(f"{device.name}: running config mismatch")
        if device.parsed.hostname and device.parsed.hostname != device.name:
            raise DeploymentError(
                f"{device.name}: config hostname {device.parsed.hostname!r} "
                "does not match device"
            )

    # ------------------------------------------------------------------
    # Dryrun mode (section 5.3.2)
    # ------------------------------------------------------------------

    def dryrun(self, configs: Mapping[str, DeviceConfig | str]) -> DeployReport:
        """Produce per-device diffs without touching running configs.

        Devices with native dryrun support validate the candidate on-box
        (catching syntax errors and vendor bugs); for the rest the diff is
        computed from the running config (the paper's fallback compares
        before/after deployment — here we preview the same information).
        """
        report = DeployReport(operation="dryrun")
        with obs.span("deploy.dryrun", devices=len(configs)):
            for name, config in sorted(configs.items()):
                device = self._fleet.get(name)
                text = _config_text(config)
                try:
                    if device.supports_native_dryrun:
                        diff = device.dryrun(text)
                    else:
                        diff = unified_diff(device.running_config, text, name)
                except DeploymentError as exc:
                    report.failed[name] = str(exc)
                    continue
                report.diffs[name] = diff
                report.changed_lines[name] = count_changed_lines(
                    device.running_config, text
                )
                report.succeeded.append(name)
        return self._account(report)

    # ------------------------------------------------------------------
    # Plain and atomic incremental updates (section 5.3.2)
    # ------------------------------------------------------------------

    def unchanged(self, name: str, config: DeviceConfig | str) -> bool:
        """Whether the device already runs ``config`` (content-hash match)."""
        return self._fleet.get(name).running_sha == _config_sha(config)

    def deploy(
        self,
        configs: Mapping[str, DeviceConfig | str],
        *,
        skip_unchanged: bool = False,
    ) -> DeployReport:
        """Best-effort incremental update: failures don't undo successes.

        With ``skip_unchanged``, devices whose running config's SHA-256
        already matches the candidate's are not touched (counted under
        ``deploy.skip_unchanged`` and reported as skipped) — steady-state
        rollouts only commit on the dirty subset of the fleet.
        """
        report = DeployReport(operation="deploy")
        with obs.span("deploy.deploy", devices=len(configs)):
            for name, config in sorted(configs.items()):
                device = self._fleet.get(name)
                if skip_unchanged and self.unchanged(name, config):
                    report.skipped.append(name)
                    obs.counter("deploy.skip_unchanged", op="deploy").inc()
                    flight.record(
                        "deploy.push", phase="deployment", device=name,
                        verdict="skipped", detail="running config already matches",
                    )
                    continue
                text = _config_text(config)
                before = device.running_config
                try:
                    self._push(device, text)
                except DeploymentError as exc:
                    report.failed[name] = str(exc)
                    flight.record(
                        "deploy.push", phase="deployment", device=name,
                        verdict="failed", detail=str(exc),
                    )
                    continue
                report.succeeded.append(name)
                report.diffs[name] = unified_diff(before, text, name)
                report.changed_lines[name] = count_changed_lines(before, text)
                flight.record(
                    "deploy.push", phase="deployment", device=name, verdict="ok",
                    detail=f"{report.changed_lines[name]} line(s)",
                )
        return self._account(report)

    def atomic_deploy(
        self,
        configs: Mapping[str, DeviceConfig | str],
        *,
        time_window: float = 60.0,
    ) -> DeployReport:
        """All-or-nothing multi-device update (e.g. iBGP mesh changes).

        If any device errors or cannot finish within ``time_window``, the
        entire transaction is rolled back: every already-updated device is
        restored to its previous config.
        """
        report = DeployReport(operation="atomic_deploy")
        previous: dict[str, str] = {}
        with obs.span("deploy.atomic_deploy", devices=len(configs)) as span:
            try:
                for name, config in sorted(configs.items()):
                    device = self._fleet.get(name)
                    text = _config_text(config)
                    before = device.running_config
                    took = self._push(device, text)
                    previous[name] = before
                    if took > time_window:
                        raise CommitError(
                            f"{name}: commit took {took:.1f}s, exceeding the "
                            f"{time_window:.1f}s atomic window"
                        )
                    report.changed_lines[name] = count_changed_lines(before, text)
            except DeploymentError as exc:
                failed_name = str(exc).split(":", 1)[0]
                report.failed[failed_name] = str(exc)
                for name, old_text in reversed(list(previous.items())):
                    device = self._fleet.get(name)
                    try:
                        device.commit(old_text)
                        report.rolled_back.append(name)
                    except DeploymentError:
                        # A device that cannot be restored is a page, not a log line.
                        self._notify(
                            f"atomic rollback FAILED on {name}; manual intervention needed"
                        )
                report.changed_lines.clear()
                self._notify(f"atomic deployment aborted: {exc}")
                span.set_attribute("aborted", True)
                return self._account(report)
            report.succeeded.extend(sorted(configs))
        return self._account(report)

    # ------------------------------------------------------------------
    # Phased mode (section 5.3.2)
    # ------------------------------------------------------------------

    def push_phase(
        self,
        configs: Mapping[str, DeviceConfig | str],
        batch: list[str],
        report: DeployReport,
        *,
        breaker: CircuitBreaker | None = None,
        halt_on_failure: bool = False,
    ) -> PhaseOutcome:
        """Push one phase's batch, recording outcomes into ``report``.

        The batch is split into failure-domain waves (:meth:`_plan_waves`);
        a wave's devices — all in distinct domains — push concurrently
        across the worker pool, and every wave member always runs, so
        final device states are identical at any worker count.  Outcomes
        merge on the coordinator in wave order: with a ``breaker``,
        failures are tolerated until it opens; with ``halt_on_failure``,
        any failure stops after the current wave.  Either way the wave
        boundary is the halt boundary, and the devices never attempted
        land in ``not_attempted`` so the caller can account for (or roll
        back around) them.
        """
        outcome = PhaseOutcome()
        waves = self._plan_waves(list(batch))
        for index, wave in enumerate(waves):
            flight.record(
                "deploy.wave",
                phase="deployment",
                verdict=f"wave-{index + 1}",
                detail=f"{len(wave)} device(s): {', '.join(wave)}",
            )
            results = parallel.run_tasks(
                [(name, partial(self._push_one, name, configs[name])) for name in wave],
                section="deploy.push",
                clock=self._fleet.scheduler.clock,
            )
            for result in results:
                name = result.key
                if result.error is not None:
                    if not isinstance(result.error, DeploymentError):
                        raise result.error
                    message = str(result.error)
                    report.failed[name] = message
                    outcome.failed[name] = message
                    flight.record(
                        "deploy.push", phase="deployment", device=name,
                        verdict="failed", detail=message,
                    )
                    if breaker is not None:
                        breaker.record_failure()
                        if breaker.open:
                            outcome.circuit_open = True
                    elif halt_on_failure:
                        outcome.halted = True
                    continue
                before = result.value
                report.succeeded.append(name)
                outcome.succeeded.append(name)
                report.changed_lines[name] = count_changed_lines(
                    before, _config_text(configs[name])
                )
                flight.record(
                    "deploy.push", phase="deployment", device=name, verdict="ok",
                    detail=f"{report.changed_lines[name]} line(s)",
                )
                if breaker is not None:
                    breaker.record_success()
            if outcome.circuit_open or outcome.halted:
                if outcome.circuit_open:
                    flight.record(
                        "deploy.breaker",
                        phase="deployment",
                        verdict="open",
                        detail=(
                            f"failure ratio {breaker.failure_ratio:.0%} in "
                            f"wave-{index + 1}"
                        ),
                    )
                for later in waves[index + 1 :]:
                    outcome.not_attempted.extend(later)
                return outcome
        return outcome

    def _push_one(self, name: str, config: DeviceConfig | str) -> str:
        """One phase push task: returns the pre-push running config."""
        device = self._fleet.get(name)
        before = device.running_config
        self._push(device, _config_text(config))
        return before

    def phased_deploy(
        self,
        configs: Mapping[str, DeviceConfig | str],
        phases: list[PhaseSpec],
        *,
        health_check: Callable[[list[str]], bool] | None = None,
        max_failure_ratio: float | None = None,
    ) -> DeployReport:
        """Deploy in engineer-specified phases, gating on health metrics.

        After each phase the ``health_check`` runs over that phase's
        devices; deployment only continues while checks pass, otherwise
        the remaining phases are skipped and engineers are notified.

        By default any device failure halts the rollout immediately.
        With ``max_failure_ratio`` set, each phase instead runs under a
        :class:`CircuitBreaker`: failures are tolerated until the phase's
        failure ratio exceeds the threshold, at which point the breaker
        opens (``deploy.circuit_open``) and everything not yet pushed is
        skipped — the paper's blast-radius containment.
        """
        report = DeployReport(operation="phased_deploy")
        remaining = sorted(configs)
        total = len(remaining)
        roles = {name: self._fleet.get(name).role for name in remaining}
        with obs.span("deploy.phased_deploy", devices=total) as span:
            for index, phase in enumerate(phases, 1):
                batch = phase.select(remaining, total, roles)
                if not batch:
                    continue
                phase_name = phase.name or f"phase-{index}"
                breaker = (
                    CircuitBreaker(max_failure_ratio, total=len(batch))
                    if max_failure_ratio is not None
                    else None
                )
                with obs.timed("deploy.phase.latency", phase=phase_name):
                    outcome = self.push_phase(
                        configs,
                        batch,
                        report,
                        breaker=breaker,
                        halt_on_failure=breaker is None,
                    )
                if outcome.halted:
                    message = (
                        f"phased deployment halted in {phase_name}: "
                        f"{outcome.first_failure()}"
                    )
                    report.notifications.append(message)
                    self._notify(message)
                    report.skipped.extend(r for r in remaining if r not in batch)
                    span.set_attribute("halted_in", phase_name)
                    return self._account(report)
                if outcome.circuit_open:
                    obs.counter("deploy.circuit_open", phase=phase_name).inc()
                    message = (
                        f"phased deployment aborted in {phase_name}: "
                        f"failure ratio {breaker.failure_ratio:.0%} "
                        f"exceeds {max_failure_ratio:.0%}"
                    )
                    report.notifications.append(message)
                    self._notify(message)
                    report.skipped.extend(outcome.not_attempted)
                    report.skipped.extend(r for r in remaining if r not in batch)
                    span.set_attribute("circuit_open_in", phase_name)
                    return self._account(report)
                obs.counter("deploy.phase", phase=phase_name).inc()
                remaining = [name for name in remaining if name not in batch]
                if health_check is not None and not health_check(batch):
                    message = (
                        f"phased deployment halted after {phase_name}: "
                        "health check failed"
                    )
                    report.notifications.append(message)
                    self._notify(message)
                    report.skipped.extend(remaining)
                    span.set_attribute("halted_after", phase_name)
                    return self._account(report)
            report.skipped.extend(remaining)
        return self._account(report)

    # ------------------------------------------------------------------
    # Human confirmation (section 5.3.2)
    # ------------------------------------------------------------------

    def deploy_with_confirmation(
        self,
        configs: Mapping[str, DeviceConfig | str],
        *,
        grace_seconds: float = 600.0,
        verify: Callable[[], bool],
    ) -> DeployReport:
        """Commit temporarily; confirm only if ``verify`` passes in time.

        The new configs go live under a grace-period timer.  ``verify``
        is the engineer's ad-hoc verification; returning True confirms
        every device.  Anything else actively reverts every committed
        device right away — cancelling its grace timer and restoring the
        prior config — rather than leaving the fleet idling unconfirmed
        until the timers expire.
        """
        report = DeployReport(operation="deploy_with_confirmation")
        committed: list[EmulatedDevice] = []
        with obs.span("deploy.deploy_with_confirmation", devices=len(configs)) as span:
            for name, config in sorted(configs.items()):
                device = self._fleet.get(name)
                text = _config_text(config)
                before = device.running_config
                try:
                    device.commit_confirmed(text, grace_seconds)
                except DeploymentError as exc:
                    report.failed[name] = str(exc)
                    continue
                committed.append(device)
                report.changed_lines[name] = count_changed_lines(before, text)
            verified = False
            try:
                verified = bool(verify())
            except Exception as exc:  # a crashing verifier must not confirm
                report.notifications.append(f"verification raised: {exc}")
            span.set_attribute("verified", verified)
            if verified:
                for device in committed:
                    device.confirm()
                    report.succeeded.append(device.name)
            else:
                reverted: list[str] = []
                for device in committed:
                    try:
                        device.abort_confirm()
                    except DeploymentError as exc:
                        # A device that cannot be restored is a page, not a log line.
                        self._notify(
                            f"confirmation rollback FAILED on {device.name}: {exc}"
                        )
                        report.failed.setdefault(device.name, str(exc))
                        continue
                    reverted.append(device.name)
                if reverted:
                    obs.counter(
                        "deploy.rollback", op="deploy_with_confirmation"
                    ).inc(len(reverted))
                message = (
                    f"confirmation not given; reverted {len(reverted)} "
                    "device(s) to their prior configs"
                )
                report.notifications.append(message)
                self._notify(message)
                report.rolled_back.extend(reverted)
        return self._account(report)
