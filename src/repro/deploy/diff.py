"""Config diffing and the changed-line metric of the paper's Figure 16.

Figure 16 counts "total updated config lines (changed/added/removed,
excluding comments) on a device" — :func:`count_changed_lines` implements
exactly that metric; :func:`unified_diff` renders the human-reviewable
diff shown to users in dryrun mode (section 5.3.2).
"""

from __future__ import annotations

import difflib

__all__ = ["count_changed_lines", "is_comment", "unified_diff"]


def is_comment(line: str) -> bool:
    """Whether a config line is a comment (both vendor dialects use #)."""
    return line.lstrip().startswith("#")


def unified_diff(old: str, new: str, name: str = "config") -> str:
    """A unified diff between two config texts."""
    return "".join(
        difflib.unified_diff(
            old.splitlines(keepends=True),
            new.splitlines(keepends=True),
            fromfile=f"{name}.running",
            tofile=f"{name}.new",
        )
    )


def count_changed_lines(old: str, new: str, exclude_comments: bool = True) -> int:
    """Count updated lines between two configs (the Figure 16 metric).

    A changed line (same position, different content) counts once, not
    twice; pure additions and removals count one each.  Comment lines are
    excluded by default, as in the paper.
    """

    def prepare(text: str) -> list[str]:
        lines = text.splitlines()
        if exclude_comments:
            lines = [line for line in lines if not is_comment(line)]
        return lines

    old_lines, new_lines = prepare(old), prepare(new)
    matcher = difflib.SequenceMatcher(a=old_lines, b=new_lines, autojunk=False)
    changed = 0
    for op, old_start, old_end, new_start, new_end in matcher.get_opcodes():
        if op == "equal":
            continue
        if op == "replace":
            changed += max(old_end - old_start, new_end - new_start)
        elif op == "delete":
            changed += old_end - old_start
        else:  # insert
            changed += new_end - new_start
    return changed
