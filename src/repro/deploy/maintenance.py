"""Drain and undrain procedures (paper sections 1 and 6.1).

"Migrating a circuit between routers can involve configuration changes in
IP addressing, BGP sessions, interfaces, as well as *drain and undrain
procedures* to avoid the interruption of production traffic."  The
``drain_state`` attribute is the paper's example of a purely operational
Desired attribute (section 6.1), and initial provisioning requires a
fully drained device (section 5.3.1).

Draining here is intent-first, like everything in Robotron: the Desired
``drain_state`` changes, config generation derives BGP neighbor shutdowns
from it, and deployment pushes the drained config.  Undraining reverses
the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import DeploymentError
from repro.configgen.generator import ConfigGenerator
from repro.deploy.deployer import Deployer
from repro.devices.fleet import DeviceFleet
from repro.fbnet.models import Device, DrainEvent, DrainState
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore

__all__ = ["MaintenanceResult", "drain_device", "undrain_device"]


@dataclass(frozen=True)
class MaintenanceResult:
    """What one drain/undrain accomplished."""

    device: str
    state: DrainState
    sessions_affected: int
    config_lines_changed: int


def _find_device(store: ObjectStore, name: str) -> Device:
    device = store.first(Device, Expr("name", Op.EQUAL, name))
    if device is None:
        raise DeploymentError(f"no device named {name!r} in FBNet")
    return device


def _apply_drain_state(
    store: ObjectStore,
    fleet: DeviceFleet,
    generator: ConfigGenerator,
    deployer: Deployer,
    device_name: str,
    target: DrainState,
    reason: str,
) -> MaintenanceResult:
    device = _find_device(store, device_name)
    with store.transaction():
        store.update(device, drain_state=target)
        store.create(
            DrainEvent,
            device=device,
            state=target,
            reason=reason,
            at=fleet.scheduler.clock.now,
        )
    config = generator.generate_device(device)
    report = deployer.deploy({device_name: config})
    if not report.ok:
        raise DeploymentError(
            f"{device_name}: drain-state deployment failed: {report.failed}"
        )
    shut = sum(
        1 for n in (config.data.get("bgp") or {}).get("neighbors", [])
        if n.get("shutdown")
    )
    return MaintenanceResult(
        device=device_name,
        state=target,
        sessions_affected=shut,
        config_lines_changed=report.changed_lines.get(device_name, 0),
    )


def drain_device(
    store: ObjectStore,
    fleet: DeviceFleet,
    generator: ConfigGenerator,
    deployer: Deployer,
    device_name: str,
    *,
    reason: str = "maintenance",
    verify: bool = True,
) -> MaintenanceResult:
    """Take a device out of production traffic before risky work.

    Sets the Desired ``drain_state`` to DRAINED, regenerates the config
    (every BGP neighbor gains a shutdown), deploys it, and — when
    ``verify`` — confirms from the live fleet that no session on the
    device remains established.
    """
    result = _apply_drain_state(
        store, fleet, generator, deployer, device_name, DrainState.DRAINED, reason
    )
    if verify:
        emulated = fleet.get(device_name)
        still_up = [
            entry["peer_ip"]
            for entry in emulated.bgp_summary()
            if entry["state"] == "established"
        ]
        if still_up:
            raise DeploymentError(
                f"{device_name}: sessions still established after drain: {still_up}"
            )
    return result


def undrain_device(
    store: ObjectStore,
    fleet: DeviceFleet,
    generator: ConfigGenerator,
    deployer: Deployer,
    device_name: str,
    *,
    reason: str = "maintenance complete",
    verify: bool = True,
) -> MaintenanceResult:
    """Return a drained device to production traffic.

    When ``verify``, confirms every configured session re-establishes —
    undrain is only safe when the far ends agree.
    """
    result = _apply_drain_state(
        store, fleet, generator, deployer, device_name, DrainState.UNDRAINED, reason
    )
    if verify:
        emulated = fleet.get(device_name)
        down = [
            entry["peer_ip"]
            for entry in emulated.bgp_summary()
            if entry["state"] != "established"
        ]
        if down:
            raise DeploymentError(
                f"{device_name}: sessions not re-established after undrain: {down}"
            )
    return result
