"""Drain and undrain procedures (paper sections 1 and 6.1).

"Migrating a circuit between routers can involve configuration changes in
IP addressing, BGP sessions, interfaces, as well as *drain and undrain
procedures* to avoid the interruption of production traffic."  The
``drain_state`` attribute is the paper's example of a purely operational
Desired attribute (section 6.1), and initial provisioning requires a
fully drained device (section 5.3.1).

Draining here is intent-first, like everything in Robotron: the Desired
``drain_state`` changes, config generation derives BGP neighbor shutdowns
from it, and deployment pushes the drained config.  Undraining reverses
the sequence.

Because the Desired write comes *first*, a failed push would leave FBNet
claiming a state the device never reached.  The push is therefore wrapped
in a compensating transaction: on deployment failure the device's
``drain_state`` is reverted, a failed :class:`DrainEvent` is recorded,
and the golden config is regenerated from the restored intent — Desired
never diverges from Actual (counted under ``deploy.drain_rollback``).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro import obs
from repro.obs import flight
from repro.common.errors import DeploymentError
from repro.configgen.generator import ConfigGenerator, DeviceConfig
from repro.deploy.deployer import DeployReport, Deployer
from repro.devices.fleet import DeviceFleet
from repro.fbnet.models import Device, DrainEvent, DrainState
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore

__all__ = ["MaintenanceResult", "drain_device", "undrain_device"]

#: Signature of an alternative push path (e.g. a guarded rollout) the
#: caller may route the drain config through instead of a plain deploy.
Pusher = Callable[[Mapping[str, DeviceConfig]], DeployReport]


@dataclass(frozen=True)
class MaintenanceResult:
    """What one drain/undrain accomplished."""

    device: str
    state: DrainState
    sessions_affected: int
    config_lines_changed: int


def _find_device(store: ObjectStore, name: str) -> Device:
    device = store.first(Device, Expr("name", Op.EQUAL, name))
    if device is None:
        raise DeploymentError(f"no device named {name!r} in FBNet")
    return device


def _apply_drain_state(
    store: ObjectStore,
    fleet: DeviceFleet,
    generator: ConfigGenerator,
    deployer: Deployer,
    device_name: str,
    target: DrainState,
    reason: str,
    pusher: Pusher | None = None,
) -> MaintenanceResult:
    device = _find_device(store, device_name)
    previous = device.drain_state
    with store.transaction():
        store.update(device, drain_state=target)
        store.create(
            DrainEvent,
            device=device,
            state=target,
            reason=reason,
            at=fleet.scheduler.clock.now,
        )
    config = generator.generate_device(device)
    push = pusher if pusher is not None else deployer.deploy
    report = push({device_name: config})
    if not report.ok:
        failure = report.failed.get(device_name, str(report.failed))
        # Compensating transaction: the push never landed, so the Desired
        # write above must not survive — revert the drain state, record
        # the failed attempt, and regenerate golden from the restored
        # intent so ConfMon doesn't chase a config the fleet never ran.
        with store.transaction():
            store.update(device, drain_state=previous)
            store.create(
                DrainEvent,
                device=device,
                state=previous,
                reason=f"reverted {target.value}: push failed: {failure}",
                at=fleet.scheduler.clock.now,
                succeeded=False,
            )
        generator.generate_device(device)
        obs.counter("deploy.drain_rollback", device=device_name).inc()
        flight.record(
            "deploy.drain_rollback",
            phase="deployment",
            device=device_name,
            verdict="reverted",
            detail=f"{target.value} push failed: {failure}",
        )
        raise DeploymentError(
            f"{device_name}: drain-state deployment failed: {report.failed}"
        )
    shut = sum(
        1 for n in (config.data.get("bgp") or {}).get("neighbors", [])
        if n.get("shutdown")
    )
    return MaintenanceResult(
        device=device_name,
        state=target,
        sessions_affected=shut,
        config_lines_changed=report.changed_lines.get(device_name, 0),
    )


def _record_verify_failure(
    store: ObjectStore,
    fleet: DeviceFleet,
    device: Device,
    target: DrainState,
    detail: str,
) -> None:
    """A drain/undrain deployed but verification found live state wrong.

    The device is genuinely half-transitioned (config pushed, sessions
    disagree), so the Desired state stands — but the failure must be
    visible: a failed :class:`DrainEvent` for auditors and a flight event
    for anyone tracing the change, not just a raised exception.
    """
    with store.transaction():
        store.create(
            DrainEvent,
            device=device,
            state=target,
            reason=f"verification failed: {detail}",
            at=fleet.scheduler.clock.now,
            succeeded=False,
        )
    obs.counter("deploy.drain_verify_fail", device=device.name).inc()
    flight.record(
        "deploy.drain",
        phase="deployment",
        device=device.name,
        verdict="verify-failed",
        detail=detail,
    )


def drain_device(
    store: ObjectStore,
    fleet: DeviceFleet,
    generator: ConfigGenerator,
    deployer: Deployer,
    device_name: str,
    *,
    reason: str = "maintenance",
    verify: bool = True,
    pusher: Pusher | None = None,
) -> MaintenanceResult:
    """Take a device out of production traffic before risky work.

    Sets the Desired ``drain_state`` to DRAINED, regenerates the config
    (every BGP neighbor gains a shutdown), deploys it — through
    ``pusher`` when given, e.g. a guarded rollout — and, when ``verify``,
    confirms from the live fleet that no session on the device remains
    established.  A verification failure is recorded (failed
    ``DrainEvent`` + flight event) before it raises.
    """
    result = _apply_drain_state(
        store, fleet, generator, deployer, device_name,
        DrainState.DRAINED, reason, pusher,
    )
    if verify:
        emulated = fleet.get(device_name)
        still_up = [
            entry["peer_ip"]
            for entry in emulated.bgp_summary()
            if entry["state"] == "established"
        ]
        if still_up:
            detail = f"sessions still established: {', '.join(still_up)}"
            _record_verify_failure(
                store, fleet, _find_device(store, device_name),
                DrainState.DRAINED, detail,
            )
            raise DeploymentError(
                f"{device_name}: sessions still established after drain: {still_up}"
            )
    return result


def undrain_device(
    store: ObjectStore,
    fleet: DeviceFleet,
    generator: ConfigGenerator,
    deployer: Deployer,
    device_name: str,
    *,
    reason: str = "maintenance complete",
    verify: bool = True,
    pusher: Pusher | None = None,
) -> MaintenanceResult:
    """Return a drained device to production traffic.

    When ``verify``, confirms every configured session re-establishes —
    undrain is only safe when the far ends agree.  Verification failures
    are recorded the same way :func:`drain_device` records them.
    """
    result = _apply_drain_state(
        store, fleet, generator, deployer, device_name,
        DrainState.UNDRAINED, reason, pusher,
    )
    if verify:
        emulated = fleet.get(device_name)
        down = [
            entry["peer_ip"]
            for entry in emulated.bgp_summary()
            if entry["state"] != "established"
        ]
        if down:
            detail = f"sessions not re-established: {', '.join(down)}"
            _record_verify_failure(
                store, fleet, _find_device(store, device_name),
                DrainState.UNDRAINED, detail,
            )
            raise DeploymentError(
                f"{device_name}: sessions not re-established after undrain: {down}"
            )
    return result
