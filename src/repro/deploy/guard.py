"""Health-gated rollout with automatic rollback to last-known-good.

The paper's deployment story (section 5.3) is safe because bad pushes are
contained *and undone*: phased rollout limits the blast radius, and
monitoring (ConfMon, syslog classification, audits) detects deviations.
This module closes the detect → halt → roll back loop.  A
:class:`DeploymentGuard` records each device's last-known-good (LKG)
config version before pushing, lets every phase bake on the simulated
clock, evaluates a :class:`HealthGate` (reachability + ConfMon
discrepancy sweep + syslog error scan + optional caller probe), and on
any failure — gate, push error, or circuit-breaker open — restores every
touched device to its LKG.  A guarded rollout therefore always converges
to "fully new" or "fully previous", never a silent mixed state, and each
run persists a ``DeploymentRecord`` row so deployment history is
queryable through FBNet like everything else.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro import obs
from repro.obs import flight
from repro.common.errors import DeploymentError
from repro.configgen.generator import DeviceConfig
from repro.deploy.deployer import DeployReport, Deployer, _config_text
from repro.deploy.phases import PhaseSpec
from repro.devices.fleet import DeviceFleet
from repro.faults.retry import CircuitBreaker
from repro.fbnet.models.enums import DeploymentOutcome, EventSeverity

__all__ = [
    "DeploymentGuard",
    "GateCheck",
    "GateResult",
    "HealthGate",
    "RolloutResult",
    "intent_hash",
]

#: How long rollback reasons may grow in the persisted record.
_REASON_LIMIT = 500


def intent_hash(configs: Mapping[str, DeviceConfig | str]) -> str:
    """A stable digest of *what* a rollout intends to deploy.

    Hashes the sorted (device name, config text) pairs, so the same
    intent always produces the same hash regardless of dict order.
    """
    digest = hashlib.sha256()
    for name in sorted(configs):
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(_config_text(configs[name]).encode())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class GateCheck:
    """One health-gate check's verdict."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class GateResult:
    """The verdict of one post-phase health-gate evaluation."""

    checks: list[GateCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[GateCheck]:
        return [check for check in self.checks if not check.passed]

    def reason(self) -> str:
        return "; ".join(
            f"{check.name}: {check.detail}" for check in self.failures
        )


class HealthGate:
    """Post-phase health evaluation over a batch of just-pushed devices.

    Four checks, each optional except reachability:

    * every device in the batch still answers (not crashed);
    * ConfMon finds no discrepancy on the batch (running == golden);
    * no CRITICAL/MAJOR syslog alert was classified for a batch device
      since the phase began;
    * an optional caller-supplied probe (e.g. "all BGP established").
    """

    def __init__(
        self,
        fleet: DeviceFleet,
        *,
        confmon=None,
        classifier=None,
        probe: Callable[[list[str]], bool] | None = None,
        alert_severities: tuple[EventSeverity, ...] = (
            EventSeverity.CRITICAL,
            EventSeverity.MAJOR,
        ),
    ):
        self._fleet = fleet
        self._confmon = confmon
        self._classifier = classifier
        self._probe = probe
        self._alert_severities = alert_severities

    def evaluate(self, batch: list[str], *, since: float) -> GateResult:
        result = GateResult()
        unreachable = sorted(
            name for name in batch if not self._fleet.get(name).reachable()
        )
        result.checks.append(
            GateCheck(
                "reachability",
                not unreachable,
                f"unreachable: {', '.join(unreachable)}" if unreachable else "",
            )
        )
        if self._confmon is not None:
            # Only reachable devices can be swept; the reachability check
            # already failed the gate for the rest.
            reachable = [
                name for name in batch if self._fleet.get(name).reachable()
            ]
            discrepancies = self._confmon.check_devices(reachable)
            result.checks.append(
                GateCheck(
                    "confmon",
                    not discrepancies,
                    "config drift on: "
                    + ", ".join(sorted(d.device for d in discrepancies))
                    if discrepancies
                    else "",
                )
            )
        if self._classifier is not None:
            members = set(batch)
            alerts = [
                alert
                for alert in self._classifier.alerts
                if alert.timestamp >= since
                and alert.device in members
                and alert.severity in self._alert_severities
            ]
            result.checks.append(
                GateCheck(
                    "syslog",
                    not alerts,
                    "; ".join(
                        f"{a.severity.value} {a.rule} on {a.device}"
                        for a in alerts[:3]
                    )
                    if alerts
                    else "",
                )
            )
        if self._probe is not None:
            try:
                probe_ok = bool(self._probe(list(batch)))
                detail = "" if probe_ok else "probe returned false"
            except Exception as exc:  # a crashing probe must fail the gate
                probe_ok = False
                detail = f"probe raised: {exc}"
            result.checks.append(GateCheck("probe", probe_ok, detail))
        return result


@dataclass
class RolloutResult:
    """Everything a guarded rollout produced."""

    report: DeployReport
    outcome: DeploymentOutcome
    rollback_reason: str = ""
    #: Devices restored to their last-known-good version.
    restored: list[str] = field(default_factory=list)
    gate_results: dict[str, GateResult] = field(default_factory=dict)
    #: The persisted DeploymentRecord (None when no store is attached).
    record: object | None = None

    @property
    def ok(self) -> bool:
        return self.outcome is DeploymentOutcome.SUCCEEDED


class DeploymentGuard:
    """Runs rollouts that converge to fully-new or fully-previous."""

    def __init__(
        self,
        deployer: Deployer,
        fleet: DeviceFleet,
        *,
        store=None,
        gate: HealthGate | None = None,
        notifier: Callable[[str], None] | None = None,
    ):
        self._deployer = deployer
        self._fleet = fleet
        self._store = store
        #: The health gate evaluated after each phase (swappable per rollout).
        self.gate = gate
        self._notify = notifier or (lambda _msg: None)
        #: Device -> config version currently considered last-known-good.
        self.lkg: dict[str, int] = {}

    # ------------------------------------------------------------------
    # LKG bookkeeping
    # ------------------------------------------------------------------

    def _record_lkg(self, names: list[str]) -> dict[str, int]:
        lkg: dict[str, int] = {}
        for name in names:
            device = self._fleet.get(name)
            version = device.config_version
            if version == 0:
                raise DeploymentError(
                    f"{name} has no committed config to fall back to; "
                    "provision it before a guarded rollout"
                )
            device.pin_version(version)
            lkg[name] = version
            self.lkg[name] = version
        return lkg

    def _promote_lkg(self, names: list[str], previous: dict[str, int]) -> None:
        """After a clean rollout, the new versions become the LKG."""
        for name in names:
            device = self._fleet.get(name)
            version = device.config_version
            device.pin_version(version)
            if previous.get(name, version) != version:
                device.unpin_version(previous[name])
            self.lkg[name] = version

    def _restore_lkg(
        self, touched: list[str], lkg: dict[str, int], report: DeployReport
    ) -> tuple[list[str], list[str]]:
        """Roll every touched device back to its pinned LKG version."""
        restored: list[str] = []
        stuck: list[str] = []
        for name in reversed(touched):
            device = self._fleet.get(name)
            target = lkg[name]
            try:
                if device.config_version != target:
                    device.revert_to(target)
                    obs.counter("deploy.lkg_restore", device=name).inc()
                    obs.counter("deploy.rollback", op="guarded_rollout").inc()
                    report.rolled_back.append(name)
                    flight.record(
                        "deploy.lkg_restore", phase="deployment", device=name,
                        verdict="restored", detail=f"version {target}",
                    )
                restored.append(name)
            except DeploymentError as exc:
                # A device that cannot be restored is a page, not a log line.
                stuck.append(name)
                self._notify(
                    f"LKG rollback FAILED on {name}: {exc}; "
                    "manual intervention needed"
                )
                report.failed.setdefault(name, str(exc))
                flight.record(
                    "deploy.lkg_restore", phase="deployment", device=name,
                    verdict="stuck", detail=str(exc),
                )
        restored.reverse()
        return restored, stuck

    # ------------------------------------------------------------------
    # The guarded rollout
    # ------------------------------------------------------------------

    def rollout(
        self,
        configs: Mapping[str, DeviceConfig | str],
        phases: list[PhaseSpec],
        *,
        max_failure_ratio: float | None = None,
        bake_seconds: float = 60.0,
        skip_unchanged: bool = False,
    ) -> RolloutResult:
        """Deploy phase by phase; bake; gate; roll back on any failure.

        Per phase: push the batch (optionally under a circuit breaker),
        let it bake for ``bake_seconds`` on the simulated clock (each
        phase may override via ``PhaseSpec.bake_seconds``), then evaluate
        the health gate over the batch.  A push failure, open breaker, or
        failed gate aborts the rollout and restores *every* device
        touched so far to its last-known-good version.

        With ``skip_unchanged``, devices already running their candidate
        config (SHA-256 match) are excluded up front — no LKG pin, no
        push, no gate membership — and land in ``report.skipped`` under
        the ``deploy.skip_unchanged`` counter.
        """
        report = DeployReport(operation="guarded_rollout")
        scheduler = self._fleet.scheduler
        started_at = scheduler.clock.now
        # The intent hash covers the full intent, including devices the
        # content-hash skip then excludes — re-running the same rollout
        # must produce the same hash regardless of fleet state.
        the_hash = intent_hash(configs)
        if skip_unchanged:
            unchanged = [
                name
                for name in sorted(configs)
                if self._deployer.unchanged(name, configs[name])
            ]
            if unchanged:
                report.skipped.extend(unchanged)
                obs.counter(
                    "deploy.skip_unchanged", op="guarded_rollout"
                ).inc(len(unchanged))
                configs = {
                    name: config
                    for name, config in configs.items()
                    if name not in set(unchanged)
                }
        names = sorted(configs)
        result = RolloutResult(
            report=report, outcome=DeploymentOutcome.SUCCEEDED
        )
        lkg = self._record_lkg(names)
        remaining = list(names)
        total = len(names)
        roles = {name: self._fleet.get(name).role for name in names}
        touched: list[str] = []
        phase_log: list[dict] = []
        failure = ""
        flight.record(
            "deploy.rollout",
            phase="deployment",
            verdict="started",
            detail=f"{total} device(s), intent {the_hash[:12]}",
        )
        with obs.span(
            "deploy.guarded_rollout", devices=total, intent=the_hash[:12]
        ) as span:
            for index, phase in enumerate(phases, 1):
                batch = phase.select(remaining, total, roles)
                if not batch:
                    continue
                phase_name = phase.name or f"phase-{index}"
                phase_entry: dict = {"phase": phase_name, "devices": list(batch)}
                phase_log.append(phase_entry)
                gate_start = scheduler.clock.now
                breaker = (
                    CircuitBreaker(max_failure_ratio, total=len(batch))
                    if max_failure_ratio is not None
                    else None
                )
                with obs.timed("deploy.phase.latency", phase=phase_name):
                    outcome = self._deployer.push_phase(
                        configs,
                        batch,
                        report,
                        breaker=breaker,
                        halt_on_failure=True,
                    )
                touched.extend(outcome.succeeded)
                remaining = [n for n in remaining if n not in batch]
                if outcome.circuit_open:
                    obs.counter("deploy.circuit_open", phase=phase_name).inc()
                    failure = (
                        f"circuit breaker opened in {phase_name}: failure "
                        f"ratio {breaker.failure_ratio:.0%} exceeds "
                        f"{max_failure_ratio:.0%}"
                    )
                    phase_entry["gate"] = "not-run"
                    flight.record(
                        "deploy.gate", phase="deployment",
                        verdict="not-run", detail=phase_name,
                    )
                    span.set_attribute("circuit_open_in", phase_name)
                    break
                if outcome.failed:
                    failure = (
                        f"push failed in {phase_name}: "
                        f"{outcome.first_failure()}"
                    )
                    phase_entry["gate"] = "not-run"
                    flight.record(
                        "deploy.gate", phase="deployment",
                        verdict="not-run", detail=phase_name,
                    )
                    span.set_attribute("failed_in", phase_name)
                    break
                bake = (
                    phase.bake_seconds
                    if phase.bake_seconds is not None
                    else bake_seconds
                )
                if bake > 0:
                    scheduler.run_until(scheduler.clock.now + bake)
                if self.gate is not None:
                    gate = self.gate.evaluate(batch, since=gate_start)
                    result.gate_results[phase_name] = gate
                    if not gate.passed:
                        obs.counter("deploy.gate_fail", phase=phase_name).inc()
                        failure = (
                            f"health gate failed after {phase_name}: "
                            f"{gate.reason()}"
                        )
                        phase_entry["gate"] = "failed"
                        flight.record(
                            "deploy.gate", phase="deployment",
                            verdict="failed", detail=f"{phase_name}: {gate.reason()}",
                        )
                        span.set_attribute("gate_failed_after", phase_name)
                        break
                phase_entry["gate"] = "passed"
                flight.record(
                    "deploy.gate", phase="deployment",
                    verdict="passed", detail=phase_name,
                )
                obs.counter("deploy.phase", phase=phase_name).inc()
            else:
                report.skipped.extend(remaining)

            if failure:
                report.skipped.extend(remaining)
                self._notify(
                    f"guarded rollout aborted: {failure}; rolling back "
                    f"{len(touched)} device(s) to last-known-good"
                )
                restored, stuck = self._restore_lkg(touched, lkg, report)
                result.restored = restored
                result.rollback_reason = failure
                result.outcome = (
                    DeploymentOutcome.ROLLBACK_FAILED
                    if stuck
                    else DeploymentOutcome.ROLLED_BACK
                )
                # Devices rolled back did not stay on the new config.
                report.succeeded = [
                    name for name in report.succeeded if name not in set(restored)
                ]
                span.set_attribute("outcome", result.outcome.value)
            else:
                self._promote_lkg(report.succeeded, lkg)
                span.set_attribute("outcome", result.outcome.value)

        flight.record(
            "deploy.rollout",
            phase="deployment",
            verdict=result.outcome.value,
            detail=result.rollback_reason,
        )
        Deployer._account(report)
        result.record = self._persist(
            configs,
            the_hash,
            result,
            phase_log,
            lkg,
            started_at=started_at,
            finished_at=scheduler.clock.now,
        )
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _device_state(
        self, name: str, configs: Mapping[str, DeviceConfig | str], lkg_version: int
    ) -> str:
        """Classify where a device landed: 'new', 'lkg', or 'mixed'."""
        device = self._fleet.get(name)
        running = device.running_config
        if running == _config_text(configs[name]):
            return "new"
        try:
            if running == device.version_entry(lkg_version).text:
                return "lkg"
        except DeploymentError:
            pass
        return "mixed"

    def _persist(
        self,
        configs: Mapping[str, DeviceConfig | str],
        the_hash: str,
        result: RolloutResult,
        phase_log: list[dict],
        lkg: dict[str, int],
        *,
        started_at: float,
        finished_at: float,
    ):
        if self._store is None:
            return None
        from repro.fbnet.models import DeploymentRecord

        device_versions = {
            name: {
                "lkg": lkg[name],
                "final": self._fleet.get(name).config_version,
                "state": self._device_state(name, configs, lkg[name]),
            }
            for name in sorted(configs)
        }
        return self._store.create(
            DeploymentRecord,
            intent_hash=the_hash,
            operation="guarded_rollout",
            outcome=result.outcome,
            rollback_reason=result.rollback_reason[:_REASON_LIMIT],
            phases=phase_log,
            device_versions=device_versions,
            started_at=started_at,
            finished_at=finished_at,
            devices_total=len(configs),
            devices_rolled_back=len(result.report.rolled_back),
        )
