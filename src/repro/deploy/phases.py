"""Phase specifications for phased deployments (paper section 5.3.2).

"In phased deployments, engineers specify a permutation of
percentage/region/role of devices to be updated in each phase."  A
:class:`PhaseSpec` captures one phase's selector; the deployer applies
phases in order, each time selecting from the devices not yet updated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import DeploymentError

__all__ = ["PhaseSpec"]


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a phased deployment.

    Exactly one selector must be set:

    * ``percentage`` — this fraction (0-100] of the *total* target set,
      rounded up, drawn from devices not yet updated;
    * ``region`` — devices whose name starts with this region/site prefix;
    * ``role`` — devices with this role (e.g. ``"psw"``).

    ``bake_seconds`` optionally overrides the guarded rollout's default
    bake time (how long the phase soaks on the simulated clock before its
    health gate is evaluated).
    """

    name: str = ""
    percentage: float | None = None
    region: str | None = None
    role: str | None = None
    bake_seconds: float | None = None

    def __post_init__(self) -> None:
        selectors = [s is not None for s in (self.percentage, self.region, self.role)]
        if sum(selectors) != 1:
            raise DeploymentError(
                f"phase {self.name or '?'}: exactly one of percentage/region/role"
            )
        if self.percentage is not None and not 0 < self.percentage <= 100:
            raise DeploymentError(
                f"phase {self.name or '?'}: percentage must be in (0, 100]"
            )
        if self.bake_seconds is not None and self.bake_seconds < 0:
            raise DeploymentError(
                f"phase {self.name or '?'}: bake_seconds must be >= 0"
            )

    def select(
        self, remaining: list[str], total: int, roles: dict[str, str]
    ) -> list[str]:
        """Pick this phase's devices from the not-yet-updated set."""
        if self.percentage is not None:
            count = min(len(remaining), math.ceil(total * self.percentage / 100.0))
            return remaining[:count]
        if self.region is not None:
            return [name for name in remaining if name.startswith(self.region)]
        return [name for name in remaining if roles.get(name) == self.role]
