"""Deployment: pushing generated configs to devices, safely (paper 5.3).

Two scenarios from the paper:

* **initial provisioning** — clean-state devices: erase, copy, validate
  (section 5.3.1);
* **incremental updates** — live devices, partial config changes, with
  four safety mechanisms (section 5.3.2): dryrun mode, atomic mode,
  phased mode, and human confirmation with a grace-period rollback.

On top of the four modes, :mod:`repro.deploy.guard` provides the
health-gated rollout: last-known-good recording, per-phase bake + health
gate, and automatic rollback so a rollout never ends in a silent mixed
state.
"""

from repro.deploy.deployer import DeployReport, Deployer, PhaseOutcome
from repro.deploy.diff import count_changed_lines, unified_diff
from repro.deploy.guard import (
    DeploymentGuard,
    GateCheck,
    GateResult,
    HealthGate,
    RolloutResult,
    intent_hash,
)
from repro.deploy.maintenance import drain_device, undrain_device
from repro.deploy.phases import PhaseSpec

__all__ = [
    "DeployReport",
    "Deployer",
    "DeploymentGuard",
    "GateCheck",
    "GateResult",
    "HealthGate",
    "PhaseOutcome",
    "PhaseSpec",
    "RolloutResult",
    "count_changed_lines",
    "drain_device",
    "intent_hash",
    "undrain_device",
    "unified_diff",
]
