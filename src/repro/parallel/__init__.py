"""repro.parallel — deterministic worker-pool execution.

See :mod:`repro.parallel.pool` for the design rules (stable task keys,
task-order merge, per-task fault-plan partitioning, coordinator-owned
clock).  The hot paths — config generation, phased deployment, ConfMon
sweeps — all fan out through :func:`run_tasks`.
"""

from repro.parallel.pool import (
    SLOW_TASK_SECONDS,
    WORKERS_ENV,
    TaskClock,
    TaskContext,
    TaskResult,
    configured_workers,
    current_task,
    raise_first_error,
    run_tasks,
    set_workers,
    task_clock,
    workers,
)

__all__ = [
    "SLOW_TASK_SECONDS",
    "TaskClock",
    "TaskContext",
    "TaskResult",
    "WORKERS_ENV",
    "configured_workers",
    "current_task",
    "raise_first_error",
    "run_tasks",
    "set_workers",
    "task_clock",
    "workers",
]
