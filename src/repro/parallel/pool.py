"""A deterministic worker pool for the management plane's hot paths.

The paper's Robotron runs config generation, deployment, and monitoring
collection over tens of thousands of devices; a single-threaded loop
leaves the hardware idle exactly where the scale lives.  This module is
the substrate the hot paths fan out on — with one hard rule: **the result
of a run must not depend on the worker count**.

Three mechanisms make that hold:

* every task carries a stable string *key*, and :func:`run_tasks` merges
  results (and raises errors) in task order, never completion order;
* the active :class:`~repro.faults.plan.FaultPlan` is partitioned per
  task: each task draws from an RNG derived from ``(plan seed, task
  key)`` and keeps private spec counters, merged back in task order by
  the coordinator — so chaos runs are bit-for-bit reproducible at any
  parallelism level;
* tasks never touch the shared simulated clock.  Each task gets a
  :class:`TaskClock` view; the coordinator advances the real clock once
  per batch by the *maximum* per-task offset (concurrent waits overlap
  in simulated time, and a float max — unlike a sum — does not depend
  on completion order).

Worker count comes from ``ROBOTRON_WORKERS`` (default 1) or the
:func:`workers` override.  Instrumentation: ``parallel.tasks`` counts
merged tasks, ``parallel.queue_depth`` histograms the backlog at each
task start, ``parallel.stragglers`` counts tasks that ran far past the
batch median, and ``parallel.worker.utilization`` gauges per-worker busy
share (the latter three are wall-time-dependent and excluded from
:func:`repro.obs.deterministic_dump`).
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from statistics import median
from typing import Any

from repro import faults, obs
from repro.obs import flight

__all__ = [
    "SLOW_TASK_SECONDS",
    "TaskClock",
    "TaskContext",
    "TaskResult",
    "WORKERS_ENV",
    "configured_workers",
    "current_task",
    "raise_first_error",
    "run_tasks",
    "set_workers",
    "task_clock",
    "workers",
]

#: Environment variable selecting the default worker count.
WORKERS_ENV = "ROBOTRON_WORKERS"

#: Wall seconds a ``parallel.slow_task`` fault injection stalls a task —
#: long enough to dominate a batch, short enough for tests.
SLOW_TASK_SECONDS = 0.05

#: A merged task is a straggler when it ran this many times longer than
#: the batch median (and longer than an absolute floor, so microsecond
#: batches don't flag noise).
STRAGGLER_FACTOR = 8.0
_STRAGGLER_FLOOR = 0.02

_workers_override: int | None = None


def configured_workers() -> int:
    """The pool size: the :func:`set_workers` override, else the env var."""
    if _workers_override is not None:
        return _workers_override
    raw = os.environ.get(WORKERS_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


def set_workers(count: int | None) -> None:
    """Override the worker count process-wide (``None`` clears it)."""
    global _workers_override
    if count is not None and count < 1:
        raise ValueError(f"worker count must be >= 1, not {count}")
    _workers_override = count


@contextmanager
def workers(count: int) -> Iterator[None]:
    """Run a block at a fixed worker count (tests, benchmarks)."""
    previous = _workers_override
    set_workers(count)
    try:
        yield
    finally:
        set_workers(previous)


class TaskClock:
    """A task-local view of the simulated clock.

    Reads start from the shared clock's value at task launch; ``advance``
    accumulates into a private offset.  The coordinator folds the maximum
    offset of a batch back into the real clock, so retry backoffs taken
    concurrently overlap in simulated time instead of serializing — and
    the final clock value is independent of completion order.
    """

    __slots__ = ("_base", "offset")

    def __init__(self, base_now: float):
        self._base = base_now
        self.offset = 0.0

    @property
    def now(self) -> float:
        return self._base + self.offset

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self.offset += seconds
        return self.now


@dataclass
class TaskContext:
    """What a task knows about itself while running in the pool."""

    key: str
    section: str
    clock: TaskClock | None = None


@dataclass
class TaskResult:
    """One task's outcome, in task (not completion) order."""

    key: str
    value: Any = None
    error: BaseException | None = None
    #: True when the task was skipped (or its effects discarded) because
    #: an earlier-keyed task errored under ``cancel_on_error``.
    cancelled: bool = False
    wall_seconds: float = 0.0
    #: Simulated seconds the task's :class:`TaskClock` accumulated.
    clock_advance: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled


_current = threading.local()


def current_task() -> TaskContext | None:
    """The pool task running on this thread, if any."""
    return getattr(_current, "task", None)


def task_clock(default: Any) -> Any:
    """The running task's :class:`TaskClock`, else ``default``.

    Call sites that sleep on the simulated clock (retry backoff, poll
    timestamps) route through this so the same code is correct both on
    the coordinator and inside a pool task.
    """
    context = current_task()
    if context is not None and context.clock is not None:
        return context.clock
    return default


def raise_first_error(results: list[TaskResult]) -> list[TaskResult]:
    """Raise the smallest-keyed error in ``results``, if any."""
    for result in results:
        if result.error is not None:
            raise result.error
    return results


def run_tasks(
    tasks: Iterable[tuple[str, Callable[[], Any]]],
    *,
    section: str,
    workers: int | None = None,
    clock: Any | None = None,
    cancel_on_error: bool = False,
) -> list[TaskResult]:
    """Run keyed tasks across the pool; results come back in task order.

    ``section`` labels the instrumentation and the ``parallel.slow_task``
    fault point.  With ``clock``, each task runs against a private
    :class:`TaskClock` and the real clock is advanced once, by the batch
    maximum.  With ``cancel_on_error`` (for *pure* tasks like config
    renders), tasks after the first-keyed error are cancelled — never
    merged into fault-plan or clock state — so the visible outcome is
    identical at any worker count; tasks that had already started still
    run to completion (the pool drains cleanly) but their effects are
    discarded.

    Tasks started before the cancellation signal may still bump their own
    subsystem counters; everything merged here (results, fault record,
    clock) stays deterministic.
    """
    task_list = [(str(key), fn) for key, fn in tasks]
    keys = [key for key, _ in task_list]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate task keys in section {section!r}")
    count = configured_workers() if workers is None else int(workers)
    if count < 1:
        raise ValueError(f"worker count must be >= 1, not {count}")
    count = min(count, len(task_list)) if task_list else 1

    plan = faults.active_plan()
    results = [TaskResult(key=key) for key in keys]
    scopes: list[Any] = [None] * len(task_list)
    # Change provenance crosses the pool the same way fault scopes do:
    # the coordinator's ChangeContext (a contextvar, invisible to pool
    # threads) is captured here and re-activated inside each task, and
    # each task's flight events land in a private buffer merged back in
    # task-key order below — so the flight log is identical at any
    # worker count.
    inherited_change = flight.current_change()
    event_buffers: list[list[Any]] = [[] for _ in task_list]
    stop = threading.Event()
    state_lock = threading.Lock()
    started_count = 0
    worker_busy: dict[int, float] = {}
    pool_started = time.perf_counter()

    def execute(index: int) -> None:
        nonlocal started_count
        result = results[index]
        if stop.is_set():
            result.cancelled = True
            return
        with state_lock:
            started_count += 1
            depth = len(task_list) - started_count
            worker_busy.setdefault(threading.get_ident(), 0.0)
        obs.histogram(
            "parallel.queue_depth", obs.COUNT_BUCKETS, section=section
        ).observe(depth)
        key, fn = task_list[index]
        local_clock = TaskClock(clock.now) if clock is not None else None
        context = TaskContext(key=key, section=section, clock=local_clock)
        previous = getattr(_current, "task", None)
        _current.task = context
        change_token = flight.activate(inherited_change)
        started = time.perf_counter()
        try:
            with flight.task_buffer() as buffer:
                event_buffers[index] = buffer
                if plan is not None:
                    with plan.task_scope(key, clock=local_clock) as scope:
                        scopes[index] = scope
                        _maybe_straggle(section, key)
                        result.value = fn()
                else:
                    _maybe_straggle(section, key)
                    result.value = fn()
        except BaseException as exc:  # noqa: BLE001 - merged, re-raised in key order
            result.error = exc
            if cancel_on_error:
                stop.set()
        finally:
            flight.deactivate(change_token)
            _current.task = previous
            result.wall_seconds = time.perf_counter() - started
            if local_clock is not None:
                result.clock_advance = local_clock.offset
            with state_lock:
                worker_busy[threading.get_ident()] = (
                    worker_busy.get(threading.get_ident(), 0.0)
                    + result.wall_seconds
                )

    if count == 1:
        for index in range(len(task_list)):
            execute(index)
    else:
        with ThreadPoolExecutor(
            max_workers=count, thread_name_prefix=f"repro-{section}"
        ) as pool:
            futures = [pool.submit(execute, i) for i in range(len(task_list))]
            for future in futures:
                future.result()

    # Merge in task order.  Under cancel_on_error, everything after the
    # first-keyed error is cancelled and its effects discarded; tasks
    # before it are guaranteed complete (the executor starts tasks in
    # submission order, so every smaller index started — and ran to
    # completion — before the error could be observed).
    merge_until = len(task_list)
    if cancel_on_error:
        for index, result in enumerate(results):
            if result.error is not None:
                merge_until = index + 1
                break
        for result in results[merge_until:]:
            result.cancelled = True
            result.value = None
            result.error = None

    merged = [r for r in results[:merge_until] if not r.cancelled]
    if plan is not None:
        for index in range(merge_until):
            if scopes[index] is not None and not results[index].cancelled:
                plan.merge_scope(scopes[index])
    for index in range(merge_until):
        if event_buffers[index] and not results[index].cancelled:
            flight.merge_events(event_buffers[index])
    if clock is not None and merged:
        advance = max(result.clock_advance for result in merged)
        if advance > 0.0:
            clock.advance(advance)

    if merged:
        obs.counter("parallel.tasks", section=section).inc(len(merged))
        batch_median = median(result.wall_seconds for result in merged)
        threshold = max(_STRAGGLER_FLOOR, STRAGGLER_FACTOR * batch_median)
        stragglers = sum(1 for r in merged if r.wall_seconds > threshold)
        if stragglers:
            obs.counter("parallel.stragglers", section=section).inc(stragglers)
    elapsed = time.perf_counter() - pool_started
    if elapsed > 0.0:
        for slot, ident in enumerate(sorted(worker_busy)):
            obs.gauge(
                "parallel.worker.utilization", section=section, worker=slot
            ).set(min(1.0, worker_busy[ident] / elapsed))
    return results


def _maybe_straggle(section: str, key: str) -> None:
    """The ``parallel.slow_task`` fault point: stall this task (wall time).

    The decision draws from the task's fault scope, so which keys stall
    is deterministic; the stall itself is a real ``time.sleep``, proving
    in tests that one hung task cannot wedge the rest of the pool.
    """
    if faults.should_inject("parallel.slow_task", section=section, key=key):
        time.sleep(SLOW_TASK_SECONDS)
