"""Desired-vs-Derived anomaly detection (paper section 4.1.2).

"One obvious use case of having the Desired and Derived data is anomaly
detection.  Differences between data in both models could imply expected
or unexpected deviation from planned network design" — unapplied config
changes, hardware failures, fiber cuts, or misconfigurations.  These
audits join the two model groups (by component names, since Derived data
is collected without knowledge of Desired ids) and report mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fbnet.models import (
    Circuit,
    CircuitStatus,
    DerivedBgpSession,
    DerivedCircuit,
    DerivedInterface,
    BgpV4Session,
    BgpV6Session,
    OperStatus,
)
from repro.fbnet.store import ObjectStore

__all__ = ["AuditFinding", "AuditReport", "run_audit"]


@dataclass(frozen=True)
class AuditFinding:
    """One detected anomaly."""

    kind: str
    subject: str
    detail: str


@dataclass
class AuditReport:
    """All findings from one audit pass."""

    findings: list[AuditFinding] = field(default_factory=list)

    def add(self, kind: str, subject: str, detail: str) -> None:
        self.findings.append(AuditFinding(kind, subject, detail))

    def by_kind(self, kind: str) -> list[AuditFinding]:
        return [finding for finding in self.findings if finding.kind == kind]

    @property
    def clean(self) -> bool:
        return not self.findings


def _desired_circuit_endpoints(store: ObjectStore) -> dict[frozenset, Circuit]:
    endpoints = {}
    for circuit in store.all(Circuit):
        if circuit.status is CircuitStatus.DECOMMISSIONED:
            continue
        a_pif = circuit.related("a_interface")
        z_pif = circuit.related("z_interface")
        if a_pif is None or z_pif is None:
            continue
        a_dev = a_pif.related("linecard").related("device")
        z_dev = z_pif.related("linecard").related("device")
        key = frozenset(((a_dev.name, a_pif.name), (z_dev.name, z_pif.name)))
        endpoints[key] = circuit
    return endpoints


def _derived_circuit_endpoints(store: ObjectStore) -> dict[frozenset, DerivedCircuit]:
    endpoints = {}
    for derived in store.all(DerivedCircuit):
        key = frozenset(
            (
                (derived.a_device_name, derived.a_interface_name),
                (derived.z_device_name, derived.z_interface_name),
            )
        )
        endpoints[key] = derived
    return endpoints


def audit_circuits(store: ObjectStore, report: AuditReport) -> None:
    """Desired circuits missing from LLDP, and LLDP links nobody planned.

    A missing circuit usually means a fiber cut, a miscable, or a config
    not yet deployed; an unexpected one means a miscable or a manual
    change (section 4.1.2's examples).
    """
    desired = _desired_circuit_endpoints(store)
    derived = _derived_circuit_endpoints(store)
    for key, circuit in desired.items():
        if key not in derived:
            ends = " <-> ".join(f"{d}:{i}" for d, i in sorted(key))
            report.add(
                "missing-circuit",
                circuit.name,
                f"planned circuit not observed via LLDP ({ends})",
            )
    for key in derived:
        if key not in desired:
            ends = " <-> ".join(f"{d}:{i}" for d, i in sorted(key))
            report.add(
                "unexpected-circuit",
                ends,
                "LLDP shows a link that exists in no Desired circuit",
            )


def audit_interfaces(store: ObjectStore, report: AuditReport) -> None:
    """Interfaces planned up but observed down."""
    for derived in store.all(DerivedInterface):
        if (
            derived.admin_status.value == "enabled"
            and derived.oper_status is OperStatus.DOWN
        ):
            report.add(
                "interface-down",
                f"{derived.device_name}:{derived.name}",
                "admin-enabled interface is operationally down",
            )


def audit_bgp_sessions(store: ObjectStore, report: AuditReport) -> None:
    """Desired BGP sessions not established on the network."""
    observed: dict[tuple[str, str], str] = {}
    for derived in store.all(DerivedBgpSession):
        observed[(derived.device_name, derived.peer_ip)] = derived.state
    for model in (BgpV4Session, BgpV6Session):
        for session in store.all(model):
            device = session.related("device")
            peer_device = session.related("peer_device")
            # Both endpoints of the session must be observed established —
            # one side's stale data must not mask the other side's failure.
            endpoints = [(device.name, session.peer_ip)]
            if peer_device is not None:
                endpoints.append((peer_device.name, session.local_ip))
            for endpoint_device, endpoint_peer_ip in endpoints:
                state = observed.get((endpoint_device, endpoint_peer_ip))
                if state is None:
                    report.add(
                        "bgp-not-observed",
                        f"{endpoint_device}->{endpoint_peer_ip}",
                        "desired session absent from collected BGP state",
                    )
                elif state != "established":
                    report.add(
                        "bgp-not-established",
                        f"{endpoint_device}->{endpoint_peer_ip}",
                        f"desired session observed in state {state!r}",
                    )


def run_audit(store: ObjectStore) -> AuditReport:
    """Run every Desired-vs-Derived audit; returns the combined report."""
    report = AuditReport()
    audit_circuits(store, report)
    audit_interfaces(store, report)
    audit_bgp_sessions(store, report)
    return report
