"""The passive monitoring pipeline: syslog over anycast (paper 5.4.1).

Every device is configured to send syslog to a BGP anycast address;
multiple collectors receive from that address and hand messages to the
classifiers.  Here the fleet's syslog bus plays the anycast address:
a :class:`SyslogCollector` subscribes to it and feeds a
:class:`~repro.monitoring.classifier.Classifier`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.obs import flight

__all__ = ["SyslogCollector", "SyslogMessage"]


@dataclass(frozen=True)
class SyslogMessage:
    """A normalized syslog message (RFC 5424 in spirit)."""

    device: str
    tag: str
    message: str
    timestamp: float

    @staticmethod
    def from_event(event: dict[str, Any]) -> SyslogMessage:
        return SyslogMessage(
            device=str(event.get("device", "")),
            tag=str(event.get("tag", "")),
            message=str(event.get("message", "")),
            timestamp=float(event.get("timestamp", 0.0)),
        )

    def render(self) -> str:
        """The on-the-wire line format classifiers match against."""
        return f"<{self.tag}> {self.device}: {self.message}"


class SyslogCollector:
    """One collector instance listening on the anycast address.

    Fan-in point of the passive pipeline: normalizes raw device events,
    keeps arrival counters (Table 2's 'Syslog (passive)' row), and
    forwards to any number of sinks (classifiers, config monitor, tests).
    """

    def __init__(self, name: str = "syslog-collector"):
        self.name = name
        self.received = 0
        self._sinks: list[Callable[[SyslogMessage], None]] = []

    def subscribe(self, sink: Callable[[SyslogMessage], None]) -> None:
        self._sinks.append(sink)

    def __call__(self, event: dict[str, Any]) -> None:
        """The fleet bus delivers raw events here."""
        message = SyslogMessage.from_event(event)
        self.received += 1
        # Passive findings join the lineage only while a change is in
        # flight (a rollout baking, a cycle sweeping) — the device told
        # us something while we were changing it, so record it under the
        # change.  Steady-state chatter stays out of the ring.
        if flight.current_change() is not None:
            flight.record(
                "syslog.message",
                phase="monitoring",
                device=message.device,
                verdict=message.tag,
                detail=message.message,
            )
        for sink in self._sinks:
            sink(message)
