"""Config monitoring: golden-config conformance (paper section 5.4.3).

The passive and active pipelines combine here: a running-config change
emits a syslog message; the collector hands it to this monitor, which
triggers an ad-hoc active job to fetch the running config, diffs it
against the Robotron-generated "golden" config, notifies engineers of any
discrepancy, and backs the config up in a revision store.  The monitor
can also restore a drifted device to its golden config — the fallback the
paper recommends over blocking manual changes outright (section 8,
"Automation Fallbacks").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial

from repro import obs, parallel
from repro.obs import flight
from repro.configgen.generator import ConfigGenerator, DeviceConfig
from repro.deploy.diff import unified_diff
from repro.devices.fleet import DeviceFleet
from repro.monitoring.backends import ConfigBackupBackend
from repro.monitoring.jobs import JobManager
from repro.monitoring.syslog import SyslogMessage

__all__ = ["ConfigDiscrepancy", "ConfigMonitor"]


@dataclass(frozen=True)
class ConfigDiscrepancy:
    """A detected deviation from the golden config."""

    device: str
    diff: str
    detected_at: float


class ConfigMonitor:
    """Watches for config drift against the golden configs."""

    def __init__(
        self,
        fleet: DeviceFleet,
        generator: ConfigGenerator,
        job_manager: JobManager,
        *,
        backup: ConfigBackupBackend | None = None,
        notifier: Callable[[ConfigDiscrepancy], None] | None = None,
    ):
        self._fleet = fleet
        self._generator = generator
        self._jobs = job_manager
        self.backup = backup or ConfigBackupBackend()
        self._jobs.register_backend(self.backup)
        #: Discrepancy sinks, fanned out in subscription order.  The
        #: remediation engine subscribes here as its drift detector.
        self._notifiers: list[Callable[[ConfigDiscrepancy], None]] = []
        if notifier is not None:
            self._notifiers.append(notifier)
        #: Every discrepancy detected, newest last.
        self.discrepancies: list[ConfigDiscrepancy] = []
        #: Device -> sim time its golden config was last regenerated.
        #: Fed by ``ConfigGenerator.subscribe``; drained by priority sweeps.
        self._recent: dict[str, float] = {}
        #: Device -> sim time it was last checked (any trigger).
        self._last_checked: dict[str, float] = {}

    def subscribe_notifier(
        self, notifier: Callable[[ConfigDiscrepancy], None]
    ) -> None:
        """Add a discrepancy sink alongside the constructor's notifier."""
        self._notifiers.append(notifier)

    def _notify(self, discrepancy: ConfigDiscrepancy) -> None:
        for notifier in self._notifiers:
            notifier(discrepancy)

    # ------------------------------------------------------------------
    # Passive trigger
    # ------------------------------------------------------------------

    def __call__(self, message: SyslogMessage) -> None:
        """Subscribe this to the syslog collector; reacts to config changes."""
        if message.tag != "CONFIG":
            return
        self.check_device(message.device)

    # ------------------------------------------------------------------
    # Active collection and comparison
    # ------------------------------------------------------------------

    def check_device(self, device_name: str) -> ConfigDiscrepancy | None:
        """Collect the running config and compare to golden.

        Triggers an ad-hoc CLI job (the paper's flow), records a backup
        revision, and raises a discrepancy alert if the config deviates
        from the Robotron-generated one.
        """
        clock = parallel.task_clock(self._jobs.scheduler.clock)
        self._last_checked[device_name] = clock.now
        self._recent.pop(device_name, None)
        discrepancy = self._collect_and_compare(device_name)
        self._flight_verdict(device_name, discrepancy)
        if discrepancy is None:
            return None
        self.discrepancies.append(discrepancy)
        self._notify(discrepancy)
        return discrepancy

    @staticmethod
    def _flight_verdict(
        device_name: str, discrepancy: ConfigDiscrepancy | None
    ) -> None:
        """The monitoring verdict is the last hop of a change's lineage —
        only recorded while a change is in flight (steady-state periodic
        sweeps over a clean fleet would otherwise drown the ring)."""
        if flight.current_change() is None:
            return
        flight.record(
            "confmon.check",
            phase="monitoring",
            device=device_name,
            verdict="clean" if discrepancy is None else "drift",
            detail="" if discrepancy is None
            else f"{len(discrepancy.diff.splitlines())} diff line(s)",
        )

    def _collect_and_compare(self, device_name: str) -> ConfigDiscrepancy | None:
        """The collection half of a check — safe to run in a pool task.

        Collects the running config (recording a backup revision) and
        diffs it against golden; does *not* touch the shared discrepancy
        log, which the sweep coordinator appends to in queue order.
        """
        record = self._jobs.run_adhoc(
            "cli", "running-config", device_name, backends=(self.backup.name,)
        )
        if record is None:
            return None
        running = record["payload"]
        golden = self._generator.golden.get(device_name)
        if golden is None:
            return None  # device not yet under management
        if running == golden.text:
            return None
        return ConfigDiscrepancy(
            device=device_name,
            diff=unified_diff(golden.text, running, device_name),
            detected_at=parallel.task_clock(self._jobs.scheduler.clock).now,
        )

    def check_devices(self, names: list[str]) -> list[ConfigDiscrepancy]:
        """Sweep a set of devices (e.g. a rollout phase's health gate)."""
        found = []
        for name in sorted(names):
            discrepancy = self.check_device(name)
            if discrepancy is not None:
                found.append(discrepancy)
        return found

    def check_all(self) -> list[ConfigDiscrepancy]:
        """Sweep the whole fleet (periodic audit)."""
        return self.check_devices(list(self._fleet.devices))

    # ------------------------------------------------------------------
    # Regeneration-aware prioritization (change propagation)
    # ------------------------------------------------------------------

    def note_regenerated(self, configs: list[DeviceConfig]) -> None:
        """Record freshly regenerated devices for prioritized sweeping.

        Subscribed to :meth:`ConfigGenerator.subscribe`: devices whose
        golden just changed are exactly the ones whose running configs
        are about to be (or should have been) updated, so drift sweeps
        should look there first.
        """
        now = self._jobs.scheduler.clock.now
        for config in configs:
            self._recent[config.device_name] = now

    def priority_sweep(self, limit: int | None = None) -> list[ConfigDiscrepancy]:
        """Sweep with just-regenerated devices first.

        Ordering: devices regenerated since their last check, newest
        regeneration first; then the rest of the fleet, least recently
        checked first.  With ``limit``, only the first ``limit`` devices
        are checked — the budgeted form a periodic job uses to keep sweep
        cost bounded while still converging on fresh changes fast.
        """
        fresh = sorted(
            (name for name in self._recent if name in self._fleet.devices),
            key=lambda name: -self._recent[name],
        )
        rest = sorted(
            (name for name in self._fleet.devices if name not in self._recent),
            key=lambda name: (self._last_checked.get(name, 0.0), name),
        )
        queue = fresh + rest
        if limit is not None:
            queue = queue[:limit]
        obs.counter("confmon.priority_sweep").inc()
        if fresh:
            obs.counter("confmon.priority_sweep.fresh").inc(
                len([name for name in queue if name in self._recent])
            )
        # The queue is built (and bookkeeping updated) serially; the
        # collections fan out across the pool; discrepancies are recorded
        # on the coordinator in queue order, so the sweep's outcome is
        # identical at any worker count.
        now = self._jobs.scheduler.clock.now
        for name in queue:
            self._last_checked[name] = now
            self._recent.pop(name, None)
        results = parallel.run_tasks(
            [(name, partial(self._collect_and_compare, name)) for name in queue],
            section="confmon.sweep",
            clock=self._jobs.scheduler.clock,
        )
        parallel.raise_first_error(results)
        found = []
        for result in results:
            self._flight_verdict(result.key, result.value)
            if result.value is not None:
                self.discrepancies.append(result.value)
                self._notify(result.value)
                found.append(result.value)
        return found

    # ------------------------------------------------------------------
    # Remediation
    # ------------------------------------------------------------------

    def restore_golden(self, device_name: str) -> bool:
        """Push the golden config back onto a drifted device."""
        golden = self._generator.golden.get(device_name)
        if golden is None:
            return False
        device = self._fleet.get(device_name)
        device.commit(golden.text)
        return True

    def restore_revision(self, device_name: str, index: int) -> None:
        """Roll a device back to any prior backed-up config (section 5.4.3)."""
        text = self.backup.revision(device_name, index)
        self._fleet.get(device_name).commit(text)

    # ------------------------------------------------------------------
    # Periodic enforcement (section 8, "Automation Fallbacks")
    # ------------------------------------------------------------------

    def enforce_periodically(
        self, period: float, *, emergency_window: float = 1800.0
    ):
        """Periodically restore drifted devices to their golden configs.

        The paper's proposed alternative to blocking manual changes:
        "restore device running configs to Robotron-generated configs
        periodically, while giving users a window for these emergency
        operations."  A drift younger than ``emergency_window`` seconds is
        left alone (the engineer is presumably mid-incident); older drift
        is reverted.  Returns a canceller.
        """
        drift_seen_at: dict[str, float] = {}

        def sweep() -> None:
            now = self._jobs.scheduler.clock.now
            for name in sorted(self._fleet.devices):
                golden = self._generator.golden.get(name)
                device = self._fleet.get(name)
                if golden is None or not device.reachable():
                    continue
                if device.running_config == golden.text:
                    drift_seen_at.pop(name, None)
                    continue
                first_seen = drift_seen_at.setdefault(name, now)
                if now - first_seen >= emergency_window:
                    self.restore_golden(name)
                    drift_seen_at.pop(name, None)

        return self._jobs.scheduler.call_every(
            period, sweep, name="confmon-enforce"
        )
