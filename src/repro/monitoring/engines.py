"""Active monitoring engines: SNMP, CLI, XML/RPC, Thrift (paper 5.4.2).

The middle tier of Figure 11.  Engines pull jobs from the Job Manager and
poll devices with their mechanism.  Capabilities differ per vendor —
"for some vendors, the operational status of the physical links within an
aggregated interface can only be collected by CLI commands" (section 6.4)
— which is why a CLI engine exists at all.  Each successful device poll
counts as one monitoring event (Table 2's unit).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.errors import DeploymentError, MonitoringError
from repro.devices.emulator import EmulatedDevice

__all__ = [
    "CliEngine",
    "Engine",
    "SnmpEngine",
    "ThriftEngine",
    "XmlRpcEngine",
    "engine_for",
]


class Engine:
    """Base engine: polls one data type from one device."""

    #: Engine name as it appears in job specs and Table 2.
    name = "engine"
    #: Data types this engine can collect.
    data_types: tuple[str, ...] = ()

    def __init__(self) -> None:
        #: Successful polls (monitoring events, Table 2).
        self.events = 0
        #: Failed polls (unreachable device, unsupported capability).
        self.errors = 0
        # Parallel sweeps poll one shared engine instance from several
        # worker threads; the counters are read-modify-write.
        self._counter_lock = threading.Lock()

    def poll(self, device: EmulatedDevice, data_type: str) -> dict[str, Any]:
        if data_type not in self.data_types:
            raise MonitoringError(
                f"{self.name} engine cannot collect {data_type!r}"
            )
        try:
            payload = self._collect(device, data_type)
        except MonitoringError:
            with self._counter_lock:
                self.errors += 1
            raise
        except DeploymentError as exc:
            # An unreachable device is a failed poll, not a crash of the
            # monitoring tier.
            with self._counter_lock:
                self.errors += 1
            raise MonitoringError(str(exc)) from None
        with self._counter_lock:
            self.events += 1
        return {
            "engine": self.name,
            "device": device.name,
            "data_type": data_type,
            "payload": payload,
        }

    def _collect(self, device: EmulatedDevice, data_type: str) -> Any:
        raise NotImplementedError


class SnmpEngine(Engine):
    """SNMP polling: the workhorse — interface and system tables."""

    name = "snmp"
    data_types = ("interfaces", "system")

    def _collect(self, device: EmulatedDevice, data_type: str) -> Any:
        return device.snmp_get(data_type)


class CliEngine(Engine):
    """CLI scraping: running configs, LLDP, BGP, and LACP member status."""

    name = "cli"
    data_types = ("running-config", "lldp", "bgp", "lacp-members")

    def _collect(self, device: EmulatedDevice, data_type: str) -> Any:
        if data_type == "running-config":
            return device.cli_show("show running-config")
        if data_type == "lldp":
            return device.cli_show("show lldp neighbors")
        if data_type == "bgp":
            return device.cli_show("show bgp summary")
        # LACP member oper status, per aggregate (CLI-only on some vendors).
        members = {}
        aggregates = sorted(
            {
                stanza.channel_group
                for stanza in device.parsed.interfaces.values()
                if stanza.channel_group
            }
        )
        for aggregate in aggregates:
            members[aggregate] = device.cli_show(f"show lacp members {aggregate}")
        return members


class XmlRpcEngine(Engine):
    """XML/RPC structured API (supported by vendor1 platforms)."""

    name = "xmlrpc"
    data_types = ("interfaces", "bgp", "config")

    def _collect(self, device: EmulatedDevice, data_type: str) -> Any:
        return device.xmlrpc_get(data_type)


class ThriftEngine(Engine):
    """Thrift structured API (supported by vendor2 platforms)."""

    name = "thrift"
    data_types = ("interfaces", "bgp", "config")

    def _collect(self, device: EmulatedDevice, data_type: str) -> Any:
        return device.thrift_get(data_type)


def engine_for(name: str) -> Engine:
    """Instantiate an engine by job-spec name."""
    engines = {
        "snmp": SnmpEngine,
        "cli": CliEngine,
        "xmlrpc": XmlRpcEngine,
        "thrift": ThriftEngine,
    }
    if name not in engines:
        raise MonitoringError(f"unknown engine {name!r}")
    return engines[name]()
