"""Monitoring: passive, active, and config monitoring (paper section 5.4).

* :mod:`repro.monitoring.syslog` — the passive pipeline: devices send
  syslog to a BGP-anycast collector address; classifiers match regex rules
  maintained by network engineers (section 5.4.1, Table 3);
* :mod:`repro.monitoring.jobs` + :mod:`repro.monitoring.engines` +
  :mod:`repro.monitoring.backends` — the active pipeline's three tiers:
  the Job Manager schedules periodic/ad-hoc jobs, Engines poll devices
  over SNMP/CLI/XML-RPC/Thrift, Backends convert and store collected data
  (section 5.4.2, Figure 11, Table 2);
* :mod:`repro.monitoring.confmon` — config monitoring: a running-config
  change triggers collection, a diff against the Robotron-generated
  golden config, alerting, and backup (section 5.4.3);
* :mod:`repro.monitoring.audit` — Desired-vs-Derived anomaly detection
  (section 4.1.2).
"""

from repro.monitoring.alerts import MetricAlertRule, MetricMonitor
from repro.monitoring.audit import AuditReport, run_audit
from repro.monitoring.backends import (
    ConfigBackupBackend,
    DerivedModelBackend,
    TimeSeriesBackend,
)
from repro.monitoring.classifier import Classifier, SyslogRule, default_rule_table
from repro.monitoring.confmon import ConfigMonitor
from repro.monitoring.jobs import JobManager, JobSpec
from repro.monitoring.syslog import SyslogCollector

__all__ = [
    "AuditReport",
    "Classifier",
    "ConfigBackupBackend",
    "ConfigMonitor",
    "DerivedModelBackend",
    "JobManager",
    "JobSpec",
    "MetricAlertRule",
    "MetricMonitor",
    "SyslogCollector",
    "SyslogRule",
    "TimeSeriesBackend",
    "default_rule_table",
    "run_audit",
]
