"""The Job Manager: the top tier of the active pipeline (paper Figure 11).

The Job Manager schedules periodic monitoring jobs from a list of job
specifications — each describing the collection period, the type of data,
the devices, and the storage backends — and can also create ad-hoc jobs
on demand (the config monitor uses that after a config-change syslog).
Engines pull the work; backends receive the results.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro import faults, obs, parallel
from repro.common.errors import MonitoringError
from repro.devices.emulator import EmulatedDevice
from repro.faults.retry import GiveUp, RetryPolicy
from repro.devices.fleet import DeviceFleet
from repro.monitoring.backends import Backend
from repro.monitoring.engines import Engine, engine_for
from repro.simulation.clock import EventScheduler

__all__ = ["JobManager", "JobSpec"]


@dataclass(frozen=True)
class JobSpec:
    """One monitoring job specification (section 5.4.2).

    ``device_filter`` selects which fleet devices the job polls (None =
    all).  ``backends`` name the storage backends results go to.
    """

    name: str
    engine: str
    data_type: str
    period: float
    backends: tuple[str, ...] = ()
    device_filter: Callable[[EmulatedDevice], bool] | None = None

    def targets(self, fleet: DeviceFleet) -> list[EmulatedDevice]:
        devices = sorted(fleet.devices.values(), key=lambda d: d.name)
        if self.device_filter is None:
            return devices
        return [device for device in devices if self.device_filter(device)]


class JobManager:
    """Schedules periodic jobs and dispatches ad-hoc ones."""

    def __init__(
        self,
        fleet: DeviceFleet,
        scheduler: EventScheduler | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
    ):
        self._fleet = fleet
        self.scheduler = scheduler or fleet.scheduler
        #: When set, transient poll failures retry with simulated backoff.
        self._retry_policy = retry_policy
        self._engine_lock = threading.Lock()
        self._engines: dict[str, Engine] = {}
        self._backends: dict[str, Backend] = {}
        self._cancels: dict[str, Callable[[], None]] = {}
        self.specs: dict[str, JobSpec] = {}
        #: (job, device, error) triples for failed polls.
        self.failures: list[tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register_backend(self, backend: Backend) -> None:
        self._backends[backend.name] = backend

    def engine(self, name: str) -> Engine:
        """The shared engine instance for ``name`` (counters accumulate).

        Locked: parallel sweep tasks must share one instance, never race
        a duplicate into existence (its event counts would be lost).
        """
        with self._engine_lock:
            if name not in self._engines:
                self._engines[name] = engine_for(name)
            return self._engines[name]

    @property
    def engines(self) -> dict[str, Engine]:
        return dict(self._engines)

    # ------------------------------------------------------------------
    # Periodic jobs
    # ------------------------------------------------------------------

    def add_job(self, spec: JobSpec) -> None:
        """Register and start a periodic job."""
        if spec.name in self.specs:
            raise MonitoringError(f"job {spec.name!r} already registered")
        if spec.period <= 0:
            raise MonitoringError(f"job {spec.name!r}: period must be positive")
        self.specs[spec.name] = spec
        self._cancels[spec.name] = self.scheduler.call_every(
            spec.period, lambda: self.run_job(spec), name=f"job-{spec.name}"
        )

    def remove_job(self, name: str) -> None:
        cancel = self._cancels.pop(name, None)
        if cancel is not None:
            cancel()
        self.specs.pop(name, None)

    # ------------------------------------------------------------------
    # Execution (periodic firing and ad-hoc)
    # ------------------------------------------------------------------

    def _poll(
        self, engine: Engine, device: EmulatedDevice, data_type: str, job_name: str
    ) -> dict:
        """One collection, through the ``monitoring.collect`` fault point.

        With a retry policy configured, transient poll failures (injected
        or otherwise) back off on the simulated clock and retry, bumping
        ``monitoring.retry``, before the error reaches the failure log.
        Inside a pool task the backoff sleeps on the task-local clock.
        """
        clock = parallel.task_clock(self.scheduler.clock)

        def once() -> dict:
            if faults.should_inject(
                "monitoring.collect", job=job_name, device=device.name
            ):
                raise MonitoringError(
                    f"{device.name}: injected collection fault"
                )
            return engine.poll(device, data_type)

        if self._retry_policy is None:
            return once()
        try:
            return self._retry_policy.execute(
                once,
                retryable=(MonitoringError,),
                sleep=clock.advance,
                clock=clock,
                on_retry=lambda _i, _exc: obs.counter(
                    "monitoring.retry", job=job_name
                ).inc(),
            )
        except GiveUp as exc:
            assert isinstance(exc.last_error, MonitoringError)
            raise exc.last_error

    def run_job(self, spec: JobSpec) -> list[dict]:
        """Run one job over its targets now; returns collected records."""
        engine = self.engine(spec.engine)
        records = []
        with obs.span("monitoring.job", job=spec.name, engine=spec.engine):
            obs.counter("monitoring.job.run", job=spec.name).inc()
            for device in spec.targets(self._fleet):
                try:
                    record = self._poll(engine, device, spec.data_type, spec.name)
                except MonitoringError as exc:
                    self.failures.append((spec.name, device.name, str(exc)))
                    obs.counter(
                        "monitoring.collection.error", job=spec.name
                    ).inc()
                    continue
                records.append(record)
                self._dispatch(record, spec.backends)
            obs.counter("monitoring.records", job=spec.name).inc(len(records))
        return records

    def run_adhoc(
        self,
        engine_name: str,
        data_type: str,
        device_name: str,
        backends: tuple[str, ...] = (),
    ) -> dict | None:
        """Create and run an ad-hoc job against one device (Figure 11)."""
        device = self._fleet.get(device_name)
        engine = self.engine(engine_name)
        obs.counter("monitoring.job.adhoc", engine=engine_name).inc()
        try:
            record = self._poll(
                engine, device, data_type, f"adhoc-{engine_name}"
            )
        except MonitoringError as exc:
            self.failures.append((f"adhoc-{engine_name}", device_name, str(exc)))
            obs.counter(
                "monitoring.collection.error", job=f"adhoc-{engine_name}"
            ).inc()
            return None
        self._dispatch(record, backends)
        return record

    def _dispatch(self, record: dict, backend_names: tuple[str, ...]) -> None:
        timestamp = parallel.task_clock(self.scheduler.clock).now
        for name in backend_names:
            backend = self._backends.get(name)
            if backend is None:
                raise MonitoringError(f"no backend named {name!r}")
            backend.store(record, timestamp)

    # ------------------------------------------------------------------
    # Accounting (Table 2)
    # ------------------------------------------------------------------

    def event_counts(self) -> dict[str, int]:
        """Monitoring events per active engine since start."""
        return {name: engine.events for name, engine in self._engines.items()}
