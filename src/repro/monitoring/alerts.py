"""Metric-based alerting over the time-series backend (paper 5.3.2/5.4.2).

Phased deployments "monitor metrics to track the progress of each phase
and only continue deployment if the previous phase is successful"; the
section-8 peering incident was likewise "discovered, via monitoring" when
an egress link saturated.  This module evaluates threshold rules over the
:class:`~repro.monitoring.backends.TimeSeriesBackend` and exposes a
health-check factory the deployer's phased mode plugs into directly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.monitoring.backends import TimeSeriesBackend

__all__ = ["MetricAlert", "MetricAlertRule", "MetricMonitor"]

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
}


@dataclass(frozen=True)
class MetricAlertRule:
    """One threshold rule: fire when ``metric <op> threshold``."""

    name: str
    metric: str
    op: str
    threshold: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {self.op!r}")

    def breached(self, value: float) -> bool:
        return _COMPARATORS[self.op](value, self.threshold)


@dataclass(frozen=True)
class MetricAlert:
    """A fired threshold rule."""

    rule: str
    device: str
    metric: str
    value: float
    threshold: float
    at: float


class MetricMonitor:
    """Evaluates threshold rules against collected metrics."""

    #: Rules matching the health conditions the paper's examples gate on.
    DEFAULT_RULES = (
        MetricAlertRule(
            "cpu-high", "cpu", ">", 0.90,
            "device CPU saturated (monitoring jobs are throttled, 6.4)",
        ),
        MetricAlertRule(
            "memory-high", "memory", ">", 0.90, "device memory exhausted"
        ),
        MetricAlertRule(
            "interfaces-down", "interfaces_up", "<", 1.0,
            "device has no operational interfaces",
        ),
    )

    def __init__(
        self,
        tsdb: TimeSeriesBackend,
        rules: Sequence[MetricAlertRule] = DEFAULT_RULES,
        *,
        notifier: Callable[[MetricAlert], None] | None = None,
    ):
        self._tsdb = tsdb
        self.rules = list(rules)
        self._notify = notifier or (lambda _alert: None)
        self.alerts: list[MetricAlert] = []

    def evaluate_device(self, device: str, at: float = 0.0) -> list[MetricAlert]:
        """Check every rule against the device's latest samples."""
        fired = []
        for rule in self.rules:
            value = self._tsdb.latest(device, rule.metric)
            if value is None:
                continue
            if rule.breached(value):
                alert = MetricAlert(
                    rule=rule.name, device=device, metric=rule.metric,
                    value=value, threshold=rule.threshold, at=at,
                )
                fired.append(alert)
                self.alerts.append(alert)
                self._notify(alert)
        return fired

    def healthy(self, devices: Sequence[str], at: float = 0.0) -> bool:
        """Whether no rule fires for any of ``devices``."""
        result = True
        for device in devices:
            if self.evaluate_device(device, at):
                result = False
        return result

    def phased_health_check(self, at: float = 0.0) -> Callable[[list[str]], bool]:
        """A health-check callable for ``Deployer.phased_deploy``.

        After each phase the deployer passes the phase's device batch;
        the check fails the rollout if any threshold rule fires on any
        just-updated device — the paper's metric-gated phasing.
        """

        def check(batch: list[str]) -> bool:
            return self.healthy(batch, at)

        return check
