"""Active monitoring backends: convert and store collected data (5.4.2).

The bottom tier of Figure 11.  Backends receive engine records and convert
them for their storage location:

* :class:`TimeSeriesBackend` — performance metrics (link/CPU/memory);
* :class:`DerivedModelBackend` — populates FBNet Derived models, e.g.
  creating a ``DerivedCircuit`` when LLDP data from two devices shows
  their interfaces are neighbors (section 4.1.2);
* :class:`ConfigBackupBackend` — a revision store of running configs,
  enabling rollback to any prior device config (section 5.4.3).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict, deque
from typing import Any

from repro.fbnet.models import (
    AdminStatus,
    DerivedBgpSession,
    DerivedCircuit,
    DerivedDevice,
    DerivedInterface,
    DerivedRunningConfig,
    OperStatus,
)
from repro.fbnet.query import And, Expr, Op
from repro.fbnet.store import ObjectStore
from repro.obs import flight
from repro.simulation.clock import Clock

__all__ = [
    "Backend",
    "ConfigBackupBackend",
    "DerivedModelBackend",
    "TimeSeriesBackend",
]


class Backend:
    """Base backend: receives one engine record."""

    name = "backend"

    def store(self, record: dict[str, Any], timestamp: float) -> None:
        raise NotImplementedError


class TimeSeriesBackend(Backend):
    """In-memory time-series store for performance metrics.

    Each series keeps at most ``max_points_per_series`` points; when a
    series is full the oldest point is evicted first, so long simulations
    hold a bounded window of recent samples instead of growing without
    limit.
    """

    name = "tsdb"

    def __init__(self, max_points_per_series: int = 4096) -> None:
        if max_points_per_series <= 0:
            raise ValueError("max_points_per_series must be positive")
        self.max_points_per_series = max_points_per_series
        # (device, metric) -> bounded [(timestamp, value)], oldest first
        self.series: dict[tuple[str, str], deque[tuple[float, float]]] = defaultdict(
            lambda: deque(maxlen=max_points_per_series)
        )

    def store(self, record: dict[str, Any], timestamp: float) -> None:
        device = record["device"]
        payload = record["payload"]
        if record["data_type"] == "system":
            for metric in ("cpu", "memory", "uptime"):
                self.series[(device, metric)].append((timestamp, payload[metric]))
        elif record["data_type"] == "interfaces":
            up = sum(1 for row in payload if row.get("oper_status") == "up")
            self.series[(device, "interfaces_up")].append((timestamp, float(up)))

    def latest(self, device: str, metric: str) -> float | None:
        points = self.series.get((device, metric))
        return points[-1][1] if points else None


class DerivedModelBackend(Backend):
    """Populates FBNet Derived models from collected state (section 4.1.2)."""

    name = "derived"

    def __init__(self, store: ObjectStore, clock: Clock):
        self._store = store
        self._clock = clock

    def store(self, record: dict[str, Any], timestamp: float) -> None:
        handler = getattr(self, f"_store_{record['data_type'].replace('-', '_')}", None)
        if handler is not None:
            # Derived rows describe what monitoring *observed*, not what
            # the ambient change intended — a rollout baking while a
            # collection job fires must not claim these writes, so the
            # change context is masked for the duration.
            with flight.suppressed():
                handler(record["device"], record["payload"], timestamp)

    # -- per-data-type converters ---------------------------------------------

    def _store_system(self, device: str, payload: dict, timestamp: float) -> None:
        existing = self._store.first(
            DerivedDevice, Expr("name", Op.EQUAL, device)
        )
        values = {
            "name": device,
            "uptime_seconds": payload["uptime"],
            "cpu_utilization": payload["cpu"],
            "memory_utilization": payload["memory"],
            "collected_at": timestamp,
        }
        if existing is None:
            self._store.create(DerivedDevice, **values)
        else:
            self._store.update(existing, **values)

    def _store_interfaces(self, device: str, payload: list, timestamp: float) -> None:
        for row in payload:
            existing = self._store.first(
                DerivedInterface,
                And(
                    Expr("device_name", Op.EQUAL, device),
                    Expr("name", Op.EQUAL, row["name"]),
                ),
            )
            values = {
                "device_name": device,
                "name": row["name"],
                "oper_status": OperStatus(row["oper_status"]),
                "admin_status": AdminStatus(row.get("admin_status", "enabled")),
                "collected_at": timestamp,
            }
            if existing is None:
                self._store.create(DerivedInterface, **values)
            else:
                self._store.update(existing, **values)

    def _store_lldp(self, device: str, payload: list, timestamp: float) -> None:
        """Create DerivedCircuits when both ends report each other.

        "A circuit object is created if the LLDP data from two devices
        shows that the physical interfaces connected to both ends are
        neighbors to each other" — we record each side's view and promote
        to a circuit when the reverse view exists.
        """
        for row in payload:
            a_dev, a_if = device, row["local_interface"]
            z_dev, z_if = row["neighbor_device"], row["neighbor_interface"]
            # Check whether the mirror record was already collected.
            mirror = self._store.first(
                DerivedCircuit,
                And(
                    Expr("a_device_name", Op.EQUAL, z_dev),
                    Expr("a_interface_name", Op.EQUAL, z_if),
                ),
            )
            if mirror is not None:
                if (
                    mirror.z_device_name == a_dev
                    and mirror.z_interface_name == a_if
                ):
                    self._store.update(mirror, collected_at=timestamp)
                    continue
            existing = self._store.first(
                DerivedCircuit,
                And(
                    Expr("a_device_name", Op.EQUAL, a_dev),
                    Expr("a_interface_name", Op.EQUAL, a_if),
                ),
            )
            values = {
                "a_device_name": a_dev,
                "a_interface_name": a_if,
                "z_device_name": z_dev,
                "z_interface_name": z_if,
                "collected_at": timestamp,
            }
            if existing is None:
                self._store.create(DerivedCircuit, **values)
            else:
                self._store.update(existing, **values)

    def _store_bgp(self, device: str, payload: list, timestamp: float) -> None:
        for row in payload:
            existing = self._store.first(
                DerivedBgpSession,
                And(
                    Expr("device_name", Op.EQUAL, device),
                    Expr("peer_ip", Op.EQUAL, row["peer_ip"]),
                ),
            )
            values = {
                "device_name": device,
                "peer_ip": row["peer_ip"],
                "state": row["state"],
                "collected_at": timestamp,
            }
            if existing is None:
                self._store.create(DerivedBgpSession, **values)
            else:
                self._store.update(existing, **values)

    def _store_running_config(self, device: str, payload: str, timestamp: float) -> None:
        digest = hashlib.sha256(payload.encode()).hexdigest()
        existing = self._store.first(
            DerivedRunningConfig, Expr("device_name", Op.EQUAL, device)
        )
        values = {
            "device_name": device,
            "config_hash": digest,
            "config_text": payload,
            "collected_at": timestamp,
        }
        if existing is None:
            self._store.create(DerivedRunningConfig, **values)
        else:
            self._store.update(existing, **values)


class ConfigBackupBackend(Backend):
    """Revision-controlled backups of running configs (section 5.4.3)."""

    name = "config-backup"

    def __init__(self) -> None:
        # device -> [(timestamp, config text)]
        self.revisions: dict[str, list[tuple[float, str]]] = defaultdict(list)

    def store(self, record: dict[str, Any], timestamp: float) -> None:
        if record["data_type"] != "running-config":
            return
        device = record["device"]
        text = record["payload"]
        history = self.revisions[device]
        if history and history[-1][1] == text:
            return  # unchanged; keep the revision history meaningful
        history.append((timestamp, text))

    def latest(self, device: str) -> str | None:
        history = self.revisions.get(device)
        return history[-1][1] if history else None

    def revision(self, device: str, index: int) -> str:
        return self.revisions[device][index][1]

    def revision_count(self, device: str) -> int:
        return len(self.revisions.get(device, []))
