"""Syslog classification: regex rules by urgency (paper 5.4.1, Table 3).

Classifiers match incoming syslog messages against a rule table
maintained by network engineers.  A match produces an alert of the rule's
urgency (and optionally triggers automatic remediation); messages no rule
matches are IGNORED — the paper measured 96.27% of messages in that
bucket over 24 hours.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass

from repro.fbnet.models import EventSeverity
from repro.monitoring.syslog import SyslogMessage

__all__ = ["Alert", "Classifier", "SyslogRule", "default_rule_table"]


@dataclass(frozen=True)
class SyslogRule:
    """One regex rule: pattern → urgency."""

    name: str
    pattern: str
    severity: EventSeverity
    remediation: str = ""  # name of an automatic remediation, if any

    def compiled(self) -> re.Pattern[str]:
        return re.compile(self.pattern)


@dataclass(frozen=True)
class Alert:
    """A classified event surfaced to engineers (or auto-remediated)."""

    rule: str
    severity: EventSeverity
    device: str
    message: str
    timestamp: float


class Classifier:
    """Matches messages against the rule table, first match wins.

    Rules are evaluated in severity order (CRITICAL first) so the most
    urgent interpretation of a message prevails.
    """

    _SEVERITY_ORDER = [
        EventSeverity.CRITICAL,
        EventSeverity.MAJOR,
        EventSeverity.MINOR,
        EventSeverity.WARNING,
        EventSeverity.NOTICE,
    ]

    def __init__(self, rules: list[SyslogRule]):
        self._rules: list[tuple[SyslogRule, re.Pattern[str]]] = []
        by_severity: dict[EventSeverity, list[SyslogRule]] = {}
        for rule in rules:
            by_severity.setdefault(rule.severity, []).append(rule)
        for severity in self._SEVERITY_ORDER:
            for rule in by_severity.get(severity, []):
                self._rules.append((rule, rule.compiled()))
        #: Classified-event counters by severity (Table 3's '# of events').
        self.counts: Counter = Counter()
        #: Alerts raised, newest last.
        self.alerts: list[Alert] = []
        self._alert_sinks: list[Callable[[Alert], None]] = []
        self._remediations: dict[str, Callable[[Alert], None]] = {}

    def rule_count(self, severity: EventSeverity) -> int:
        """Number of rules at one urgency (Table 3's '# of rules')."""
        return sum(1 for rule, _ in self._rules if rule.severity is severity)

    def on_alert(self, sink: Callable[[Alert], None]) -> None:
        self._alert_sinks.append(sink)

    def match(self, message: SyslogMessage) -> SyslogRule | None:
        """The rule that would classify ``message`` — without recording.

        Side-effect-free lookup for detector adapters (e.g. the
        remediation engine's syslog-urgency detector) that need a
        message's severity but must not double-count Table 3's event
        tallies or re-raise alerts.
        """
        line = message.render()
        for rule, pattern in self._rules:
            if pattern.search(line):
                return rule
        return None

    def register_remediation(self, name: str, fn: Callable[[Alert], None]) -> None:
        """Attach an automatic remediation callable to a remediation name."""
        self._remediations[name] = fn

    def __call__(self, message: SyslogMessage) -> Alert | None:
        """Classify one message; returns the alert, or None if ignored."""
        line = message.render()
        for rule, pattern in self._rules:
            if pattern.search(line):
                alert = Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    device=message.device,
                    message=message.message,
                    timestamp=message.timestamp,
                )
                self.counts[rule.severity] += 1
                self.alerts.append(alert)
                for sink in self._alert_sinks:
                    sink(alert)
                if rule.remediation and rule.remediation in self._remediations:
                    self._remediations[rule.remediation](alert)
                return alert
        self.counts[EventSeverity.IGNORED] += 1
        return None

    def severity_table(self) -> dict[EventSeverity, tuple[int, float]]:
        """(count, percentage) per urgency — the shape of Table 3."""
        total = sum(self.counts.values()) or 1
        return {
            severity: (self.counts[severity], 100.0 * self.counts[severity] / total)
            for severity in list(self._SEVERITY_ORDER) + [EventSeverity.IGNORED]
        }


def default_rule_table() -> list[SyslogRule]:
    """A representative rule table, echoing the paper's Table 3 examples.

    The production table had 719 rules; this default covers the examples
    the paper names per urgency plus the config-change and link-state
    rules the rest of the reproduction relies on.  Workload benches extend
    it with synthetic rules to match the paper's per-urgency rule counts.
    """
    critical = [
        SyslogRule("critical-power", r"Critical Power", EventSeverity.CRITICAL),
        SyslogRule(
            "critical-temperature", r"Critical Temperature", EventSeverity.CRITICAL
        ),
        SyslogRule("device-reboot", r"System restarted", EventSeverity.CRITICAL),
        SyslogRule("ssl-vpn-alarm", r"SSL VPN Alarm", EventSeverity.CRITICAL),
    ]
    major = [
        SyslogRule("high-temperature", r"High Temperature", EventSeverity.MAJOR),
        SyslogRule("tcam-errors", r"TCAM error", EventSeverity.MAJOR),
        SyslogRule("linecard-removed", r"Linecard removed", EventSeverity.MAJOR),
    ]
    minor = [
        SyslogRule("tcam-exhausted", r"TCAM exhausted", EventSeverity.MINOR),
        SyslogRule("bad-fpc", r"Possible bad FPC", EventSeverity.MINOR),
        SyslogRule("ip-conflict", r"IP conflict", EventSeverity.MINOR),
    ]
    warning = [
        SyslogRule("config-change", r"Configuration changed", EventSeverity.WARNING),
        SyslogRule("ssl-conn-limit", r"SSL connection limit", EventSeverity.WARNING),
        SyslogRule("syslog-cleared", r"Syslog cleared by user", EventSeverity.WARNING),
        SyslogRule(
            "link-down", r"Interface .* link state down", EventSeverity.WARNING
        ),
    ]
    notice = [
        SyslogRule("dhcp-snooping", r"DHCP Snooping Deny", EventSeverity.NOTICE),
        SyslogRule("mac-conflict", r"MAC Conflict", EventSeverity.NOTICE),
        SyslogRule("ntp-unreachable", r"Cannot find NTP server", EventSeverity.NOTICE),
    ]
    return critical + major + minor + warning + notice
