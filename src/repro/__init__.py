"""repro — a reproduction of *Robotron: Top-down Network Management at
Facebook Scale* (SIGCOMM 2016).

Robotron manages a production network top-down: engineers express
high-level design intent; the system translates it into distributed,
vendor-specific device configurations, deploys them safely, and monitors
the network for deviation from the desired state.

Quickstart::

    from repro import Robotron, seed_environment
    from repro.fbnet.models import ClusterGeneration

    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    robotron.provision_cluster(cluster)
    robotron.attach_monitoring()
    robotron.run_minutes(10)
    assert robotron.audit().clean

Package map (paper section in parentheses):

* :mod:`repro.fbnet` — the FBNet object store, models, query language,
  APIs, RPC service layer, and replication (section 4);
* :mod:`repro.design` — topology templates, materialization, IPAM,
  portmap change plans, backbone tools, validation, design changes
  (section 5.1);
* :mod:`repro.configgen` — template engine, Thrift-like config schema,
  vendor templates, Configerator, the generation pipeline (section 5.2);
* :mod:`repro.deploy` — initial provisioning and the dryrun / atomic /
  phased / confirmed deployment modes (section 5.3);
* :mod:`repro.devices` — emulated multi-vendor devices and the fleet;
* :mod:`repro.monitoring` — passive syslog, the three-tier active
  pipeline, config monitoring, Desired-vs-Derived audits (section 5.4);
* :mod:`repro.simulation` — deterministic clock and workload generators;
* :mod:`repro.core` — the Robotron facade and environment seeding.
"""

from repro.core.robotron import Robotron
from repro.core.seeds import SeededEnvironment, seed_environment
from repro.design.fleet import FLEET_224, FLEET_2K, FleetProfile, build_fleet
from repro.fbnet.sharding import ShardedObjectStore
from repro.fbnet.store import ObjectStore

__version__ = "1.0.0"

__all__ = [
    "FLEET_224",
    "FLEET_2K",
    "FleetProfile",
    "ObjectStore",
    "Robotron",
    "SeededEnvironment",
    "ShardedObjectStore",
    "__version__",
    "build_fleet",
    "seed_environment",
]
