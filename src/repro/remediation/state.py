"""Per-device remediation state machine.

Closed-loop remediation is only safe when every device's position in the
loop is explicit: a device is *suspect* (something detected), actively
*remediating* (an automatic action in flight), *verified* (the action
landed and live state checked out), or *quarantined* (automation gave up
and drained it out of traffic).  The transition table below is the whole
contract — :meth:`DeviceTracker.transition` rejects anything else, so an
engine bug can corrupt a counter but never teleport a device from
``healthy`` straight to ``remediating`` without a recorded detection.

Oscillation is ruled out structurally rather than heuristically: attempts
accumulate for the *lifetime* of a tracker (a re-drifting device resumes
its count, it does not get a fresh budget), and a failed attempt parks
the device in cooldown until a simulated-clock deadline.  Every device
therefore performs at most ``max_attempts`` automatic actions, ever,
before quarantine — the loop is finite by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import obs
from repro.common.errors import RobotronError

__all__ = [
    "ALLOWED_TRANSITIONS",
    "DeviceHealth",
    "DeviceTracker",
    "TransitionError",
]


class DeviceHealth(enum.Enum):
    """Where a device stands in the detect → act → verify loop."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    REMEDIATING = "remediating"
    VERIFIED = "verified"
    QUARANTINED = "quarantined"


#: The complete set of legal (from, to) edges.  QUARANTINED is terminal —
#: releasing a quarantined device is a human decision, not an engine one.
ALLOWED_TRANSITIONS: frozenset[tuple[DeviceHealth, DeviceHealth]] = frozenset(
    {
        (DeviceHealth.HEALTHY, DeviceHealth.SUSPECT),
        (DeviceHealth.VERIFIED, DeviceHealth.SUSPECT),  # re-detection
        (DeviceHealth.SUSPECT, DeviceHealth.REMEDIATING),
        (DeviceHealth.SUSPECT, DeviceHealth.QUARANTINED),  # budget exhausted
        (DeviceHealth.REMEDIATING, DeviceHealth.VERIFIED),
        (DeviceHealth.REMEDIATING, DeviceHealth.SUSPECT),  # action failed
        (DeviceHealth.REMEDIATING, DeviceHealth.QUARANTINED),
    }
)


class TransitionError(RobotronError):
    """An illegal state-machine edge was requested."""


@dataclass
class DeviceTracker:
    """One device's remediation history and current position."""

    name: str
    state: DeviceHealth = DeviceHealth.HEALTHY
    #: Automatic actions attempted over the tracker's lifetime (never
    #: reset — the no-oscillation bound).
    attempts: int = 0
    #: Simulated-clock time before which no new action may start.
    cooldown_until: float = 0.0
    #: Human-readable cause of the current suspicion.
    cause: str = ""
    #: Channel the current cause arrived on ("drift" or "syslog").
    source: str = ""
    #: Flight-recorder change id of the detection (attribution source).
    cause_id: str = ""
    #: (sim_time, from, to, reason) tuples, oldest first.
    history: list[tuple[float, str, str, str]] = field(default_factory=list)

    def transition(
        self, to: DeviceHealth, *, now: float, reason: str = ""
    ) -> None:
        """Move to ``to``, validating against :data:`ALLOWED_TRANSITIONS`."""
        if (self.state, to) not in ALLOWED_TRANSITIONS:
            raise TransitionError(
                f"{self.name}: illegal transition "
                f"{self.state.value} -> {to.value}"
            )
        obs.counter(
            "remediation.transition",
            from_state=self.state.value,
            to_state=to.value,
        ).inc()
        self.history.append((now, self.state.value, to.value, reason))
        self.state = to

    def in_cooldown(self, now: float) -> bool:
        return now < self.cooldown_until

    @property
    def settled(self) -> bool:
        """True when the engine owes this device no further work."""
        return self.state in (
            DeviceHealth.HEALTHY,
            DeviceHealth.VERIFIED,
            DeviceHealth.QUARANTINED,
        )
