"""The closed-loop remediation engine (paper sections 5.4.1 and 8).

Detection feeds in from two monitoring channels: ConfMon drift
notifications (``priority_sweep``/``check_all``/passive checks) and the
syslog urgency stream (messages the classifier's rule table matches at
CRITICAL/MAJOR).  Both channels may fire inside worker-pool tasks, so
detections land in a locked buffer and are **sorted** — by simulated
time, then device, then channel — before the serial policy step consumes
them.  Everything decision-shaped (state transitions, change-id
allocation, action execution) happens on the coordinator, which is what
makes a remediation run byte-identical at any ``ROBOTRON_WORKERS``.

Every action executes through the guarded-rollout path
(:meth:`repro.core.robotron.Robotron.guarded_deploy`), inheriting canary
gating and last-known-good rollback; drains go through the fixed
:func:`repro.deploy.maintenance.drain_device`, whose compensating
transaction keeps Desired state honest when a push fails.  Each action
opens a flight-recorder change context with ``causes=`` the detection's
change id, so ``flight.render_lineage`` answers "why did automation touch
this box?" end to end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import obs
from repro.obs import flight
from repro.common.errors import DeploymentError, RobotronError
from repro.fbnet.models import Device
from repro.fbnet.query import Expr, Op
from repro.monitoring.confmon import ConfigDiscrepancy
from repro.monitoring.syslog import SyslogMessage
from repro.remediation.policy import (
    ACTION_DRAIN,
    ACTION_REGEN_REPUSH,
    ACTION_RESTORE_GOLDEN,
    RemediationPolicy,
)
from repro.remediation.state import DeviceHealth, DeviceTracker

__all__ = [
    "ActionRecord",
    "Detection",
    "RemediationEngine",
    "RemediationReport",
]


@dataclass(frozen=True, order=True)
class Detection:
    """One monitoring signal, normalized across channels.

    Field order *is* the sort order the serial step consumes detections
    in: simulated detection time first, then device name, then channel,
    then detail — a total order over workload-determined values, so the
    processing sequence is identical at any worker count.
    """

    at: float
    device: str
    #: Detection channel: ``"drift"`` (ConfMon) or ``"syslog"``.
    source: str
    detail: str
    #: Change id active when the detection fired ("" when unattributed) —
    #: becomes the ``causes=`` of any action it triggers.
    cause_id: str = ""


@dataclass(frozen=True)
class ActionRecord:
    """One automatic action the engine executed."""

    device: str
    action: str
    attempt: int
    ok: bool
    detail: str = ""
    change_id: str = ""


@dataclass
class RemediationReport:
    """Outcome of one :meth:`RemediationEngine.run` loop."""

    sweeps: int
    converged: bool
    #: Device -> final state value for every tracked device.
    states: dict[str, str] = field(default_factory=dict)
    actions: list[ActionRecord] = field(default_factory=list)

    @property
    def quarantined(self) -> list[str]:
        return sorted(
            name
            for name, state in self.states.items()
            if state == DeviceHealth.QUARANTINED.value
        )

    @property
    def verified(self) -> list[str]:
        return sorted(
            name
            for name, state in self.states.items()
            if state == DeviceHealth.VERIFIED.value
        )


class RemediationEngine:
    """Consumes detections, drives the per-device state machine."""

    def __init__(self, robotron, policy: RemediationPolicy | None = None):
        self._robotron = robotron
        self.policy = policy or RemediationPolicy()
        self.trackers: dict[str, DeviceTracker] = {}
        self._pending: list[Detection] = []
        self._lock = threading.Lock()
        self._attached = False

    # ------------------------------------------------------------------
    # Detector adapters (may run inside pool tasks — buffer only)
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Subscribe to the monitoring plane's detection channels."""
        if self._attached:
            return
        if self._robotron.confmon is None or self._robotron.collector is None:
            raise RobotronError(
                "monitoring not attached; call attach_monitoring() first"
            )
        self._robotron.confmon.subscribe_notifier(self._on_drift)
        self._robotron.collector.subscribe(self._on_syslog)
        self._attached = True

    def _buffer(self, detection: Detection) -> None:
        with self._lock:
            self._pending.append(detection)

    def _on_drift(self, discrepancy: ConfigDiscrepancy) -> None:
        self._buffer(
            Detection(
                at=discrepancy.detected_at,
                device=discrepancy.device,
                source="drift",
                detail=f"{len(discrepancy.diff.splitlines())} diff line(s)",
                cause_id=flight.current_change_id(),
            )
        )

    def _on_syslog(self, message: SyslogMessage) -> None:
        classifier = self._robotron.classifier
        if classifier is None:
            return
        rule = classifier.match(message)
        if rule is None or rule.severity not in self.policy.drain_severities:
            return
        self._buffer(
            Detection(
                at=message.timestamp,
                device=message.device,
                source="syslog",
                detail=f"{rule.severity.value} {rule.name}",
                cause_id=flight.current_change_id(),
            )
        )

    # ------------------------------------------------------------------
    # The serial policy step
    # ------------------------------------------------------------------

    @property
    def _clock(self):
        return self._robotron.scheduler.clock

    def step(self, *, sweep_limit: int | None = None) -> list[ActionRecord]:
        """One detect → act → verify pass, entirely on the coordinator.

        Runs a prioritized drift sweep (pooled collection, serial
        verdicts), drains and sorts the detection buffer, then acts on
        every suspect device outside its cooldown window, in name order.
        """
        if self._robotron.confmon is not None:
            self._robotron.confmon.priority_sweep(sweep_limit)
        self._ingest()
        actions: list[ActionRecord] = []
        now = self._clock.now
        for name in sorted(self.trackers):
            tracker = self.trackers[name]
            if tracker.state is not DeviceHealth.SUSPECT:
                continue
            if tracker.in_cooldown(now):
                continue
            if tracker.attempts >= self.policy.max_attempts:
                self._quarantine(tracker, reason="attempt budget exhausted")
                continue
            actions.append(self._act(tracker))
        self._export_gauges()
        return actions

    def _ingest(self) -> None:
        with self._lock:
            detections, self._pending = self._pending, []
        for detection in sorted(detections):
            tracker = self.trackers.setdefault(
                detection.device, DeviceTracker(detection.device)
            )
            accepted = tracker.state in (
                DeviceHealth.HEALTHY,
                DeviceHealth.VERIFIED,
            )
            escalated = (
                not accepted
                and tracker.state is DeviceHealth.SUSPECT
                and detection.source == "syslog"
                and tracker.source != "syslog"
            )
            obs.counter(
                "remediation.detect",
                source=detection.source,
                outcome="accepted"
                if accepted
                else ("escalated" if escalated else "ignored"),
            ).inc()
            if escalated:
                # Urgent syslog trumps a pending drift suspicion: the
                # next action drains rather than re-pushing config.
                tracker.cause = detection.detail
                tracker.cause_id = detection.cause_id
                tracker.source = detection.source
                flight.record(
                    "remediation.detect",
                    phase="monitoring",
                    device=detection.device,
                    verdict="syslog",
                    detail=f"escalated: {detection.detail}",
                    change_id=detection.cause_id or None,
                )
                continue
            if not accepted:
                # Already remediating/quarantined (or a repeat signal on
                # a suspect): the loop owns this device; nothing to add.
                continue
            tracker.transition(
                DeviceHealth.SUSPECT, now=self._clock.now,
                reason=f"{detection.source}: {detection.detail}",
            )
            tracker.cause = detection.detail
            tracker.cause_id = detection.cause_id
            tracker.source = detection.source
            flight.record(
                "remediation.detect",
                phase="monitoring",
                device=detection.device,
                verdict=detection.source,
                detail=detection.detail,
                change_id=detection.cause_id or None,
            )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _pusher(self, configs):
        """Route a remediation push through the guarded-rollout path."""
        return self._robotron.guarded_push(
            configs,
            bake_seconds=self.policy.bake_seconds,
            max_failure_ratio=self.policy.max_failure_ratio,
            phase_name="remediation",
        )

    def _act(self, tracker: DeviceTracker) -> ActionRecord:
        policy = self.policy
        action = policy.select_action(
            source=tracker.source, attempts=tracker.attempts
        )
        tracker.transition(
            DeviceHealth.REMEDIATING, now=self._clock.now, reason=action
        )
        tracker.attempts += 1
        if policy.triage_seconds:
            # Detection-to-action delay on the simulated clock: the
            # triggering alert must predate the rollout's gate window.
            self._robotron.run(policy.triage_seconds)
        causes = (tracker.cause_id,) if tracker.cause_id else ()
        with flight.change_context(
            f"auto-remediation: {action} on {tracker.name}", causes=causes
        ) as context:
            flight.record(
                "remediation.action",
                phase="intent",
                device=tracker.name,
                verdict=action,
                detail=tracker.cause,
            )
            obs.counter("remediation.action", action=action).inc()
            try:
                ok, detail = self._execute(tracker.name, action)
            except (DeploymentError, RobotronError) as exc:
                ok, detail = False, f"{type(exc).__name__}: {exc}"
            if ok and action != ACTION_DRAIN:
                ok, detail = self._verify(tracker.name)
            now = self._clock.now
            if ok:
                if action == ACTION_DRAIN:
                    # A successful drain *is* the quarantine: the device
                    # is out of traffic pending human attention.
                    self._quarantine(
                        tracker, reason="drained out of traffic", drain=False
                    )
                else:
                    tracker.transition(
                        DeviceHealth.VERIFIED, now=now, reason=detail or action
                    )
                    flight.record(
                        "remediation.verify",
                        phase="monitoring",
                        device=tracker.name,
                        verdict="ok",
                        detail=detail,
                    )
                    obs.counter("remediation.verify", outcome="ok").inc()
            else:
                flight.record(
                    "remediation.verify",
                    phase="monitoring",
                    device=tracker.name,
                    verdict="failed",
                    detail=detail,
                )
                obs.counter("remediation.verify", outcome="failed").inc()
                if tracker.attempts >= policy.max_attempts:
                    self._quarantine(tracker, reason=detail)
                else:
                    tracker.transition(
                        DeviceHealth.SUSPECT, now=now, reason=detail
                    )
                    tracker.cooldown_until = now + policy.cooldown_seconds
            return ActionRecord(
                device=tracker.name,
                action=action,
                attempt=tracker.attempts,
                ok=ok,
                detail=detail,
                change_id=context.change_id,
            )

    def _execute(self, name: str, action: str) -> tuple[bool, str]:
        robotron = self._robotron
        if action == ACTION_DRAIN:
            from repro.deploy.maintenance import drain_device

            drain_device(
                robotron.store, robotron.fleet, robotron.generator,
                robotron.deployer, name,
                reason="auto-remediation: syslog urgency",
                pusher=self._pusher,
            )
            return True, "drained"
        if action == ACTION_RESTORE_GOLDEN:
            golden = robotron.generator.golden.get(name)
            if golden is None:
                return False, "no golden config to restore"
            config = golden
        elif action == ACTION_REGEN_REPUSH:
            device = robotron.store.first(Device, Expr("name", Op.EQUAL, name))
            if device is None:
                return False, "device not in FBNet"
            config = robotron.generator.generate_device(device)
        else:  # pragma: no cover - policy only emits the three actions
            raise RobotronError(f"unknown remediation action {action!r}")
        report = self._pusher({name: config})
        if report.failed:
            return False, f"push failed: {report.failed.get(name, report.failed)}"
        return True, action

    def _verify(self, name: str) -> tuple[bool, str]:
        """Live-state check: reachable and running == golden."""
        device = self._robotron.fleet.get(name)
        if not device.reachable():
            return False, "device unreachable after action"
        golden = self._robotron.generator.golden.get(name)
        if golden is None:
            return False, "no golden config to verify against"
        if device.running_config != golden.text:
            return False, "running config still deviates from golden"
        return True, "running config matches golden"

    def _quarantine(
        self, tracker: DeviceTracker, *, reason: str, drain: bool = True
    ) -> None:
        """Give up on automation: drain (best effort) and park the device.

        The drain itself goes through the fixed, compensating
        ``drain_device`` path, so even here a failed push cannot leave
        Desired state lying about the fleet.
        """
        if drain:
            try:
                from repro.deploy.maintenance import drain_device

                robotron = self._robotron
                drain_device(
                    robotron.store, robotron.fleet, robotron.generator,
                    robotron.deployer, tracker.name,
                    reason=f"auto-quarantine: {reason}",
                    verify=False,
                    pusher=self._pusher,
                )
            except (DeploymentError, RobotronError):
                pass  # quarantine stands even when the drain cannot land
        tracker.transition(
            DeviceHealth.QUARANTINED, now=self._clock.now, reason=reason
        )
        obs.counter("remediation.quarantine").inc()
        flight.record(
            "remediation.quarantine",
            phase="monitoring",
            device=tracker.name,
            verdict="quarantined",
            detail=reason,
        )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def converged(self) -> bool:
        """No buffered detections and no device mid-loop."""
        with self._lock:
            if self._pending:
                return False
        return all(tracker.settled for tracker in self.trackers.values())

    def states(self) -> dict[str, str]:
        return {
            name: tracker.state.value
            for name, tracker in sorted(self.trackers.items())
        }

    def _export_gauges(self) -> None:
        counts = {state: 0 for state in DeviceHealth}
        for tracker in self.trackers.values():
            counts[tracker.state] += 1
        for state, count in counts.items():
            obs.gauge("remediation.devices", state=state.value).set(
                count, at=self._clock.now
            )

    def run(
        self,
        *,
        max_sweeps: int = 20,
        period: float = 60.0,
        sweep_limit: int | None = None,
    ) -> RemediationReport:
        """Sweep → act → advance simulated time, until converged.

        ``period`` simulated seconds elapse between sweeps (periodic
        monitoring jobs fire, cooldowns expire, bakes complete).  Stops
        early once :meth:`converged`; ``max_sweeps`` bounds the loop when
        a storm outruns the attempt budget.
        """
        actions: list[ActionRecord] = []
        sweeps = 0
        for sweeps in range(1, max_sweeps + 1):
            actions.extend(self.step(sweep_limit=sweep_limit))
            if self.converged():
                break
            self._robotron.run(period)
        return RemediationReport(
            sweeps=sweeps,
            converged=self.converged(),
            states=self.states(),
            actions=actions,
        )

