"""repro.remediation — closed-loop automatic remediation.

Ties the monitoring plane back to the deployment plane: ConfMon drift
sweeps and urgent syslog classifications feed a per-device state machine
(healthy → suspect → remediating → verified, quarantined when automation
gives up), and every corrective action — golden restore, regenerate and
re-push, or drain — executes through the guarded-rollout path with full
flight-recorder attribution back to the detection that caused it.
"""

from repro.remediation.engine import (
    ActionRecord,
    Detection,
    RemediationEngine,
    RemediationReport,
)
from repro.remediation.policy import (
    ACTION_DRAIN,
    ACTION_REGEN_REPUSH,
    ACTION_RESTORE_GOLDEN,
    RemediationPolicy,
)
from repro.remediation.state import (
    ALLOWED_TRANSITIONS,
    DeviceHealth,
    DeviceTracker,
    TransitionError,
)

__all__ = [
    "ACTION_DRAIN",
    "ACTION_REGEN_REPUSH",
    "ACTION_RESTORE_GOLDEN",
    "ALLOWED_TRANSITIONS",
    "ActionRecord",
    "Detection",
    "DeviceHealth",
    "DeviceTracker",
    "RemediationEngine",
    "RemediationPolicy",
    "RemediationReport",
    "TransitionError",
]
