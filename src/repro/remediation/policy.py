"""Action selection: which automatic fix a detection earns.

The paper's remediation menu (sections 5.4.1 and 8) is small and blunt on
purpose — automation that "fixes" a device it does not understand makes
incidents worse.  Three actions exist:

* ``restore_golden`` — re-push the already-generated golden config; the
  right first response to drift, where Desired intent is known-good and
  only the running config wandered;
* ``regen_repush`` — regenerate the config from FBNet Desired state and
  push that; the escalation when the golden itself may be stale;
* ``drain`` — take the device out of production traffic via the fixed
  :func:`repro.deploy.maintenance.drain_device` path; the response to
  urgent syslog (hardware trouble is not fixed by a config push) and the
  terminal move when the attempt budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fbnet.models import EventSeverity

__all__ = [
    "ACTION_DRAIN",
    "ACTION_REGEN_REPUSH",
    "ACTION_RESTORE_GOLDEN",
    "RemediationPolicy",
]

ACTION_RESTORE_GOLDEN = "restore_golden"
ACTION_REGEN_REPUSH = "regen_repush"
ACTION_DRAIN = "drain"


@dataclass(frozen=True)
class RemediationPolicy:
    """Tunables governing the closed loop.

    ``max_attempts`` bounds automatic actions per device over the
    tracker's lifetime; ``cooldown_seconds`` parks a device after a
    failed action so the engine cannot hammer a broken box; syslog
    messages classified at one of ``drain_severities`` are treated as
    urgent hardware trouble and answered by draining rather than config
    pushes.
    """

    max_attempts: int = 3
    cooldown_seconds: float = 300.0
    #: Bake time for remediation rollouts (short: single-device pushes).
    bake_seconds: float = 30.0
    #: Simulated seconds between detection and action.  Non-zero so the
    #: alert that *triggered* an action lands strictly before the
    #: rollout's health-gate window — otherwise the gate would reject
    #: every cure on the strength of its own symptom.
    triage_seconds: float = 1.0
    drain_severities: tuple[EventSeverity, ...] = (
        EventSeverity.CRITICAL,
        EventSeverity.MAJOR,
    )
    #: Deployment phases' failure containment for remediation pushes.
    max_failure_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if min(self.cooldown_seconds, self.bake_seconds, self.triage_seconds) < 0:
            raise ValueError("cooldown/bake/triage seconds must be non-negative")

    def select_action(self, *, source: str, attempts: int) -> str:
        """The action for a suspect device's next attempt.

        ``source`` is the detection channel (``"syslog"`` or
        ``"drift"``); ``attempts`` is how many actions the device has
        already consumed.  Syslog urgency always drains; drift gets one
        cheap golden re-push before escalating to full regeneration.
        """
        if source == "syslog":
            return ACTION_DRAIN
        if attempts == 0:
            return ACTION_RESTORE_GOLDEN
        return ACTION_REGEN_REPUSH
