"""A Django-template-language engine for config templates (paper Figure 9).

The paper renders vendor templates with Django's template language:
dynamic variables in ``{{ }}``, control flow in ``{% %}``, and static
content as plain text.  This is a from-scratch implementation of the
subset those templates use, plus the conveniences config authors expect:

* variables with dotted lookups — ``{{ agg.v6_prefix }}`` — resolving
  dict keys, object attributes, and list indices;
* filters — ``{{ pif.name|upper }}``, ``{{ peers|join:", " }}``,
  ``{{ mtu|default:9192 }}``;
* ``{% if %}`` / ``{% elif %}`` / ``{% else %}`` / ``{% endif %}`` with
  truthiness, comparisons (``==``, ``!=``), and ``not``;
* ``{% for x in seq %}`` / ``{% endfor %}`` with the ``forloop`` context
  (``counter``, ``counter0``, ``first``, ``last``);
* ``{# comments #}``.

Rendering never mutates the context.  Parse and render errors raise
:class:`~repro.common.errors.TemplateError` with a line number.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Sequence
from typing import Any

from repro.common.errors import TemplateError

__all__ = ["Template", "register_filter"]

_TOKEN_RE = re.compile(r"({{.*?}}|{%.*?%}|{#.*?#})", re.DOTALL)


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------

_FILTERS: dict[str, Callable[..., Any]] = {}


def register_filter(name: str, fn: Callable[..., Any] | None = None):
    """Register a template filter; usable as a decorator."""

    def add(inner: Callable[..., Any]) -> Callable[..., Any]:
        _FILTERS[name] = inner
        return inner

    if fn is not None:
        return add(fn)
    return add


register_filter("upper", lambda value: str(value).upper())
register_filter("lower", lambda value: str(value).lower())
register_filter("length", lambda value: len(value))
register_filter("first", lambda value: value[0] if value else "")
register_filter("last", lambda value: value[-1] if value else "")


@register_filter("default")
def _filter_default(value: Any, fallback: Any = "") -> Any:
    return fallback if value in (None, "") else value


@register_filter("join")
def _filter_join(value: Any, sep: str = ", ") -> str:
    return str(sep).join(str(item) for item in value)


@register_filter("ip_addr")
def _filter_ip_addr(value: Any) -> str:
    """Strip the prefix length: ``10.0.0.1/31`` → ``10.0.0.1``."""
    return str(value).split("/", 1)[0]


@register_filter("prefixlen")
def _filter_prefixlen(value: Any) -> str:
    """Extract the prefix length: ``10.0.0.1/31`` → ``31``."""
    text = str(value)
    return text.split("/", 1)[1] if "/" in text else ""


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

_LITERAL_RE = re.compile(
    r"""^(?P<str>'[^']*'|"[^"]*")$|^(?P<int>-?\d+)$|^(?P<bool>True|False|None)$"""
)


class _Expression:
    """A variable path with optional filters, e.g. ``agg.pifs|length``."""

    def __init__(self, text: str, line: int):
        self.text = text.strip()
        self.line = line
        parts = self._split_filters(self.text)
        self.path = parts[0].strip()
        self.filters: list[tuple[str, str | None]] = []
        for raw in parts[1:]:
            name, _, arg = raw.partition(":")
            name = name.strip()
            if name not in _FILTERS:
                raise TemplateError(f"unknown filter {name!r}", line=line)
            self.filters.append((name, arg.strip() or None))

    @staticmethod
    def _split_filters(text: str) -> list[str]:
        # Split on | outside quotes.
        parts, buf, quote = [], [], ""
        for ch in text:
            if quote:
                buf.append(ch)
                if ch == quote:
                    quote = ""
            elif ch in "'\"":
                quote = ch
                buf.append(ch)
            elif ch == "|":
                parts.append("".join(buf))
                buf = []
            else:
                buf.append(ch)
        parts.append("".join(buf))
        return parts

    def evaluate(self, context: dict[str, Any]) -> Any:
        value = _resolve(self.path, context, self.line)
        for name, arg in self.filters:
            fn = _FILTERS[name]
            try:
                if arg is None:
                    value = fn(value)
                else:
                    value = fn(value, _coerce_literal(arg))
            except TemplateError:
                raise
            except Exception as exc:
                raise TemplateError(
                    f"filter {name!r} failed on {self.text!r}: {exc}", line=self.line
                ) from None
        return value


def _coerce_literal(text: str) -> Any:
    match = _LITERAL_RE.match(text.strip())
    if match is None:
        return text
    if match.group("str") is not None:
        return match.group("str")[1:-1]
    if match.group("int") is not None:
        return int(match.group("int"))
    return {"True": True, "False": False, "None": None}[match.group("bool")]


def _resolve(path: str, context: dict[str, Any], line: int) -> Any:
    """Resolve a dotted path against the context; missing → None.

    Matches Django's forgiving lookup: a missing variable renders as
    empty rather than crashing a whole device config render.
    """
    literal = _LITERAL_RE.match(path)
    if literal is not None:
        return _coerce_literal(path)
    parts = path.split(".")
    if not parts or not parts[0]:
        raise TemplateError(f"empty variable name in {path!r}", line=line)
    current: Any = context
    for part in parts:
        if current is None:
            return None
        if isinstance(current, dict):
            current = current.get(part)
            continue
        if part.isdigit() and isinstance(current, (list, tuple)):
            index = int(part)
            current = current[index] if index < len(current) else None
            continue
        current = getattr(current, part, None)
    return current


class _Condition:
    """The boolean expression of an ``{% if %}``/``{% elif %}`` tag."""

    _CMP_RE = re.compile(r"^(.*?)\s*(==|!=)\s*(.*)$")

    def __init__(self, text: str, line: int):
        self.line = line
        text = text.strip()
        self.negated = False
        if text.startswith("not "):
            self.negated = True
            text = text[4:].strip()
        match = self._CMP_RE.match(text)
        if match:
            self.left = _Expression(match.group(1), line)
            self.op: str | None = match.group(2)
            self.right = _Expression(match.group(3), line)
        else:
            self.left = _Expression(text, line)
            self.op = None
            self.right = None

    def evaluate(self, context: dict[str, Any]) -> bool:
        left = self.left.evaluate(context)
        if self.op is None:
            result = bool(left)
        else:
            right = self.right.evaluate(context)  # type: ignore[union-attr]
            result = (left == right) if self.op == "==" else (left != right)
        return not result if self.negated else result


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------


class _Node:
    def render(self, context: dict[str, Any], out: list[str]) -> None:
        raise NotImplementedError


class _TextNode(_Node):
    def __init__(self, text: str):
        self.text = text

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        out.append(self.text)


class _VarNode(_Node):
    def __init__(self, expression: _Expression):
        self.expression = expression

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        value = self.expression.evaluate(context)
        out.append("" if value is None else str(value))


class _IfNode(_Node):
    def __init__(
        self,
        branches: list[tuple[_Condition | None, list[_Node]]],
    ):
        #: (condition, body) pairs; a None condition is the else branch.
        self.branches = branches

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        for condition, body in self.branches:
            if condition is None or condition.evaluate(context):
                for node in body:
                    node.render(context, out)
                return


class _ForNode(_Node):
    def __init__(self, var_name: str, iterable: _Expression, body: list[_Node], line: int):
        self.var_name = var_name
        self.iterable = iterable
        self.body = body
        self.line = line

    def render(self, context: dict[str, Any], out: list[str]) -> None:
        raw = self.iterable.evaluate(context)
        if raw is None:
            return
        if isinstance(raw, (str, bytes)) or not isinstance(raw, Sequence):
            try:
                items = list(raw)  # other iterables (dict views, generators)
            except TypeError:
                raise TemplateError(
                    f"{self.iterable.text!r} is not iterable", line=self.line
                ) from None
        else:
            items = list(raw)
        total = len(items)
        parent_forloop = context.get("forloop")
        for index, item in enumerate(items):
            inner = dict(context)
            inner[self.var_name] = item
            inner["forloop"] = {
                "counter": index + 1,
                "counter0": index,
                "first": index == 0,
                "last": index == total - 1,
                "length": total,
                "parentloop": parent_forloop,
            }
            for node in self.body:
                node.render(inner, out)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str):
        self.tokens = self._tokenize(source)
        self.position = 0

    @staticmethod
    def _tokenize(source: str) -> list[tuple[str, str, int]]:
        tokens = []
        line = 1
        for chunk in _TOKEN_RE.split(source):
            if not chunk:
                continue
            if chunk.startswith("{{") and chunk.endswith("}}"):
                tokens.append(("var", chunk[2:-2].strip(), line))
            elif chunk.startswith("{%") and chunk.endswith("%}"):
                tokens.append(("tag", chunk[2:-2].strip(), line))
            elif chunk.startswith("{#") and chunk.endswith("#}"):
                pass  # comments disappear entirely
            else:
                tokens.append(("text", chunk, line))
            line += chunk.count("\n")
        return tokens

    def parse(self, until: tuple[str, ...] = ()) -> tuple[list[_Node], str | None]:
        """Parse nodes until one of the ``until`` tags (or EOF)."""
        nodes: list[_Node] = []
        while self.position < len(self.tokens):
            kind, content, line = self.tokens[self.position]
            if kind == "text":
                self.position += 1
                nodes.append(_TextNode(content))
            elif kind == "var":
                self.position += 1
                nodes.append(_VarNode(_Expression(content, line)))
            else:  # tag
                keyword = content.split(None, 1)[0] if content else ""
                if keyword in until:
                    return nodes, content
                self.position += 1
                if keyword == "if":
                    nodes.append(self._parse_if(content[2:].strip(), line))
                elif keyword == "for":
                    nodes.append(self._parse_for(content[3:].strip(), line))
                else:
                    raise TemplateError(f"unknown tag {{% {content} %}}", line=line)
        if until:
            raise TemplateError(
                f"unexpected end of template; expected one of {list(until)}"
            )
        return nodes, None

    def _parse_if(self, condition_text: str, line: int) -> _IfNode:
        branches: list[tuple[_Condition | None, list[_Node]]] = []
        condition: _Condition | None = _Condition(condition_text, line)
        while True:
            body, terminator = self.parse(until=("elif", "else", "endif"))
            branches.append((condition, body))
            assert terminator is not None
            keyword = terminator.split(None, 1)[0]
            self.position += 1  # consume the terminator tag
            if keyword == "elif":
                condition = _Condition(terminator[4:].strip(), line)
            elif keyword == "else":
                condition = None
                body, terminator = self.parse(until=("endif",))
                branches.append((None, body))
                self.position += 1
                return _IfNode(branches)
            else:  # endif
                return _IfNode(branches)

    _FOR_RE = re.compile(r"^(\w+)\s+in\s+(.+)$")

    def _parse_for(self, spec: str, line: int) -> _ForNode:
        match = self._FOR_RE.match(spec)
        if match is None:
            raise TemplateError(f"malformed for tag: {spec!r}", line=line)
        body, _terminator = self.parse(until=("endfor",))
        self.position += 1  # consume endfor
        return _ForNode(match.group(1), _Expression(match.group(2), line), body, line)


class Template:
    """A compiled config template.

    >>> Template("hello {{ who }}").render({"who": "world"})
    'hello world'
    """

    def __init__(self, source: str, name: str = "<template>"):
        self.source = source
        self.name = name
        parser = _Parser(source)
        try:
            self._nodes, _ = parser.parse()
        except TemplateError as exc:
            raise TemplateError(f"{name}: {exc}") from None

    def render(self, context: dict[str, Any] | None = None) -> str:
        out: list[str] = []
        for node in self._nodes:
            node.render(dict(context or {}), out)
        return "".join(out)
