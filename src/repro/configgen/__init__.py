"""Config generation: FBNet objects → vendor-specific device configs.

Robotron splits a device configuration into two parts (paper section 5.2):
dynamic, vendor-agnostic *data* (names, IP addresses) derived from FBNet
objects and stored as a Thrift object per device, and static,
vendor-specific *templates* with special syntax and keywords.

* :mod:`repro.configgen.engine` — the Django-template-language engine that
  renders Figure 9's templates (``{{ var }}``, ``{% if %}``, ``{% for %}``);
* :mod:`repro.configgen.schema` — the Thrift-like config data schema of
  Figure 8, with validation and (de)serialization;
* :mod:`repro.configgen.derive` — per-device config data derived from
  FBNet objects;
* :mod:`repro.configgen.vendors` — the two vendor template sets;
* :mod:`repro.configgen.configerator` — the source-controlled template
  repository with peer review (the paper's Configerator [37]);
* :mod:`repro.configgen.generator` — the fetch → derive → render pipeline
  of Figure 10, plus the golden-config registry.
"""

from repro.configgen.engine import Template
from repro.configgen.generator import ConfigGenerator, DeviceConfig, IncrementalGenReport

__all__ = ["ConfigGenerator", "DeviceConfig", "IncrementalGenReport", "Template"]
