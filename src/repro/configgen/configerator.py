"""A source-controlled template/schema repository with peer review.

Robotron "stores config data schemas and templates in Configerator, a
source control repository, so that all schema and template changes are
peer-reviewed and unit-tested" (paper section 5.2, citing [37]).  This is
an in-process equivalent: every path carries a linear version history;
changes are *proposed* by an author and only land when *approved* by a
different reviewer; the full history and per-change diffs are retained.
"""

from __future__ import annotations

import difflib
import itertools
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigGenerationError

__all__ = ["Configerator", "PendingChange", "TemplateVersion"]

#: Where the built-in vendor template set lives on disk.
BUILTIN_TEMPLATE_DIR = Path(__file__).parent / "templates"


@dataclass(frozen=True)
class TemplateVersion:
    """One landed version of a repository path."""

    version: int
    content: str
    author: str
    reviewer: str
    note: str = ""


@dataclass
class PendingChange:
    """A proposed change awaiting review."""

    change_id: int
    path: str
    content: str
    author: str
    note: str = ""
    rejected: bool = False


class Configerator:
    """The template/schema repository.

    >>> repo = Configerator()
    >>> change = repo.propose("vendor1/banner.tmpl", "banner motd x", author="alice")
    >>> repo.approve(change.change_id, reviewer="bob")
    >>> repo.get("vendor1/banner.tmpl")
    'banner motd x'
    """

    def __init__(self, seed_builtin: bool = True):
        self._history: dict[str, list[TemplateVersion]] = {}
        self._pending: dict[int, PendingChange] = {}
        self._change_ids = itertools.count(1)
        if seed_builtin:
            self._seed_builtin_templates()

    def _seed_builtin_templates(self) -> None:
        """Import the shipped vendor template set as version 1 of each path."""
        for template_path in sorted(BUILTIN_TEMPLATE_DIR.rglob("*.tmpl")):
            repo_path = str(template_path.relative_to(BUILTIN_TEMPLATE_DIR))
            self._land(
                repo_path.replace("\\", "/"),
                template_path.read_text(),
                author="robotron",
                reviewer="initial-import",
                note="built-in template set",
            )

    # ------------------------------------------------------------------
    # Review workflow
    # ------------------------------------------------------------------

    def propose(self, path: str, content: str, author: str, note: str = "") -> PendingChange:
        """Propose new content for ``path``; returns the pending change."""
        if not author:
            raise ConfigGenerationError("template changes require an author")
        change = PendingChange(
            change_id=next(self._change_ids),
            path=path,
            content=content,
            author=author,
            note=note,
        )
        self._pending[change.change_id] = change
        return change

    def approve(self, change_id: int, reviewer: str) -> TemplateVersion:
        """Land a pending change.  The reviewer must differ from the author."""
        change = self._pending.get(change_id)
        if change is None or change.rejected:
            raise ConfigGenerationError(f"no pending change {change_id}")
        if reviewer == change.author:
            raise ConfigGenerationError(
                f"change {change_id}: author {change.author!r} cannot review "
                "their own change"
            )
        del self._pending[change_id]
        return self._land(
            change.path, change.content, change.author, reviewer, change.note
        )

    def reject(self, change_id: int, reviewer: str) -> None:
        """Reject a pending change; it never lands."""
        change = self._pending.get(change_id)
        if change is None:
            raise ConfigGenerationError(f"no pending change {change_id}")
        change.rejected = True
        del self._pending[change_id]

    def _land(
        self, path: str, content: str, author: str, reviewer: str, note: str
    ) -> TemplateVersion:
        history = self._history.setdefault(path, [])
        version = TemplateVersion(
            version=len(history) + 1,
            content=content,
            author=author,
            reviewer=reviewer,
            note=note,
        )
        history.append(version)
        return version

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, path: str, version: int | None = None) -> str:
        """Latest (or a specific) content of ``path``."""
        history = self._history.get(path)
        if not history:
            raise ConfigGenerationError(f"no template at {path!r}")
        if version is None:
            return history[-1].content
        if not 1 <= version <= len(history):
            raise ConfigGenerationError(f"{path}: no version {version}")
        return history[version - 1].content

    def exists(self, path: str) -> bool:
        return path in self._history

    def current_version(self, path: str) -> int:
        history = self._history.get(path)
        if not history:
            raise ConfigGenerationError(f"no template at {path!r}")
        return history[-1].version

    def history(self, path: str) -> list[TemplateVersion]:
        return list(self._history.get(path, []))

    def paths(self) -> list[str]:
        return sorted(self._history)

    def pending(self) -> list[PendingChange]:
        return list(self._pending.values())

    def diff(self, path: str, old_version: int, new_version: int) -> str:
        """Unified diff between two versions of ``path``."""
        old = self.get(path, old_version).splitlines(keepends=True)
        new = self.get(path, new_version).splitlines(keepends=True)
        return "".join(
            difflib.unified_diff(
                old, new, fromfile=f"{path}@{old_version}", tofile=f"{path}@{new_version}"
            )
        )
