"""Deriving per-device config data from FBNet objects (paper Figure 10).

For a given location, Robotron fetches all related objects from FBNet;
for each device it derives the device-specific data — "data for a device
interface depends on the FBNet circuit object the interface connects to"
— and stores it as a Thrift object.  This module performs that derivation
into the :data:`~repro.configgen.schema.CONFIG_SCHEMA` ``Device`` struct.
"""

from __future__ import annotations

from typing import Any

from repro.fbnet.base import Model
from repro.fbnet.models import (
    AclRule,
    AggregatedInterface,
    BgpV4Session,
    BgpV6Session,
    Cluster,
    Device,
    DrainState,
    FirewallPolicy,
    MplsTunnel,
    PhysicalInterface,
    V4Prefix,
    V6Prefix,
)
from repro.fbnet.query import Expr, Op, Or
from repro.fbnet.store import ObjectStore
from repro.configgen.schema import CONFIG_SCHEMA

__all__ = ["derive_device_data", "fetch_location_devices"]

#: Anycast address devices send syslog to (paper section 5.4.1).
SYSLOG_ANYCAST = "2401:db00:ffff::514"


def fetch_location_devices(store: ObjectStore, location: Model) -> list[Model]:
    """All devices at a location (Figure 10 step 1).

    A location may be a Pop/Datacenter (devices via their clusters plus
    role FKs) or a BackboneSite (routers homed at the site).
    """
    devices: dict[int, Model] = {}
    # Devices tied to the location through a role FK (PeeringRouter.pop,
    # BackboneRouter.site, DatacenterRouter.datacenter).
    for device in store.all(Device):
        for fk_name, fk in type(device)._meta.fk_fields.items():
            if fk_name in ("hardware_profile", "cluster"):
                continue
            if isinstance(location, fk.to) and device.__dict__.get(fk_name) == location.id:
                devices[device.id] = device
    # Devices in clusters homed at the location.
    for cluster in store.all(Cluster):
        for fk_name in ("pop", "datacenter"):
            if cluster.__dict__.get(fk_name) == location.id:
                for device in store.filter(Device, Expr("cluster", Op.EQUAL, cluster.id)):
                    devices[device.id] = device
    return sorted(devices.values(), key=lambda d: d.name)


def _agg_prefixes(store: ObjectStore, agg: Model) -> tuple[str | None, str | None]:
    v4 = store.first(V4Prefix, Expr("interface", Op.EQUAL, agg.id))
    v6 = store.first(V6Prefix, Expr("interface", Op.EQUAL, agg.id))
    return (v4.prefix if v4 else None, v6.prefix if v6 else None)


def _derive_aggs(store: ObjectStore, device: Model) -> list[dict[str, Any]]:
    aggs = []
    for agg in store.filter(AggregatedInterface, Expr("device", Op.EQUAL, device.id)):
        v4_prefix, v6_prefix = _agg_prefixes(store, agg)
        members = store.filter(
            PhysicalInterface, Expr("agg_interface", Op.EQUAL, agg.id)
        )
        aggs.append(
            {
                "name": agg.name,
                "number": agg.number,
                "v4_prefix": v4_prefix,
                "v6_prefix": v6_prefix,
                "mtu": agg.mtu,
                "description": agg.description,
                "lacp_fast": agg.lacp_fast,
                "pifs": [
                    {
                        "name": pif.name,
                        "description": pif.description,
                        "speed_mbps": pif.speed_mbps,
                    }
                    for pif in sorted(members, key=lambda p: p.name)
                ],
            }
        )
    return sorted(aggs, key=lambda a: a["number"])


def _derive_acls(store: ObjectStore, device: Model) -> list[dict[str, Any]]:
    """The firewall policies applying to this device's role."""
    policies = []
    for policy in store.all(FirewallPolicy):
        if policy.applies_to_role is not device.role:
            continue
        rules = store.filter(AclRule, Expr("policy", Op.EQUAL, policy.id))
        policies.append(
            {
                "name": policy.name,
                "entries": [
                    {
                        "sequence": rule.sequence,
                        "action": rule.action.value,
                        "protocol": rule.protocol,
                        "source": rule.source,
                        "destination": rule.destination,
                        "port": rule.port,
                        "description": rule.description,
                    }
                    for rule in sorted(rules, key=lambda r: r.sequence)
                ],
            }
        )
    return sorted(policies, key=lambda p: p["name"])


def _derive_bgp(store: ObjectStore, device: Model) -> dict[str, Any] | None:
    neighbors: list[dict[str, Any]] = []
    local_asn: int | None = None
    # Drained devices keep their sessions configured but shut down — the
    # drain/undrain procedure that keeps circuit work traffic-safe.
    drained = device.drain_state in (DrainState.DRAINING, DrainState.DRAINED)
    for model, family in ((BgpV4Session, "v4"), (BgpV6Session, "v6")):
        sessions = store.filter(
            model,
            Or(
                Expr("device", Op.EQUAL, device.id),
                Expr("peer_device", Op.EQUAL, device.id),
            ),
        )
        for session in sessions:
            # Each session object describes both endpoints; orient it
            # from this device's perspective (paper section 5.2: both
            # peers' configs are generated from the same objects).
            if session.device_id == device.id:
                local_ip, peer_ip = session.local_ip, session.peer_ip
                my_asn, peer_asn = session.local_asn, session.peer_asn
            else:
                local_ip, peer_ip = session.peer_ip, session.local_ip
                my_asn, peer_asn = session.peer_asn, session.local_asn
            if local_asn is None:
                local_asn = my_asn
            neighbors.append(
                {
                    "peer_ip": peer_ip,
                    "peer_asn": peer_asn,
                    "local_ip": local_ip,
                    "session_type": session.session_type.value,
                    "address_family": family,
                    "description": session.description,
                    "shutdown": drained,
                    "import_policy": (
                        session.related("import_policy").name
                        if session.import_policy_id is not None
                        else ""
                    ),
                }
            )
    if not neighbors:
        return None
    assert local_asn is not None
    return {
        "local_asn": local_asn,
        "router_id": device.loopback_v4 or "",
        "neighbors": sorted(neighbors, key=lambda n: n["peer_ip"]),
    }


def _derive_route_policies(
    store: ObjectStore, bgp: dict[str, Any] | None
) -> list[dict[str, Any]]:
    """The route policies referenced by this device's neighbors."""
    if bgp is None:
        return []
    from repro.fbnet.models import RoutePolicy

    wanted = sorted(
        {n["import_policy"] for n in bgp["neighbors"] if n["import_policy"]}
    )
    policies = []
    for name in wanted:
        policy = store.first(RoutePolicy, Expr("name", Op.EQUAL, name))
        if policy is None:
            continue
        policies.append(
            {
                "name": policy.name,
                "prefixes": list(policy.prefixes),
                "action": policy.action,
            }
        )
    return policies


def _derive_tunnels(store: ObjectStore, device: Model) -> list[dict[str, Any]]:
    tunnels = []
    for tunnel in store.filter(MplsTunnel, Expr("head_device", Op.EQUAL, device.id)):
        tail = tunnel.related("tail_device")
        assert tail is not None
        destination = tail.loopback_v6 or tail.loopback_v4 or ""
        tunnels.append(
            {
                "name": tunnel.name,
                "destination": destination,
                "bandwidth_mbps": tunnel.bandwidth_mbps,
            }
        )
    return sorted(tunnels, key=lambda t: t["name"])


def derive_device_data(
    store: ObjectStore,
    device: Model,
    *,
    syslog_collector: str = SYSLOG_ANYCAST,
) -> dict[str, Any]:
    """Derive one device's config data struct, validated against the schema."""
    data: dict[str, Any] = {
        "name": device.name,
        "vendor": device.vendor().value,
        "role": device.role.value,
        "system": {
            "hostname": device.name,
            "syslog_collector": syslog_collector,
            "loopback_v4": device.loopback_v4,
            "loopback_v6": device.loopback_v6,
            "domain": "example.net",
        },
        "aggs": _derive_aggs(store, device),
        "bgp": _derive_bgp(store, device),
        "tunnels": _derive_tunnels(store, device),
        "acls": _derive_acls(store, device),
    }
    data["route_policies"] = _derive_route_policies(store, data["bgp"])
    return CONFIG_SCHEMA.validate("Device", data)
