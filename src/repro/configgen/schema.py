"""A Thrift-like struct system for config data (paper Figure 8).

Config generation stores each device's dynamic, vendor-agnostic data "as a
Thrift object per device according to a pre-defined schema".  This module
provides the schema machinery — typed struct definitions with required /
optional fields and numeric field ids — plus validation, JSON round-trip,
and a compact binary wire encoding, and defines the concrete config data
schema used by the vendor templates (Figure 8's ``Device`` /
``AggregatedInterface`` / ``PhysicalInterface`` structs, extended with the
BGP, MPLS, and system sections real configs need).
"""

from __future__ import annotations

import struct as _struct
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigGenerationError

__all__ = [
    "CONFIG_SCHEMA",
    "FieldDef",
    "SchemaRegistry",
    "StructDef",
    "TBool",
    "TDouble",
    "TI32",
    "TI64",
    "TList",
    "TString",
    "TStructRef",
]


# ---------------------------------------------------------------------------
# Type system
# ---------------------------------------------------------------------------


class TType:
    """Base of all schema types."""

    code: int = 0  # wire type code

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        raise NotImplementedError

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        raise NotImplementedError

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        raise NotImplementedError


class _TBool(TType):
    code = 1

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if not isinstance(value, bool):
            raise ConfigGenerationError(f"{path}: expected bool, got {type(value).__name__}")

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        out.append(1 if value else 0)

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        return bool(data[offset]), offset + 1


class _TI32(TType):
    code = 2

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigGenerationError(f"{path}: expected i32, got {type(value).__name__}")
        if not -(2**31) <= value < 2**31:
            raise ConfigGenerationError(f"{path}: {value} out of i32 range")

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        out.extend(_struct.pack(">i", value))

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        return _struct.unpack_from(">i", data, offset)[0], offset + 4


class _TI64(TType):
    code = 3

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigGenerationError(f"{path}: expected i64, got {type(value).__name__}")
        if not -(2**63) <= value < 2**63:
            raise ConfigGenerationError(f"{path}: {value} out of i64 range")

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        out.extend(_struct.pack(">q", value))

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        return _struct.unpack_from(">q", data, offset)[0], offset + 8


class _TDouble(TType):
    code = 4

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigGenerationError(f"{path}: expected double, got {type(value).__name__}")

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        out.extend(_struct.pack(">d", float(value)))

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        return _struct.unpack_from(">d", data, offset)[0], offset + 8


class _TString(TType):
    code = 5

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if not isinstance(value, str):
            raise ConfigGenerationError(f"{path}: expected string, got {type(value).__name__}")

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        raw = value.encode("utf-8")
        out.extend(_struct.pack(">I", len(raw)))
        out.extend(raw)

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        (length,) = _struct.unpack_from(">I", data, offset)
        offset += 4
        return bytes(data[offset : offset + length]).decode("utf-8"), offset + length


class TList(TType):
    """A homogeneous list of another schema type."""

    code = 6

    def __init__(self, element: TType):
        self.element = element

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if not isinstance(value, list):
            raise ConfigGenerationError(f"{path}: expected list, got {type(value).__name__}")
        for index, item in enumerate(value):
            self.element.validate(item, f"{path}[{index}]", registry)

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        out.extend(_struct.pack(">I", len(value)))
        for item in value:
            self.element.encode(item, out, registry)

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        (count,) = _struct.unpack_from(">I", data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = self.element.decode(data, offset, registry)
            items.append(item)
        return items, offset


class TStructRef(TType):
    """A reference to a named struct in the registry (allows recursion)."""

    code = 7

    def __init__(self, name: str):
        self.name = name

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        registry.get(self.name).validate(value, path, registry)

    def encode(self, value: Any, out: bytearray, registry: SchemaRegistry) -> None:
        registry.get(self.name).encode(value, out, registry)

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[Any, int]:
        return registry.get(self.name).decode(data, offset, registry)


TBool = _TBool()
TI32 = _TI32()
TI64 = _TI64()
TDouble = _TDouble()
TString = _TString()


@dataclass(frozen=True)
class FieldDef:
    """One numbered struct field (``1: string name``)."""

    id: int
    name: str
    type: TType
    required: bool = False
    default: Any = None


class StructDef:
    """A named struct: ordered, numbered, typed fields.

    Values are plain dicts keyed by field name — like Thrift's dynamic
    (serialization-schema) representation.  Unknown keys are rejected so
    template data and schema cannot drift apart silently.
    """

    def __init__(self, name: str, fields: list[FieldDef]):
        ids = [f.id for f in fields]
        names = [f.name for f in fields]
        if len(set(ids)) != len(ids):
            raise ValueError(f"struct {name}: duplicate field ids")
        if len(set(names)) != len(names):
            raise ValueError(f"struct {name}: duplicate field names")
        self.name = name
        self.fields = sorted(fields, key=lambda f: f.id)
        self._by_name = {f.name: f for f in fields}
        self._by_id = {f.id: f for f in fields}

    def validate(self, value: Any, path: str, registry: SchemaRegistry) -> None:
        if not isinstance(value, dict):
            raise ConfigGenerationError(
                f"{path}: expected {self.name} struct (dict), got {type(value).__name__}"
            )
        unknown = set(value) - set(self._by_name)
        if unknown:
            raise ConfigGenerationError(
                f"{path}: unknown field(s) {sorted(unknown)} for struct {self.name}"
            )
        for field in self.fields:
            if field.name not in value or value[field.name] is None:
                if field.required:
                    raise ConfigGenerationError(
                        f"{path}.{field.name}: required field missing"
                    )
                continue
            field.type.validate(value[field.name], f"{path}.{field.name}", registry)

    def normalize(self, value: dict[str, Any]) -> dict[str, Any]:
        """Fill optional fields with their defaults (None if unspecified)."""
        result = dict(value)
        for field in self.fields:
            if field.name not in result:
                result[field.name] = field.default
        return result

    # -- binary wire format ---------------------------------------------------

    def encode(self, value: dict[str, Any], out: bytearray, registry: SchemaRegistry) -> None:
        present = [
            f for f in self.fields if value.get(f.name) is not None
        ]
        out.extend(_struct.pack(">H", len(present)))
        for field in present:
            out.extend(_struct.pack(">HB", field.id, field.type.code))
            field.type.encode(value[field.name], out, registry)

    def decode(self, data: memoryview, offset: int, registry: SchemaRegistry) -> tuple[dict, int]:
        (count,) = _struct.unpack_from(">H", data, offset)
        offset += 2
        result: dict[str, Any] = {f.name: f.default for f in self.fields}
        for _ in range(count):
            field_id, code = _struct.unpack_from(">HB", data, offset)
            offset += 3
            field = self._by_id.get(field_id)
            if field is None or field.type.code != code:
                raise ConfigGenerationError(
                    f"struct {self.name}: unknown/mistyped field id {field_id}"
                )
            value, offset = field.type.decode(data, offset, registry)
            result[field.name] = value
        return result, offset


class SchemaRegistry:
    """Named structs plus serialization entry points."""

    def __init__(self) -> None:
        self._structs: dict[str, StructDef] = {}

    def define(self, name: str, fields: list[FieldDef]) -> StructDef:
        if name in self._structs:
            raise ValueError(f"struct {name} already defined")
        struct_def = StructDef(name, fields)
        self._structs[name] = struct_def
        return struct_def

    def get(self, name: str) -> StructDef:
        try:
            return self._structs[name]
        except KeyError:
            raise ConfigGenerationError(f"unknown struct {name!r}") from None

    def validate(self, struct_name: str, value: dict[str, Any]) -> dict[str, Any]:
        """Validate ``value`` against ``struct_name``; returns it normalized."""
        struct_def = self.get(struct_name)
        struct_def.validate(value, struct_name, self)
        return self._normalize_deep(struct_def, value)

    def _normalize_deep(self, struct_def: StructDef, value: dict[str, Any]) -> dict[str, Any]:
        result = struct_def.normalize(value)
        for field in struct_def.fields:
            item = result.get(field.name)
            if item is None:
                continue
            if isinstance(field.type, TStructRef):
                result[field.name] = self._normalize_deep(self.get(field.type.name), item)
            elif isinstance(field.type, TList) and isinstance(field.type.element, TStructRef):
                element = self.get(field.type.element.name)
                result[field.name] = [self._normalize_deep(element, x) for x in item]
        return result

    def dumps(self, struct_name: str, value: dict[str, Any]) -> bytes:
        """Serialize to the compact binary wire format (with validation)."""
        normalized = self.validate(struct_name, value)
        out = bytearray()
        self.get(struct_name).encode(normalized, out, self)
        return bytes(out)

    def loads(self, struct_name: str, wire: bytes) -> dict[str, Any]:
        """Deserialize from the binary wire format (with validation)."""
        value, offset = self.get(struct_name).decode(memoryview(wire), 0, self)
        if offset != len(wire):
            raise ConfigGenerationError(
                f"struct {struct_name}: {len(wire) - offset} trailing bytes"
            )
        return self.validate(struct_name, value)


# ---------------------------------------------------------------------------
# The concrete config data schema (Figure 8, extended)
# ---------------------------------------------------------------------------

CONFIG_SCHEMA = SchemaRegistry()

CONFIG_SCHEMA.define(
    "PhysicalInterface",
    [
        FieldDef(1, "name", TString, required=True),
        FieldDef(2, "description", TString, default=""),
        FieldDef(3, "speed_mbps", TI32, default=10_000),
    ],
)

CONFIG_SCHEMA.define(
    "AggregatedInterface",
    [
        FieldDef(1, "name", TString, required=True),
        FieldDef(2, "number", TI32, required=True),
        FieldDef(3, "v4_prefix", TString),
        FieldDef(4, "v6_prefix", TString),
        FieldDef(5, "pifs", TList(TStructRef("PhysicalInterface")), default=[]),
        FieldDef(6, "mtu", TI32, default=9192),
        FieldDef(7, "description", TString, default=""),
        FieldDef(8, "lacp_fast", TBool, default=True),
    ],
)

CONFIG_SCHEMA.define(
    "BgpNeighbor",
    [
        FieldDef(1, "peer_ip", TString, required=True),
        FieldDef(2, "peer_asn", TI64, required=True),
        FieldDef(3, "local_ip", TString, required=True),
        FieldDef(4, "session_type", TString, required=True),  # "ibgp"/"ebgp"
        FieldDef(5, "address_family", TString, required=True),  # "v4"/"v6"
        FieldDef(6, "description", TString, default=""),
        # Drained devices keep their neighbor stanzas but shut them down
        # (the drain/undrain procedure of paper section 1).
        FieldDef(7, "shutdown", TBool, default=False),
        # Name of the import policy filtering this neighbor (section 8's
        # cherry-picked-prefixes case); empty = unfiltered.
        FieldDef(8, "import_policy", TString, default=""),
    ],
)

CONFIG_SCHEMA.define(
    "RoutePolicyConfig",
    [
        FieldDef(1, "name", TString, required=True),
        FieldDef(2, "prefixes", TList(TString), default=[]),
        FieldDef(3, "action", TString, default="permit"),
    ],
)

CONFIG_SCHEMA.define(
    "AclEntry",
    [
        FieldDef(1, "sequence", TI32, required=True),
        FieldDef(2, "action", TString, required=True),  # "permit"/"deny"
        FieldDef(3, "protocol", TString, default="any"),
        FieldDef(4, "source", TString, default="any"),
        FieldDef(5, "destination", TString, default="any"),
        FieldDef(6, "port", TI32),
        FieldDef(7, "description", TString, default=""),
    ],
)

CONFIG_SCHEMA.define(
    "AclPolicy",
    [
        FieldDef(1, "name", TString, required=True),
        FieldDef(2, "entries", TList(TStructRef("AclEntry")), default=[]),
    ],
)

CONFIG_SCHEMA.define(
    "BgpConfig",
    [
        FieldDef(1, "local_asn", TI64, required=True),
        FieldDef(2, "router_id", TString, default=""),
        FieldDef(3, "neighbors", TList(TStructRef("BgpNeighbor")), default=[]),
    ],
)

CONFIG_SCHEMA.define(
    "MplsTunnelConfig",
    [
        FieldDef(1, "name", TString, required=True),
        FieldDef(2, "destination", TString, required=True),
        FieldDef(3, "bandwidth_mbps", TI32, default=0),
    ],
)

CONFIG_SCHEMA.define(
    "SystemConfig",
    [
        FieldDef(1, "hostname", TString, required=True),
        FieldDef(2, "syslog_collector", TString, default=""),
        FieldDef(3, "loopback_v4", TString),
        FieldDef(4, "loopback_v6", TString),
        FieldDef(5, "domain", TString, default=""),
    ],
)

CONFIG_SCHEMA.define(
    "Device",
    [
        FieldDef(1, "aggs", TList(TStructRef("AggregatedInterface")), default=[]),
        FieldDef(2, "name", TString, required=True),
        FieldDef(3, "vendor", TString, required=True),
        FieldDef(4, "role", TString, default=""),
        FieldDef(5, "system", TStructRef("SystemConfig"), required=True),
        FieldDef(6, "bgp", TStructRef("BgpConfig")),
        FieldDef(7, "tunnels", TList(TStructRef("MplsTunnelConfig")), default=[]),
        FieldDef(8, "acls", TList(TStructRef("AclPolicy")), default=[]),
        FieldDef(9, "route_policies", TList(TStructRef("RoutePolicyConfig")), default=[]),
    ],
)
