"""The config generation pipeline: fetch → derive → render (paper Figure 10).

For each device the generator derives the vendor-agnostic data struct from
FBNet, picks the device's vendor template set from Configerator, renders
each section, and concatenates them into a full device config.  The
generated ("golden") configs are registered so the config monitor can
detect drift (section 5.4.3), and every generation records which FBNet
design state it came from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro import obs
from repro.common.errors import ConfigGenerationError
from repro.fbnet.base import Model
from repro.fbnet.store import ObjectStore
from repro.configgen.configerator import Configerator
from repro.configgen.derive import derive_device_data, fetch_location_devices
from repro.configgen.engine import Template
from repro.configgen.schema import CONFIG_SCHEMA

__all__ = ["ConfigGenerator", "DeviceConfig"]

#: Config sections, rendered and concatenated in this order.
SECTIONS = ("system", "acl", "policy", "interfaces", "bgp", "mpls")


@dataclass(frozen=True)
class DeviceConfig:
    """One generated device configuration."""

    device_name: str
    vendor: str
    text: str
    #: The vendor-agnostic data struct the config was rendered from.
    data: dict[str, Any] = field(repr=False, default_factory=dict)
    #: FBNet journal position at generation time — used to detect stale
    #: configs (the section 8 war story).
    design_position: int = 0

    @property
    def sha(self) -> str:
        return hashlib.sha256(self.text.encode()).hexdigest()

    def lines(self) -> list[str]:
        return self.text.splitlines()


class ConfigGenerator:
    """Generates vendor-specific configs from FBNet Desired state."""

    def __init__(self, store: ObjectStore, configerator: Configerator | None = None):
        self._store = store
        self.configerator = configerator or Configerator()
        # Compiled template cache, invalidated per-path on version bumps.
        self._compiled: dict[tuple[str, int], Template] = {}
        #: Golden configs by device name — what monitoring compares against.
        self.golden: dict[str, DeviceConfig] = {}

    # ------------------------------------------------------------------
    # Template access
    # ------------------------------------------------------------------

    def _template(self, vendor: str, section: str) -> Template:
        path = f"{vendor}/{section}.tmpl"
        if not self.configerator.exists(path):
            raise ConfigGenerationError(
                f"no template for vendor {vendor!r} section {section!r} "
                f"(expected {path} in Configerator)"
            )
        version = self.configerator.current_version(path)
        key = (path, version)
        template = self._compiled.get(key)
        if template is None:
            obs.counter("configgen.template_cache", result="miss").inc()
            template = Template(self.configerator.get(path), name=path)
            self._compiled[key] = template
        else:
            obs.counter("configgen.template_cache", result="hit").inc()
        return template

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate_device(self, device: Model) -> DeviceConfig:
        """Generate (and register as golden) one device's full config."""
        started = perf_counter() if obs.enabled() else None
        data = derive_device_data(self._store, device)
        # Wire round-trip: the data struct is what crosses between the
        # derivation and rendering stages in the paper's pipeline.
        wire = CONFIG_SCHEMA.dumps("Device", data)
        data = CONFIG_SCHEMA.loads("Device", wire)
        vendor = data["vendor"]
        parts = []
        for section in SECTIONS:
            rendered = self._template(vendor, section).render({"device": data})
            if rendered.strip():
                parts.append(rendered.rstrip("\n"))
        config = DeviceConfig(
            device_name=device.name,
            vendor=vendor,
            text="\n".join(parts) + "\n",
            data=data,
            design_position=self._store.journal_position,
        )
        self.golden[device.name] = config
        obs.counter("configgen.render", vendor=vendor).inc()
        if started is not None:
            obs.histogram("configgen.render.latency", vendor=vendor).observe(
                perf_counter() - started
            )
        return config

    def generate_location(self, location: Model) -> dict[str, DeviceConfig]:
        """Generate configs for every device at a location (Figure 10)."""
        with obs.span("configgen.generate", location=location.name):
            return {
                device.name: self.generate_device(device)
                for device in fetch_location_devices(self._store, location)
            }

    def generate_devices(self, devices: list[Model]) -> dict[str, DeviceConfig]:
        """Generate configs for an explicit device list."""
        with obs.span("configgen.generate", devices=len(devices)):
            return {device.name: self.generate_device(device) for device in devices}

    # ------------------------------------------------------------------
    # Staleness detection (section 8: "Stale Configs")
    # ------------------------------------------------------------------

    def is_stale(self, config: DeviceConfig) -> bool:
        """Whether FBNet design state changed since ``config`` was generated.

        The paper recounts an outage from deploying configs generated
        before a later design change; deployment uses this check to warn.
        """
        return config.design_position < self._store.journal_position
