"""The config generation pipeline: fetch → derive → render (paper Figure 10).

For each device the generator derives the vendor-agnostic data struct from
FBNet, picks the device's vendor template set from Configerator, renders
each section, and concatenates them into a full device config.  The
generated ("golden") configs are registered so the config monitor can
detect drift (section 5.4.3), and every generation records which FBNet
design state it came from.

Generation is *change-aware* (section 5.3/8): every config carries the
:class:`~repro.fbnet.changelog.ReadSet` of its derivation plus the
template versions it rendered with, and :meth:`ConfigGenerator.
regenerate_dirty` walks the journal since each config's generation
position to regenerate only the devices an FBNet mutation (or a template
bump) actually affects.  The incremental output is byte-identical to a
full regeneration because every read the derivation performs is captured
at the store layer — a device whose read-set matches no journal record
cannot render differently.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property, partial
from time import perf_counter, sleep
from typing import Any, Callable

from repro import faults, obs, parallel
from repro.obs import flight
from repro.common.errors import ConfigGenerationError
from repro.fbnet.base import Model
from repro.fbnet.changelog import ReadSet
from repro.fbnet.models.device import Device
from repro.fbnet.store import ChangeRecord, ObjectStore
from repro.configgen.configerator import Configerator
from repro.configgen.derive import derive_device_data, fetch_location_devices
from repro.configgen.engine import Template
from repro.configgen.schema import CONFIG_SCHEMA

__all__ = ["ConfigGenerator", "DeviceConfig", "IncrementalGenReport"]

#: Config sections, rendered and concatenated in this order.
SECTIONS = ("system", "acl", "policy", "interfaces", "bgp", "mpls")


@dataclass(frozen=True)
class DeviceConfig:
    """One generated device configuration."""

    device_name: str
    vendor: str
    text: str
    #: The vendor-agnostic data struct the config was rendered from.
    data: dict[str, Any] = field(repr=False, default_factory=dict)
    #: FBNet journal position at generation time — used to detect stale
    #: configs (the section 8 war story).
    design_position: int = 0
    #: Everything the derivation read from FBNet; ``None`` when the config
    #: predates read tracking (treated as always-dirty).
    read_set: ReadSet | None = field(default=None, repr=False, compare=False)
    #: ``template path -> Configerator version`` rendered with, so template
    #: bumps dirty exactly the devices that used the bumped template.
    template_versions: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @cached_property
    def sha(self) -> str:
        # cached_property stores straight into the instance __dict__, so the
        # hash of the (immutable) text is computed at most once even though
        # the dataclass is frozen.
        return hashlib.sha256(self.text.encode()).hexdigest()

    def lines(self) -> list[str]:
        return self.text.splitlines()


@dataclass
class IncrementalGenReport:
    """Outcome of one :meth:`ConfigGenerator.regenerate_dirty` pass."""

    #: Journal position the pass caught golden configs up to.
    position: int = 0
    #: Journal records examined across all devices.
    records_scanned: int = 0
    #: Device name -> why it was regenerated (``"new"``, ``"untracked"``,
    #: ``"template"``, or ``"<model>#<id> <op>"`` for a journal match).
    dirty: dict[str, str] = field(default_factory=dict)
    #: Device name -> the flight-recorder change id of the journal record
    #: that dirtied it ("" when the reason was not a journal match, or the
    #: matching record was written outside any change context).
    origins: dict[str, str] = field(default_factory=dict)
    #: Freshly generated configs, by device name (the dirty subset).
    regenerated: dict[str, DeviceConfig] = field(default_factory=dict)
    #: Devices whose golden config was still current.
    skipped: list[str] = field(default_factory=list)
    #: Golden entries dropped because the device left the design.
    retired: list[str] = field(default_factory=list)

    @property
    def devices_total(self) -> int:
        return len(self.regenerated) + len(self.skipped)


class ConfigGenerator:
    """Generates vendor-specific configs from FBNet Desired state."""

    def __init__(
        self,
        store: ObjectStore,
        configerator: Configerator | None = None,
        *,
        io_latency: float = 0.0,
    ):
        self._store = store
        self.configerator = configerator or Configerator()
        #: Emulated per-device management-plane round trip (wall seconds
        #: slept inside each render).  At fleet scale the paper's
        #: generation cost is dominated by per-device I/O; the worker
        #: pool exists to overlap exactly this, and the parallel
        #: benchmark sets it to a measured multiple of the render cost.
        self.io_latency = float(io_latency)
        # Compiled template cache: path -> (version, compiled template).
        # Keyed by path alone so a Configerator version bump *replaces* the
        # superseded entry instead of accumulating one entry per version.
        self._compiled: dict[str, tuple[int, Template]] = {}
        #: Golden configs by device name — what monitoring compares against.
        self.golden: dict[str, DeviceConfig] = {}
        # Called with each batch of freshly generated configs (ConfMon uses
        # this to point drift sweeps at just-regenerated devices).
        self._subscribers: list[Callable[[list[DeviceConfig]], None]] = []

    # ------------------------------------------------------------------
    # Regeneration announcements
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[[list[DeviceConfig]], None]) -> None:
        """Register a listener for freshly generated config batches."""
        self._subscribers.append(listener)

    def _announce(self, configs: list[DeviceConfig]) -> None:
        if not configs:
            return
        for listener in self._subscribers:
            listener(configs)

    # ------------------------------------------------------------------
    # Template access
    # ------------------------------------------------------------------

    def _template(self, vendor: str, section: str) -> tuple[Template, int]:
        """The compiled template for one section, plus its current version."""
        path = f"{vendor}/{section}.tmpl"
        if not self.configerator.exists(path):
            raise ConfigGenerationError(
                f"no template for vendor {vendor!r} section {section!r} "
                f"(expected {path} in Configerator)"
            )
        version = self.configerator.current_version(path)
        cached = self._compiled.get(path)
        if cached is not None and cached[0] == version:
            obs.counter("configgen.template_cache", result="hit").inc()
            return cached[1], version
        obs.counter("configgen.template_cache", result="miss").inc()
        template = Template(self.configerator.get(path), name=path)
        self._compiled[path] = (version, template)
        return template, version

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate_device(self, device: Model) -> DeviceConfig:
        """Generate (and register as golden) one device's full config."""
        config = self._generate(device)
        self._announce([config])
        return config

    def _generate(self, device: Model) -> DeviceConfig:
        config = self._render(device)
        self.golden[device.name] = config
        return config

    def _render(self, device: Model) -> DeviceConfig:
        """Fetch → derive → render one device; pure (no generator state).

        This is the unit of work the pool fans out: it reads the store
        (thread-local read tracking), renders from the pre-compiled
        template cache, and returns the config without touching
        ``self.golden`` — the coordinator registers results in task-key
        order so the outcome is identical at any worker count.
        """
        if faults.should_inject("configgen.render", device=device.name):
            raise ConfigGenerationError(f"{device.name}: injected render failure")
        if self.io_latency > 0.0:
            sleep(self.io_latency)
        started = perf_counter() if obs.enabled() else None
        # Capture the generation position *before* deriving: any record
        # committed mid-derivation must be re-examined by the next
        # regenerate_dirty pass, not silently assumed incorporated.
        position = self._store.journal_position
        read_set = ReadSet()
        # The device object itself is handed in, not read through the store
        # inside the tracked block — record it explicitly.
        if device.id is not None:
            read_set.add_object(type(device).__name__, device.id)
        with self._store.track_reads(read_set):
            data = derive_device_data(self._store, device)
        # Wire round-trip: the data struct is what crosses between the
        # derivation and rendering stages in the paper's pipeline.
        wire = CONFIG_SCHEMA.dumps("Device", data)
        data = CONFIG_SCHEMA.loads("Device", wire)
        vendor = data["vendor"]
        parts = []
        template_versions: dict[str, int] = {}
        for section in SECTIONS:
            template, version = self._template(vendor, section)
            template_versions[f"{vendor}/{section}.tmpl"] = version
            rendered = template.render({"device": data})
            if rendered.strip():
                parts.append(rendered.rstrip("\n"))
        config = DeviceConfig(
            device_name=device.name,
            vendor=vendor,
            text="\n".join(parts) + "\n",
            data=data,
            design_position=position,
            read_set=read_set,
            template_versions=template_versions,
        )
        obs.counter("configgen.render", vendor=vendor).inc()
        # Against a sharded store, also attribute the render to the
        # device's partition — imbalance here mirrors store imbalance.
        shard_of = getattr(self._store, "shard_of", None)
        if shard_of is not None:
            obs.counter("configgen.render.shard", shard=shard_of(device)).inc()
        if started is not None:
            obs.histogram("configgen.render.latency", vendor=vendor).observe(
                perf_counter() - started
            )
        return config

    def _warm_templates(self, devices: list[Model]) -> None:
        """Pre-compile every template a batch will use, on the coordinator.

        Workers then only *read* the compiled-template cache, so the
        ``configgen.template_cache`` hit/miss counters (and the cache
        itself) don't depend on which worker renders first.
        """
        for vendor in sorted({device.vendor().value for device in devices}):
            for section in SECTIONS:
                self._template(vendor, section)

    def _generate_batch(self, devices: list[Model]) -> dict[str, DeviceConfig]:
        """Render a device batch across the worker pool, deterministically.

        The renders fan out (they are pure); everything order-sensitive
        stays on the coordinator: template warm-up, golden registration
        in task-key order, and the first-keyed error raise.  A failed
        batch registers nothing — all-or-nothing, unlike the serial
        per-device path, so partial state can't differ by worker count.
        """
        if not devices:
            return {}
        self._warm_templates(devices)
        results = parallel.run_tasks(
            [(device.name, partial(self._render, device)) for device in devices],
            section="configgen.render",
            cancel_on_error=True,
        )
        parallel.raise_first_error(results)
        configs: dict[str, DeviceConfig] = {}
        for result in results:
            config = result.value
            configs[config.device_name] = config
            self.golden[config.device_name] = config
        return configs

    def generate_location(self, location: Model) -> dict[str, DeviceConfig]:
        """Generate configs for every device at a location (Figure 10)."""
        with obs.span("configgen.generate", location=location.name):
            configs = self._generate_batch(
                fetch_location_devices(self._store, location)
            )
        self._flight_renders(configs)
        self._announce(list(configs.values()))
        return configs

    def generate_devices(self, devices: list[Model]) -> dict[str, DeviceConfig]:
        """Generate configs for an explicit device list."""
        with obs.span("configgen.generate", devices=len(devices)):
            configs = self._generate_batch(list(devices))
        self._flight_renders(configs)
        self._announce(list(configs.values()))
        return configs

    def _flight_renders(self, configs: dict[str, DeviceConfig]) -> None:
        """Record full (non-incremental) renders under the active change.

        Only when a change context is open: an unattributed bulk render
        (benchmarks, cold provisioning without intent) would flood the
        ring without ever being queryable by change id.
        """
        if flight.current_change() is None:
            return
        for name, config in configs.items():
            flight.record(
                "configgen.render",
                phase="generation",
                device=name,
                verdict="rendered",
                detail=config.sha[:12],
            )

    # ------------------------------------------------------------------
    # Incremental regeneration (the change-propagation pipeline)
    # ------------------------------------------------------------------

    def regenerate_dirty(
        self, devices: list[Model] | None = None
    ) -> IncrementalGenReport:
        """Regenerate only the devices invalidated since their last generation.

        For each device the journal slice since its golden config's
        ``design_position`` is checked against the config's read-set; a
        device is dirty when a record matches, when a template it rendered
        with was bumped, when it has no golden config yet, or when its
        golden config predates read tracking.  Clean devices keep their
        golden config byte-for-byte — the incremental result is identical
        to a full regeneration because the read-set is a superset of the
        derivation's true dependencies.
        """
        if devices is None:
            devices = self._store.all(Device)
            retire_missing = True
        else:
            retire_missing = False
        report = IncrementalGenReport()
        # One journal slice per distinct generation position: most devices
        # share a position after a full generation pass, so the slices are
        # fetched O(distinct positions), not O(devices).
        slices: dict[int, list[ChangeRecord]] = {}
        dirty_devices: list[tuple[Model, str]] = []
        with obs.span("configgen.regenerate_dirty", devices=len(devices)):
            for device in devices:
                found = self._dirty_reason(device, slices, report)
                if found is None:
                    report.skipped.append(device.name)
                    obs.counter("configgen.skipped").inc()
                else:
                    reason, origin = found
                    report.dirty[device.name] = reason
                    report.origins[device.name] = origin
                    dirty_devices.append((device, reason))
                    obs.counter("configgen.dirty").inc()
            regenerated = self._generate_batch(
                [device for device, _reason in dirty_devices]
            )
            if regenerated:
                report.regenerated.update(regenerated)
                obs.counter("configgen.regenerated").inc(len(regenerated))
                # Each regeneration is attributed to the change whose
                # journal record dirtied the device — the link from the
                # model layer to the generation layer in the lineage.
                for device, reason in dirty_devices:
                    if device.name not in regenerated:
                        continue
                    origin = report.origins.get(device.name, "")
                    flight.record(
                        "configgen.regen",
                        phase="generation",
                        change_id=origin or None,
                        device=device.name,
                        verdict="regenerated",
                        detail=reason,
                    )
            if retire_missing:
                present = {device.name for device in devices}
                for name in sorted(set(self.golden) - present):
                    del self.golden[name]
                    report.retired.append(name)
        report.position = self._store.journal_position
        self._announce(list(report.regenerated.values()))
        return report

    def _dirty_reason(
        self,
        device: Model,
        slices: dict[int, list[ChangeRecord]],
        report: IncrementalGenReport,
    ) -> tuple[str, str] | None:
        """Why ``device`` needs regeneration — ``(reason, origin change id)``
        — or ``None`` if still current."""
        golden = self.golden.get(device.name)
        if golden is None:
            return "new", ""
        if golden.read_set is None:
            return "untracked", ""
        for path, version in golden.template_versions.items():
            if self.configerator.current_version(path) != version:
                return "template", ""
        records = slices.get(golden.design_position)
        if records is None:
            records = self._store.journal_since(golden.design_position)
            slices[golden.design_position] = records
        report.records_scanned += len(records)
        match = golden.read_set.first_match(records)
        if match is not None:
            return f"{match.model}#{match.obj_id} {match.op.value}", match.change_id
        return None

    # ------------------------------------------------------------------
    # Staleness detection (section 8: "Stale Configs")
    # ------------------------------------------------------------------

    def is_stale(self, config: DeviceConfig) -> bool:
        """Whether FBNet design state changed since ``config`` was generated.

        The paper recounts an outage from deploying configs generated
        before a later design change; deployment uses this check to warn.
        A position *ahead* of the store's journal is stale too: after a
        replica promotion loses the journal tail, a config generated
        against the lost tail can no longer be trusted.
        """
        return config.design_position != self._store.journal_position
