"""Retry, backoff, and circuit-breaking policies for the chaos layer.

:class:`RetryPolicy` is how call sites survive the faults that
:mod:`repro.faults.plan` injects: bounded attempts, exponential backoff
with deterministic jitter, and an overall timeout — all measured on the
*simulated* clock, never wall time, so chaos runs stay reproducible and
fast.  :class:`CircuitBreaker` is the phased-deployment guard from the
paper's section 5.3.2: once the failure ratio of a phase exceeds the
threshold, the breaker opens and the rest of the rollout is abandoned to
contain the blast radius.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any, TypeVar

__all__ = ["CircuitBreaker", "GiveUp", "RetryPolicy"]

T = TypeVar("T")


class GiveUp(Exception):
    """Raised by :meth:`RetryPolicy.execute` when every attempt failed.

    The last underlying exception is chained as ``__cause__`` (and kept
    on ``.last_error``) so callers can re-raise or translate it.
    """

    def __init__(self, message: str, last_error: BaseException | None = None):
        super().__init__(message)
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """How a call site retries transient failures.

    * ``max_attempts`` — total tries, including the first (>= 1);
    * ``base_delay``/``multiplier``/``max_delay`` — exponential backoff:
      attempt *n* (0-based retry index) sleeps
      ``min(base_delay * multiplier**n, max_delay)`` simulated seconds;
    * ``jitter`` — fraction of each delay randomized (*equal/bounded
      jitter* over ``[1-jitter, 1+jitter]`` — not AWS-style "full
      jitter", which draws from ``[0, delay]``), drawn from a per-execute
      RNG seeded with ``jitter_seed`` so schedules are deterministic;
      must lie in ``[0, 1]`` so the band can never go negative;
    * ``timeout`` — give up once the *next* backoff would push total
      simulated elapsed time past this bound (None = unbounded).
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0
    timeout: float | None = None
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            # jitter > 1 would make the [1-jitter, 1+jitter] band dip
            # below zero and produce negative backoff delays.
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, retry_index: int, rng: random.Random | None = None) -> float:
        """The delay before retry ``retry_index`` (0-based)."""
        delay = min(self.base_delay * self.multiplier**retry_index, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def delays(self) -> Iterator[float]:
        """The full deterministic backoff schedule (one per retry)."""
        rng = random.Random(self.jitter_seed)
        for index in range(self.max_attempts - 1):
            yield self.backoff(index, rng)

    def execute(
        self,
        fn: Callable[[], T],
        *,
        retryable: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] | None = None,
        clock: Any | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Call ``fn`` under this policy.

        ``sleep`` advances simulated time between attempts (e.g. a
        scheduler's ``run_for`` or a clock's ``advance``); ``clock``
        (anything with ``.now``) enforces ``timeout``.  ``on_retry`` is
        invoked before each backoff with (retry_index, error) — the hook
        used to bump ``rpc.retry``-style counters.  Raises
        :class:`GiveUp` after the final failure.
        """
        rng = random.Random(self.jitter_seed)
        started = clock.now if clock is not None else None
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retryable as exc:
                last = exc
                if attempt == self.max_attempts - 1:
                    break
                delay = self.backoff(attempt, rng)
                if (
                    self.timeout is not None
                    and started is not None
                    and clock.now - started + delay > self.timeout
                ):
                    raise GiveUp(
                        f"timeout after {attempt + 1} attempt(s) "
                        f"({self.timeout:.1f}s budget): {exc}",
                        last_error=exc,
                    ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if sleep is not None:
                    sleep(delay)
        raise GiveUp(
            f"gave up after {self.max_attempts} attempt(s): {last}", last_error=last
        ) from last


class CircuitBreaker:
    """Opens when the observed failure ratio crosses a threshold.

    Mirrors the paper's phased-deployment containment: each push records
    a success or failure; once at least ``min_calls`` outcomes are in and
    the failure ratio exceeds ``max_failure_ratio``, the breaker opens
    and the caller aborts the remaining work.  When ``total`` is given
    (e.g. the planned size of a deployment phase) the ratio denominator
    is that plan, so one early failure in a large phase does not trip it.
    """

    def __init__(
        self,
        max_failure_ratio: float,
        *,
        total: int | None = None,
        min_calls: int = 1,
    ):
        if not 0.0 <= max_failure_ratio < 1.0:
            raise ValueError("max_failure_ratio must be in [0, 1)")
        if min_calls < 1:
            raise ValueError("min_calls must be >= 1")
        if total is not None and total < 1:
            raise ValueError("total must be >= 1 (or None)")
        self.max_failure_ratio = max_failure_ratio
        self.min_calls = min_calls
        self.total = total
        self.calls = 0
        self.failures = 0

    def record_success(self) -> None:
        self.calls += 1

    def record_failure(self) -> None:
        self.calls += 1
        self.failures += 1

    @property
    def failure_ratio(self) -> float:
        denominator = self.total if self.total is not None else self.calls
        return self.failures / denominator if denominator else 0.0

    @property
    def open(self) -> bool:
        return (
            self.calls >= self.min_calls
            and self.failure_ratio > self.max_failure_ratio
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return (
            f"<CircuitBreaker {state} {self.failures}/{self.calls} "
            f"(limit {self.max_failure_ratio:.0%})>"
        )
