"""repro.faults — deterministic fault injection and retry policies.

The paper's evaluation (sections 4.3.3 and 6) leans on Robotron surviving
component failure: lagging replica databases get disabled, masters get
promoted, service requests redirect to surviving replicas, and phased
deployments contain blast radius.  This package makes those claims
*testable* instead of anecdotal: a process-global, seed-deterministic
:class:`~repro.faults.plan.FaultPlan` injects failures at named points
across the RPC, replication, store, deployment, and monitoring layers,
while :class:`~repro.faults.retry.RetryPolicy` and
:class:`~repro.faults.retry.CircuitBreaker` give the call sites the
recovery machinery the paper assumes.

Usage::

    from repro import faults

    plan = faults.FaultPlan(seed=1337)
    plan.inject("rpc.call", probability=0.25, times=10)
    plan.inject("deploy.push", device="pop01.c01.psw1")
    with plan.installed():
        run_chaos_experiment()
    assert plan.injected_count("rpc.call") > 0

Injection points wired in this reproduction:

========================  =====================================================
``rpc.call``              :meth:`ServiceReplica.handle` fails the request
``replication.apply``     a shipped batch is delayed (lag spike) before apply
``store.commit_listener`` commit-listener delivery is deferred to a later commit
``replication.promote``   a promotion candidate is rejected
``deploy.push``           a per-device config push raises ``CommitError``
``monitoring.collect``    an engine poll raises ``MonitoringError``
========================  =====================================================

Chaos runs are observable through ``repro.obs``: ``faults.injected``
counts per point, and the recovery paths bump ``rpc.retry``,
``deploy.retry``, ``deploy.circuit_open``, ``replication.retry``, and
``monitoring.retry``.
"""

from repro.common.errors import FaultInjectedError
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    active_plan,
    check,
    install,
    should_inject,
    uninstall,
)
from repro.faults.retry import CircuitBreaker, GiveUp, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "GiveUp",
    "RetryPolicy",
    "active_plan",
    "check",
    "install",
    "should_inject",
    "uninstall",
]
