"""Seed-deterministic fault plans (the chaos half of section 4.3.3 / 6).

A :class:`FaultPlan` is a registry of named *injection points* — call
sites spread through the reproduction (``rpc.call``, ``replication.apply``,
``deploy.push``, ``store.commit_listener``, ``monitoring.collect``) ask the
active plan whether this particular call should fail.  Each registered
:class:`FaultSpec` decides by probability (drawn from the plan's seeded
RNG), by count (``after`` skips, ``times`` caps), by a simulated-time
window (``start``/``stop``), and by label match — so a chaos run is fully
reproducible: the same seed and the same call sequence inject exactly the
same faults.

One plan is installed process-globally (mirroring how the ``repro.obs``
registry works) so injection sites stay unconditional one-liners::

    plan = FaultPlan(seed=1337)
    plan.inject("deploy.push", probability=0.3, times=5)
    with plan.installed():
        ...  # chaos

Every injected fault increments the ``faults.injected`` counter, labeled
with its point, so telemetry shows exactly where chaos landed.
"""

from __future__ import annotations

import hashlib
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.common.errors import FaultInjectedError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "check",
    "install",
    "should_inject",
    "uninstall",
]


def _scope_seed(seed: int, key: str) -> int:
    """A sub-seed derived from (plan seed, task key) — stable across runs
    and interpreter invocations (unlike ``hash()``, which is salted)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class _TaskScope:
    """A per-task partition of a plan's mutable injection state.

    While a scope is active on a thread, ``should_inject`` draws from the
    scope's derived RNG and tracks ``seen``/``injected`` per spec locally
    (keyed by spec index), recording injections into the scope's buffer.
    The pool coordinator merges scopes back in task-key order, so the
    plan's record is identical at any worker count.  Count-based spec
    semantics (``after``/``times``) apply *per task* inside pooled
    sections — the only reading that is order-independent.
    """

    __slots__ = ("key", "rng", "clock", "seen", "injected", "injections")

    def __init__(self, plan: FaultPlan, key: str, clock: Any | None = None):
        self.key = str(key)
        self.rng = random.Random(_scope_seed(plan.seed, self.key))
        self.clock = clock
        self.seen: dict[int, int] = {}
        self.injected: dict[int, int] = {}
        self.injections: list[tuple[float | None, str, dict[str, str]]] = []


@dataclass
class FaultSpec:
    """One fault rule: where it fires, how often, and for how long.

    * ``probability`` — chance each matching call fails (1.0 = always);
    * ``after`` — skip the first N matching calls before arming;
    * ``times`` — stop after injecting this many faults (None = forever);
    * ``start``/``stop`` — only fire inside this simulated-time window
      (requires the plan to be bound to a clock);
    * ``match`` — labels the call site must carry (subset match, values
      compared as strings).
    """

    point: str
    probability: float = 1.0
    after: int = 0
    times: int | None = None
    start: float | None = None
    stop: float | None = None
    match: dict[str, str] = field(default_factory=dict)

    #: Calls that reached this spec (post label/window filtering).
    seen: int = 0
    #: Faults this spec actually injected.
    injected: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], not {self.probability}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None)")
        self.match = {k: str(v) for k, v in self.match.items()}

    def matches_labels(self, labels: dict[str, Any]) -> bool:
        return all(str(labels.get(k)) == v for k, v in self.match.items())

    def in_window(self, now: float | None) -> bool:
        if self.start is None and self.stop is None:
            return True
        if now is None:
            return False  # windowed specs need a bound clock
        if self.start is not None and now < self.start:
            return False
        if self.stop is not None and now >= self.stop:
            return False
        return True

    def exhausted(self) -> bool:
        return self.times is not None and self.injected >= self.times


class FaultPlan:
    """A seeded set of fault specs plus the record of what actually fired."""

    def __init__(self, seed: int = 0, *, clock: Any | None = None):
        self.seed = seed
        self._rng = random.Random(seed)
        self._specs: list[FaultSpec] = []
        self._clock = clock
        self._scopes = threading.local()
        #: Every injection, in order: (sim time or None, point, labels).
        self.injections: list[tuple[float | None, str, dict[str, str]]] = []

    # -- construction --------------------------------------------------------

    def inject(self, point: str, **kwargs: Any) -> FaultSpec:
        """Register and return a :class:`FaultSpec` for ``point``.

        Keyword arguments are the spec's fields; unknown keywords become
        label matchers, so ``plan.inject("rpc.call", method="get")`` reads
        naturally.
        """
        fields = {"probability", "after", "times", "start", "stop", "match"}
        spec_kwargs = {k: v for k, v in kwargs.items() if k in fields}
        labels = {k: v for k, v in kwargs.items() if k not in fields}
        if labels:
            spec_kwargs.setdefault("match", {}).update(labels)
        spec = FaultSpec(point=point, **spec_kwargs)
        self._specs.append(spec)
        return spec

    def add(self, spec: FaultSpec) -> FaultSpec:
        self._specs.append(spec)
        return spec

    @property
    def specs(self) -> list[FaultSpec]:
        return list(self._specs)

    def bind_clock(self, clock: Any) -> None:
        """Attach a simulated clock so time-windowed specs can fire."""
        self._clock = clock

    def _now(self) -> float | None:
        return self._clock.now if self._clock is not None else None

    # -- task-scoped state (deterministic parallel execution) ----------------

    @contextmanager
    def task_scope(self, key: str, *, clock: Any | None = None) -> Iterator[Any]:
        """Partition this plan's state for one pool task on this thread.

        Inside the block, decisions draw from an RNG derived from the
        plan seed and ``key`` and count against scope-local spec state;
        the caller (the pool coordinator) merges the scope back with
        :meth:`merge_scope` in task-key order.  ``clock`` (a task-local
        clock) overrides the plan's bound clock for window checks and
        injection timestamps.
        """
        scope = _TaskScope(self, key, clock)
        previous = getattr(self._scopes, "current", None)
        self._scopes.current = scope
        try:
            yield scope
        finally:
            self._scopes.current = previous

    def merge_scope(self, scope: Any) -> None:
        """Fold one task scope's record back into the plan."""
        for index, count in scope.seen.items():
            self._specs[index].seen += count
        for index, count in scope.injected.items():
            self._specs[index].injected += count
        self.injections.extend(scope.injections)

    # -- the decision --------------------------------------------------------

    def should_inject(self, point: str, **labels: Any) -> bool:
        """Decide (deterministically) whether this call fails.

        Probability draws consume the plan's seeded RNG in call order, so
        two runs issuing the same calls make the same decisions.  Inside
        a :meth:`task_scope`, draws and counters are scope-local instead
        (derived RNG, per-task ``after``/``times``), so the decision for
        a given call depends only on the task key — not on how pool tasks
        interleave.
        """
        scope = getattr(self._scopes, "current", None)
        if scope is not None and scope.clock is not None:
            now = scope.clock.now
        else:
            now = self._now()
        for index, spec in enumerate(self._specs):
            if spec.point != point:
                continue
            injected = spec.injected if scope is None else scope.injected.get(index, 0)
            if spec.times is not None and injected >= spec.times:
                continue
            if not spec.matches_labels(labels) or not spec.in_window(now):
                continue
            if scope is None:
                spec.seen += 1
                seen = spec.seen
            else:
                seen = scope.seen.get(index, 0) + 1
                scope.seen[index] = seen
            if seen <= spec.after:
                continue
            rng = self._rng if scope is None else scope.rng
            if spec.probability < 1.0 and rng.random() >= spec.probability:
                continue
            label_strs = {k: str(v) for k, v in labels.items()}
            if scope is None:
                spec.injected += 1
                self.injections.append((now, point, label_strs))
            else:
                scope.injected[index] = injected + 1
                scope.injections.append((now, point, label_strs))
            obs.counter("faults.injected", point=point).inc()
            return True
        return False

    def injected_count(self, point: str | None = None) -> int:
        if point is None:
            return len(self.injections)
        return sum(1 for _, p, _ in self.injections if p == point)

    @contextmanager
    def installed(self) -> Iterator[FaultPlan]:
        """Install this plan globally for the duration of the block."""
        install(self)
        try:
            yield self
        finally:
            uninstall()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} specs={len(self._specs)} "
            f"injected={len(self.injections)}>"
        )


# ---------------------------------------------------------------------------
# Process-global active plan
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-global active plan."""
    global _active
    _active = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (every ``should_inject`` returns False)."""
    global _active
    _active = None


def active_plan() -> FaultPlan | None:
    return _active


def should_inject(point: str, **labels: Any) -> bool:
    """Ask the active plan (if any) whether this call should fail."""
    if _active is None:
        return False
    return _active.should_inject(point, **labels)


def check(point: str, **labels: Any) -> None:
    """Raise :class:`FaultInjectedError` if the active plan says so."""
    if should_inject(point, **labels):
        raise FaultInjectedError(f"injected fault at {point}")
