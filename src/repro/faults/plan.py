"""Seed-deterministic fault plans (the chaos half of section 4.3.3 / 6).

A :class:`FaultPlan` is a registry of named *injection points* — call
sites spread through the reproduction (``rpc.call``, ``replication.apply``,
``deploy.push``, ``store.commit_listener``, ``monitoring.collect``) ask the
active plan whether this particular call should fail.  Each registered
:class:`FaultSpec` decides by probability (drawn from the plan's seeded
RNG), by count (``after`` skips, ``times`` caps), by a simulated-time
window (``start``/``stop``), and by label match — so a chaos run is fully
reproducible: the same seed and the same call sequence inject exactly the
same faults.

One plan is installed process-globally (mirroring how the ``repro.obs``
registry works) so injection sites stay unconditional one-liners::

    plan = FaultPlan(seed=1337)
    plan.inject("deploy.push", probability=0.3, times=5)
    with plan.installed():
        ...  # chaos

Every injected fault increments the ``faults.injected`` counter, labeled
with its point, so telemetry shows exactly where chaos landed.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.common.errors import FaultInjectedError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "check",
    "install",
    "should_inject",
    "uninstall",
]


@dataclass
class FaultSpec:
    """One fault rule: where it fires, how often, and for how long.

    * ``probability`` — chance each matching call fails (1.0 = always);
    * ``after`` — skip the first N matching calls before arming;
    * ``times`` — stop after injecting this many faults (None = forever);
    * ``start``/``stop`` — only fire inside this simulated-time window
      (requires the plan to be bound to a clock);
    * ``match`` — labels the call site must carry (subset match, values
      compared as strings).
    """

    point: str
    probability: float = 1.0
    after: int = 0
    times: int | None = None
    start: float | None = None
    stop: float | None = None
    match: dict[str, str] = field(default_factory=dict)

    #: Calls that reached this spec (post label/window filtering).
    seen: int = 0
    #: Faults this spec actually injected.
    injected: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], not {self.probability}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None)")
        self.match = {k: str(v) for k, v in self.match.items()}

    def matches_labels(self, labels: dict[str, Any]) -> bool:
        return all(str(labels.get(k)) == v for k, v in self.match.items())

    def in_window(self, now: float | None) -> bool:
        if self.start is None and self.stop is None:
            return True
        if now is None:
            return False  # windowed specs need a bound clock
        if self.start is not None and now < self.start:
            return False
        if self.stop is not None and now >= self.stop:
            return False
        return True

    def exhausted(self) -> bool:
        return self.times is not None and self.injected >= self.times


class FaultPlan:
    """A seeded set of fault specs plus the record of what actually fired."""

    def __init__(self, seed: int = 0, *, clock: Any | None = None):
        self.seed = seed
        self._rng = random.Random(seed)
        self._specs: list[FaultSpec] = []
        self._clock = clock
        #: Every injection, in order: (sim time or None, point, labels).
        self.injections: list[tuple[float | None, str, dict[str, str]]] = []

    # -- construction --------------------------------------------------------

    def inject(self, point: str, **kwargs: Any) -> FaultSpec:
        """Register and return a :class:`FaultSpec` for ``point``.

        Keyword arguments are the spec's fields; unknown keywords become
        label matchers, so ``plan.inject("rpc.call", method="get")`` reads
        naturally.
        """
        fields = {"probability", "after", "times", "start", "stop", "match"}
        spec_kwargs = {k: v for k, v in kwargs.items() if k in fields}
        labels = {k: v for k, v in kwargs.items() if k not in fields}
        if labels:
            spec_kwargs.setdefault("match", {}).update(labels)
        spec = FaultSpec(point=point, **spec_kwargs)
        self._specs.append(spec)
        return spec

    def add(self, spec: FaultSpec) -> FaultSpec:
        self._specs.append(spec)
        return spec

    @property
    def specs(self) -> list[FaultSpec]:
        return list(self._specs)

    def bind_clock(self, clock: Any) -> None:
        """Attach a simulated clock so time-windowed specs can fire."""
        self._clock = clock

    def _now(self) -> float | None:
        return self._clock.now if self._clock is not None else None

    # -- the decision --------------------------------------------------------

    def should_inject(self, point: str, **labels: Any) -> bool:
        """Decide (deterministically) whether this call fails.

        Probability draws consume the plan's seeded RNG in call order, so
        two runs issuing the same calls make the same decisions.
        """
        now = self._now()
        for spec in self._specs:
            if spec.point != point or spec.exhausted():
                continue
            if not spec.matches_labels(labels) or not spec.in_window(now):
                continue
            spec.seen += 1
            if spec.seen <= spec.after:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            spec.injected += 1
            label_strs = {k: str(v) for k, v in labels.items()}
            self.injections.append((now, point, label_strs))
            obs.counter("faults.injected", point=point).inc()
            return True
        return False

    def injected_count(self, point: str | None = None) -> int:
        if point is None:
            return len(self.injections)
        return sum(1 for _, p, _ in self.injections if p == point)

    @contextmanager
    def installed(self) -> Iterator[FaultPlan]:
        """Install this plan globally for the duration of the block."""
        install(self)
        try:
            yield self
        finally:
            uninstall()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} specs={len(self._specs)} "
            f"injected={len(self.injections)}>"
        )


# ---------------------------------------------------------------------------
# Process-global active plan
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-global active plan."""
    global _active
    _active = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (every ``should_inject`` returns False)."""
    global _active
    _active = None


def active_plan() -> FaultPlan | None:
    return _active


def should_inject(point: str, **labels: Any) -> bool:
    """Ask the active plan (if any) whether this call should fail."""
    if _active is None:
        return False
    return _active.should_inject(point, **labels)


def check(point: str, **labels: Any) -> None:
    """Raise :class:`FaultInjectedError` if the active plan says so."""
    if should_inject(point, **labels):
        raise FaultInjectedError(f"injected fault at {point}")
