"""The emulated network device.

Each :class:`EmulatedDevice` models the management-plane surface Robotron
touches (paper sections 5.3-5.4): config push with per-vendor syntax
checking, native dryrun on vendor2 only (vendor1 diffs are computed by the
deployer from before/after snapshots — both cases from section 5.3.2),
commit-confirmed with an automatic rollback timer, erase/copy initial
provisioning, SNMP/CLI/XML-RPC/Thrift monitoring endpoints with per-vendor
capability gaps (e.g. LACP member status is CLI-only on vendor1, matching
section 6.4), LLDP neighborship, BGP session state, syslog emission, and
fault injection.
"""

from __future__ import annotations

import hashlib
import itertools
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.common.errors import DeploymentError, MonitoringError
from repro.devices.parsers import ConfigSyntaxError, ParsedConfig, parse_config
from repro.simulation.clock import EventScheduler, ScheduledEvent

if TYPE_CHECKING:
    from repro.devices.fleet import DeviceFleet

__all__ = [
    "CommitError",
    "ConfigVersion",
    "DEFAULT_MAX_CONFIG_HISTORY",
    "DeviceDownError",
    "EmulatedDevice",
    "UnsupportedOperation",
]


class DeviceDownError(DeploymentError):
    """The device is unreachable (crashed or rebooting)."""


class CommitError(DeploymentError):
    """The device refused or failed to commit a configuration."""


class UnsupportedOperation(DeploymentError):
    """The device/vendor does not support the requested operation."""


#: Which monitoring engines each vendor dialect supports (section 6.4:
#: capabilities vary across vendor platforms; some data is CLI-only).
VENDOR_CAPABILITIES = {
    "vendor1": {"snmp", "cli", "xmlrpc"},
    "vendor2": {"snmp", "cli", "thrift"},
}

#: Vendors with a native dryrun ("commit check") facility (section 5.3.2).
NATIVE_DRYRUN_VENDORS = {"vendor2"}

#: Default retention limit for the on-box config history (mirrors the
#: monitoring backends' ``max_points_per_series`` bound): long simulations
#: must not grow device state without bound.
DEFAULT_MAX_CONFIG_HISTORY = 64


@dataclass
class ConfigVersion:
    """One committed configuration revision on a device.

    ``pinned`` marks a revision as referenced from outside the device (the
    deployment guard pins last-known-good versions); pinned revisions are
    exempt from retention eviction.
    """

    version: int
    text: str
    committed_at: float
    reason: str
    pinned: bool = False


class EmulatedDevice:
    """One emulated router or switch."""

    def __init__(
        self,
        name: str,
        vendor: str,
        scheduler: EventScheduler,
        *,
        role: str = "",
        max_config_history: int = DEFAULT_MAX_CONFIG_HISTORY,
    ):
        if vendor not in VENDOR_CAPABILITIES:
            raise ValueError(f"unknown vendor {vendor!r}")
        if max_config_history < 1:
            raise ValueError("max_config_history must be >= 1")
        self.name = name
        self.vendor = vendor
        self.role = role
        self.scheduler = scheduler
        self.fleet: DeviceFleet | None = None

        # Config state.
        self.running_config = ""
        self._running_sha: str | None = None
        self.parsed = ParsedConfig()
        self.config_history: list[ConfigVersion] = []
        self.max_config_history = max_config_history
        self._commit_seq = itertools.count(1)
        self._version_seq = itertools.count(1)

        # Liveness.
        self.alive = True
        self.booted_at = scheduler.clock.now

        # Commit-confirmed state.
        self._confirm_event: ScheduledEvent | None = None
        self._confirm_previous: str | None = None

        # Fault injection.
        self.fail_next_commits = 0
        self.commit_delay = 0.0
        self.drop_syslog = False

        # Telemetry baselines (deterministic per device name).
        seed = sum(name.encode())
        self.cpu_base = 0.05 + (seed % 20) / 100.0
        self.mem_base = 0.30 + (seed % 30) / 100.0

        # Listeners.
        self._syslog_listeners: list[Callable[[dict[str, Any]], None]] = []
        self._config_listeners: list[Callable[[EmulatedDevice], None]] = []

        # Per-engine request counters (Table 2 accounting).
        self.requests_served: dict[str, int] = {
            "snmp": 0, "cli": 0, "xmlrpc": 0, "thrift": 0
        }

    # ------------------------------------------------------------------
    # Liveness / reachability
    # ------------------------------------------------------------------

    def _require_alive(self) -> None:
        if not self.alive:
            raise DeviceDownError(f"{self.name} is unreachable")

    def reachable(self) -> bool:
        return self.alive

    def crash(self) -> None:
        """The device dies: configs survive, sessions drop, mgmt unreachable."""
        self.alive = False

    def boot(self) -> None:
        self.alive = True
        self.booted_at = self.scheduler.clock.now
        self.emit_syslog("SYSTEM", f"System restarted: {self.name} booting")

    @property
    def uptime(self) -> float:
        return self.scheduler.clock.now - self.booted_at if self.alive else 0.0

    # ------------------------------------------------------------------
    # Config operations
    # ------------------------------------------------------------------

    @property
    def supports_native_dryrun(self) -> bool:
        return self.vendor in NATIVE_DRYRUN_VENDORS

    @property
    def running_sha(self) -> str:
        """SHA-256 of the running config, cached until the config changes.

        Deployment's content-hash skip compares this against the golden
        config's sha; every config mutation funnels through ``_apply`` or
        ``erase``, which invalidate the cache.
        """
        if self._running_sha is None:
            self._running_sha = hashlib.sha256(
                self.running_config.encode()
            ).hexdigest()
        return self._running_sha

    def erase(self) -> None:
        """Erase to factory state (initial provisioning, section 5.3.1)."""
        self._require_alive()
        self._cancel_confirm()
        self.running_config = ""
        self._running_sha = None
        self.parsed = ParsedConfig()
        self._notify_config_changed(log=False)

    def copy_config(self, text: str) -> None:
        """Copy a full config onto a clean device (section 5.3.1)."""
        self._require_alive()
        if self.running_config:
            raise CommitError(
                f"{self.name}: copy_config requires a clean (erased) device"
            )
        self._apply(text)

    def dryrun(self, text: str) -> str:
        """Native dryrun: validate and return a diff without applying.

        Only some vendors support this (section 5.3.2); for the rest the
        deployer compares running configs before and after.
        """
        self._require_alive()
        if not self.supports_native_dryrun:
            raise UnsupportedOperation(
                f"{self.name} ({self.vendor}) has no native dryrun support"
            )
        try:
            parse_config(self.vendor, text)  # on-box syntax check
        except ConfigSyntaxError as exc:
            raise CommitError(f"{self.name}: dryrun rejected config: {exc}") from None
        from repro.deploy.diff import unified_diff

        return unified_diff(self.running_config, text, self.name)

    def commit(self, text: str) -> float:
        """Commit a config; returns the (simulated) time the commit took."""
        self._require_alive()
        if self.fail_next_commits > 0:
            self.fail_next_commits -= 1
            raise CommitError(f"{self.name}: commit failed (device error)")
        self._cancel_confirm()
        self._apply(text)
        return self.commit_delay

    def commit_confirmed(self, text: str, grace_seconds: float) -> float:
        """Commit with an automatic-rollback timer (section 5.3.2).

        The new config is live immediately, but unless :meth:`confirm` is
        called within ``grace_seconds``, the device reverts on its own.
        """
        self._require_alive()
        if grace_seconds <= 0:
            raise CommitError("grace period must be positive")
        previous = self.running_config
        delay = self.commit(text)
        self._confirm_previous = previous
        self._confirm_event = self.scheduler.call_after(
            grace_seconds, self._auto_rollback, name=f"{self.name}-confirm-timer"
        )
        return delay

    def confirm(self) -> None:
        """Make a commit_confirmed change permanent."""
        self._require_alive()
        if self._confirm_event is None:
            raise CommitError(f"{self.name}: no commit awaiting confirmation")
        self._cancel_confirm()

    def _auto_rollback(self) -> None:
        if self._confirm_previous is None:
            return
        previous = self._confirm_previous
        self._confirm_event = None
        self._confirm_previous = None
        if not self.alive:
            return
        self._apply(previous, reason="confirm-timeout rollback")

    def _cancel_confirm(self) -> None:
        if self._confirm_event is not None:
            self._confirm_event.cancel()
        self._confirm_event = None
        self._confirm_previous = None

    def abort_confirm(self) -> None:
        """Actively revert a pending commit_confirmed change right now.

        The operator's counterpart to letting the grace timer fire: cancel
        the timer and restore the pre-commit config immediately.
        """
        self._require_alive()
        if self._confirm_event is None:
            raise CommitError(f"{self.name}: no commit awaiting confirmation")
        previous = self._confirm_previous
        self._cancel_confirm()
        if previous is not None and previous != self.running_config:
            self._apply(previous, reason="confirmation aborted")

    def rollback(self, steps: int = 1) -> None:
        """Revert to a previous committed config."""
        self._require_alive()
        if steps < 1 or steps >= len(self.config_history) + 1:
            available = max(len(self.config_history) - 1, 0)
            raise CommitError(
                f"{self.name}: cannot roll back {steps} step(s); "
                f"{available} available"
            )
        target = self.config_history[-(steps + 1)]
        self._apply(target.text, reason=f"rollback {steps}")

    # ------------------------------------------------------------------
    # Versioned config history (last-known-good support)
    # ------------------------------------------------------------------

    @property
    def config_version(self) -> int:
        """The version number of the running config (0 before any commit)."""
        return self.config_history[-1].version if self.config_history else 0

    def version_entry(self, version: int) -> ConfigVersion:
        """The history entry for ``version`` (raises if evicted/unknown)."""
        for entry in reversed(self.config_history):
            if entry.version == version:
                return entry
        raise CommitError(
            f"{self.name}: config version {version} is not in the on-box "
            f"history (never committed, or evicted by retention)"
        )

    def pin_version(self, version: int) -> None:
        """Exempt ``version`` from history eviction (e.g. a rollback target)."""
        self.version_entry(version).pinned = True

    def unpin_version(self, version: int) -> None:
        """Drop the eviction exemption; tolerates already-evicted versions."""
        for entry in reversed(self.config_history):
            if entry.version == version:
                entry.pinned = False
                return

    def revert_to(self, version: int) -> None:
        """Restore a specific committed config version."""
        self._require_alive()
        entry = self.version_entry(version)
        if entry.text == self.running_config:
            return
        self._cancel_confirm()
        self._apply(entry.text, reason=f"revert to v{version}")

    def _evict_history(self) -> None:
        while len(self.config_history) > self.max_config_history:
            for index, entry in enumerate(self.config_history[:-1]):
                if not entry.pinned:
                    del self.config_history[index]
                    break
            else:
                return  # everything old is pinned; over-retention is allowed

    def _apply(self, text: str, reason: str = "commit") -> None:
        try:
            parsed = parse_config(self.vendor, text)
        except ConfigSyntaxError as exc:
            raise CommitError(f"{self.name}: {exc}") from None
        old_config = self.running_config
        self.running_config = text
        self._running_sha = None
        self.parsed = parsed
        self.config_history.append(
            ConfigVersion(
                version=next(self._version_seq),
                text=text,
                committed_at=self.scheduler.clock.now,
                reason=reason,
            )
        )
        self._evict_history()
        if old_config != text:
            self.emit_syslog(
                "CONFIG",
                f"Configuration changed ({reason}, commit "
                f"{next(self._commit_seq)})",
            )
        self._notify_config_changed()

    def _notify_config_changed(self, log: bool = True) -> None:
        for listener in self._config_listeners:
            listener(self)

    def on_config_change(self, listener: Callable[[EmulatedDevice], None]) -> None:
        self._config_listeners.append(listener)

    # ------------------------------------------------------------------
    # Syslog (passive monitoring source, section 5.4.1)
    # ------------------------------------------------------------------

    def on_syslog(self, listener: Callable[[dict[str, Any]], None]) -> None:
        self._syslog_listeners.append(listener)

    def emit_syslog(self, tag: str, message: str) -> None:
        """Send a syslog message to the configured collector(s).

        A device only emits when its running config points logging at a
        collector — a freshly erased device is silent, exactly the gap
        config monitoring exists to close.
        """
        if self.drop_syslog:
            return
        if not self.parsed.syslog_hosts and tag != "SYSTEM":
            return
        event = {
            "device": self.name,
            "tag": tag,
            "message": message,
            "timestamp": self.scheduler.clock.now,
        }
        for listener in self._syslog_listeners:
            listener(event)

    # ------------------------------------------------------------------
    # Interface / protocol state (what monitoring observes)
    # ------------------------------------------------------------------

    def interface_names(self) -> list[str]:
        return sorted(self.parsed.interfaces)

    def _wired_peer(self, interface: str):
        if self.fleet is None:
            return None
        return self.fleet.peer_of(self.name, interface)

    def interface_oper_status(self, name: str) -> str:
        """'up' / 'down' for one configured interface."""
        stanza = self.parsed.interfaces.get(name)
        if stanza is None:
            return "down"
        if not stanza.enabled or not self.alive:
            return "down"
        if name.startswith("lo"):
            return "up"
        if stanza.channel_group is not None or not self._is_aggregate(name):
            # A physical port: needs a live wire and a live remote end.
            peer = self._wired_peer(name)
            if peer is None:
                return "down"
            peer_device, peer_interface = peer
            if not peer_device.alive:
                return "down"
            peer_stanza = peer_device.parsed.interfaces.get(peer_interface)
            if peer_stanza is None or not peer_stanza.enabled:
                return "down"
            return "up"
        # An aggregate: up when at least one member is up.
        return "up" if any(
            self.interface_oper_status(member) == "up"
            for member in self.lacp_members(name)
        ) else "down"

    def _is_aggregate(self, name: str) -> bool:
        return any(
            stanza.channel_group == name for stanza in self.parsed.interfaces.values()
        )

    def lacp_members(self, aggregate: str) -> list[str]:
        return sorted(
            name
            for name, stanza in self.parsed.interfaces.items()
            if stanza.channel_group == aggregate
        )

    def lldp_neighbors(self) -> list[dict[str, str]]:
        """LLDP neighbor table: one entry per wired, up physical port."""
        neighbors = []
        for name, stanza in sorted(self.parsed.interfaces.items()):
            peer = self._wired_peer(name)
            if peer is None or not stanza.enabled:
                continue
            peer_device, peer_interface = peer
            if not peer_device.alive:
                continue
            neighbors.append(
                {
                    "local_interface": name,
                    "neighbor_device": peer_device.name,
                    "neighbor_interface": peer_interface,
                }
            )
        return neighbors

    def bgp_summary(self) -> list[dict[str, Any]]:
        """State of every configured BGP neighbor."""
        summary = []
        for peer_ip, neighbor in sorted(self.parsed.bgp_neighbors.items()):
            state = "idle"
            if self.fleet is not None:
                state = self.fleet.bgp_session_state(self, peer_ip)
            summary.append(
                {
                    "peer_ip": peer_ip,
                    "peer_asn": neighbor.peer_asn,
                    "state": state,
                }
            )
        return summary

    def interface_with_ip(self, ip: str) -> str | None:
        """The interface configured with ``ip`` (mask-stripped match)."""
        for name, stanza in self.parsed.interfaces.items():
            for prefix in (stanza.v4_prefix, stanza.v6_prefix):
                if prefix is not None and prefix.split("/")[0] == ip:
                    return name
        return None

    # ------------------------------------------------------------------
    # Monitoring endpoints (active monitoring engines, section 5.4.2)
    # ------------------------------------------------------------------

    def _engine_request(self, engine: str) -> None:
        self._require_alive()
        if engine not in VENDOR_CAPABILITIES[self.vendor]:
            raise MonitoringError(
                f"{self.name} ({self.vendor}) does not support {engine}"
            )
        self.requests_served[engine] += 1

    def snmp_get(self, table: str) -> Any:
        """SNMP polling: interface and system tables (cheap, no LACP detail)."""
        self._engine_request("snmp")
        if table == "interfaces":
            return [
                {
                    "name": name,
                    "oper_status": self.interface_oper_status(name),
                    "admin_status": "enabled"
                    if self.parsed.interfaces[name].enabled
                    else "disabled",
                    "mtu": self.parsed.interfaces[name].mtu,
                }
                for name in self.interface_names()
            ]
        if table == "system":
            load = 0.02 * len(self.parsed.interfaces)
            return {
                "uptime": self.uptime,
                "cpu": min(0.99, self.cpu_base + load),
                "memory": min(0.99, self.mem_base + load / 2),
            }
        raise MonitoringError(f"unknown SNMP table {table!r}")

    def cli_show(self, command: str) -> Any:
        """CLI scraping: the only way to get some data on some vendors."""
        self._engine_request("cli")
        if command == "show running-config":
            return self.running_config
        if command == "show lldp neighbors":
            return self.lldp_neighbors()
        if command == "show bgp summary":
            return self.bgp_summary()
        if command.startswith("show lacp members "):
            aggregate = command.rsplit(None, 1)[1]
            return [
                {"member": member, "oper_status": self.interface_oper_status(member)}
                for member in self.lacp_members(aggregate)
            ]
        raise MonitoringError(f"{self.name}: unknown CLI command {command!r}")

    def xmlrpc_get(self, what: str) -> Any:
        """XML/RPC management API (vendor1 only)."""
        self._engine_request("xmlrpc")
        return self._structured_get(what)

    def thrift_get(self, what: str) -> Any:
        """Thrift management API (vendor2 only)."""
        self._engine_request("thrift")
        return self._structured_get(what)

    def _structured_get(self, what: str) -> Any:
        if what == "interfaces":
            return [
                {"name": name, "oper_status": self.interface_oper_status(name)}
                for name in self.interface_names()
            ]
        if what == "bgp":
            return self.bgp_summary()
        if what == "config":
            return {"text": self.running_config, "hostname": self.parsed.hostname}
        raise MonitoringError(f"unknown structured query {what!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EmulatedDevice {self.name} ({self.vendor})>"
